#![warn(missing_docs)]

//! `sar-check` — static analysis for the SAR workspace.
//!
//! Three passes, each independently runnable and combined by the
//! `sar-check` binary into a single CI gate:
//!
//! * [`protocol`] — replays the *pure* rotation/routing schedules from
//!   [`sar_core::plan`] for every rank at once and proves, per `(N, K)`
//!   and per communication model (Case 1 / Case 2 of the paper), that the
//!   send/recv schedule is matched (every send consumed exactly once,
//!   tags agree), deadlock-free, and within the `(K+2)/N` residency
//!   bound — and that the out-of-core stale replay of the same schedule
//!   against the disk tier keeps at most `min(K, N−1) + 2` blocks in RAM
//!   with the remainder spilled. Because [`Worker`](sar_core::Worker)
//!   executes those same plans step for step, the schedule proved here is
//!   the schedule run in production.
//! * [`sched`] — a loom-style deterministic scheduler that explores *all*
//!   interleavings (to a bounded depth, with visited-state pruning) of
//!   small models of the workspace's hand-rolled concurrency: the
//!   `sar_comm::buffer` recycle pool, the bounded TCP writer queue, and
//!   the `pool::SharedSlice` chunk-claiming discipline.
//! * [`lint`] — a token-level source pass (no external deps) enforcing
//!   project invariants the compiler cannot: no `unwrap`/`expect`/
//!   `assert!` on comm hot paths, `// SAFETY:` on every `unsafe` block,
//!   `WorkerCtx` comm calls only under a `phase_scope`, and no unbounded
//!   channel construction without an explicit waiver.
//!
//! Every pass reports through the same [`Finding`]/[`PassReport`] types,
//! and [`Report`] serializes the combined result as machine-readable JSON
//! (hand-rolled — the workspace is offline, no serde).

pub mod ast;
pub mod ledgercheck;
pub mod lint;
pub mod protocol;
pub mod reportio;
pub mod sched;
pub mod taint;

/// One problem found by a pass. `location` is a file/line for the linter,
/// a `(n, k, model)` coordinate for the protocol verifier, or a model
/// name + interleaving trace for the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule / property identifier (e.g. `no-panic-path`,
    /// `deadlock-free`, `no-double-recycle`).
    pub rule: String,
    /// Where the problem is (file:line, or a model coordinate).
    pub location: String,
    /// Actionable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.rule, self.location, self.message)
    }
}

/// The outcome of one pass: what was checked, how much of it, and every
/// violation found.
#[derive(Debug, Clone)]
pub struct PassReport {
    /// Pass name (`protocol`, `sched`, `lint`).
    pub pass: String,
    /// Pass-specific progress counters (e.g. `configs_verified`,
    /// `states_explored`, `files_scanned`), in insertion order.
    pub stats: Vec<(String, u64)>,
    /// Violations; empty means the pass proved its properties.
    pub findings: Vec<Finding>,
}

impl PassReport {
    /// New empty report for `pass`.
    #[must_use]
    pub fn new(pass: &str) -> PassReport {
        PassReport {
            pass: pass.to_string(),
            stats: Vec::new(),
            findings: Vec::new(),
        }
    }

    /// Adds (or bumps) a named counter.
    pub fn bump(&mut self, stat: &str, by: u64) {
        if let Some(entry) = self.stats.iter_mut().find(|(name, _)| name == stat) {
            entry.1 += by;
        } else {
            self.stats.push((stat.to_string(), by));
        }
    }

    /// True when the pass found nothing.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// The combined proof report written as the CI artifact.
#[derive(Debug, Clone)]
pub struct Report {
    /// One entry per pass that ran.
    pub passes: Vec<PassReport>,
}

impl Report {
    /// True when every pass is clean.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.passes.iter().all(PassReport::clean)
    }

    /// Total findings across passes.
    #[must_use]
    pub fn total_findings(&self) -> usize {
        self.passes.iter().map(|p| p.findings.len()).sum()
    }

    /// Serializes the report as pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"tool\": \"sar-check\",\n  \"clean\": ");
        out.push_str(if self.clean() { "true" } else { "false" });
        out.push_str(",\n  \"passes\": [\n");
        for (i, pass) in self.passes.iter().enumerate() {
            out.push_str("    {\n      \"pass\": ");
            out.push_str(&json_string(&pass.pass));
            out.push_str(",\n      \"clean\": ");
            out.push_str(if pass.clean() { "true" } else { "false" });
            out.push_str(",\n      \"stats\": {");
            for (j, (name, value)) in pass.stats.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        ");
                out.push_str(&json_string(name));
                out.push_str(": ");
                out.push_str(&value.to_string());
            }
            if !pass.stats.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("},\n      \"findings\": [");
            for (j, finding) in pass.findings.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        {\"rule\": ");
                out.push_str(&json_string(&finding.rule));
                out.push_str(", \"location\": ");
                out.push_str(&json_string(&finding.location));
                out.push_str(", \"message\": ");
                out.push_str(&json_string(&finding.message));
                out.push('}');
            }
            if !pass.findings.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("]\n    }");
            if i + 1 < self.passes.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// JSON-escapes `s` and wraps it in quotes.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_round_trips_structure() {
        let mut pass = PassReport::new("lint");
        pass.bump("files_scanned", 3);
        pass.findings.push(Finding {
            rule: "no-panic-path".into(),
            location: "crates/comm/src/tcp.rs:12".into(),
            message: "bare `unwrap()` on a comm hot path".into(),
        });
        let report = Report { passes: vec![pass] };
        let json = report.to_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("no-panic-path"));
        assert!(!report.clean());
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
