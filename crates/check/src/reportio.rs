//! Proof-report IO: a minimal JSON value parser (the workspace is
//! offline — no serde) and the committed-baseline diff.
//!
//! CI runs `sar-check --all --baseline PROOF_sarcheck.json`: the fresh
//! [`Report`](crate::Report) is compared against the committed baseline
//! and the gate fails if a whole pass disappeared or any *obligation
//! counter* decreased — the "silently dropped proof obligation" failure
//! mode, where a refactor quietly stops verifying configurations while
//! the remaining ones stay green. Measurement stats (peaks, annotation
//! tallies) may move freely; only counters whose name carries an
//! obligation suffix ([`OBLIGATION_SUFFIXES`]) are ratcheted.

use crate::Report;

/// A parsed JSON value. Numbers are `f64` — the report's counters are
/// well within exact range.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message naming the byte offset on malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex = bytes
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                let cp = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&b) => {
                        // Collect the full UTF-8 sequence.
                        let len = match b {
                            _ if b < 0x80 => 1,
                            _ if b >> 5 == 0b110 => 2,
                            _ if b >> 4 == 0b1110 => 3,
                            _ => 4,
                        };
                        let chunk = bytes
                            .get(*pos..*pos + len)
                            .ok_or("truncated UTF-8 sequence")?;
                        out.push_str(
                            std::str::from_utf8(chunk).map_err(|e| format!("bad UTF-8: {e}"))?,
                        );
                        *pos += len;
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number `{text}` at byte {start}"))
        }
    }
}

/// Stat-name suffixes that denote proof obligations: these counters may
/// only grow (or hold) relative to the committed baseline.
pub const OBLIGATION_SUFFIXES: &[&str] = &[
    "_verified",
    "_scanned",
    "_matched",
    "_executed",
    "_explored",
    "_checked",
];

/// Whether `name` is an obligation counter.
#[must_use]
pub fn is_obligation_stat(name: &str) -> bool {
    OBLIGATION_SUFFIXES.iter().any(|s| name.ends_with(s))
}

/// Diffs `current` against the committed baseline report text. Returns
/// one message per dropped obligation; empty means the gate holds.
///
/// # Errors
///
/// Returns the parse error when the baseline is not valid JSON or lacks
/// the report shape.
pub fn check_baseline(current: &Report, baseline_text: &str) -> Result<Vec<String>, String> {
    let baseline = parse(baseline_text)?;
    let passes = baseline
        .get("passes")
        .and_then(Json::as_arr)
        .ok_or("baseline has no `passes` array")?;
    let mut drops = Vec::new();
    for pass in passes {
        let name = pass
            .get("pass")
            .and_then(Json::as_str)
            .ok_or("baseline pass entry has no `pass` name")?;
        let Some(cur) = current.passes.iter().find(|p| p.pass == name) else {
            drops.push(format!(
                "pass `{name}` is in the committed baseline but did not run — \
                 a whole proof surface was dropped"
            ));
            continue;
        };
        let Some(Json::Obj(stats)) = pass.get("stats") else {
            continue;
        };
        for (stat, value) in stats {
            if !is_obligation_stat(stat) {
                continue;
            }
            let Some(base) = value.as_num() else { continue };
            let now = cur
                .stats
                .iter()
                .find(|(n, _)| n == stat)
                .map(|(_, v)| *v as f64);
            match now {
                None => drops.push(format!(
                    "pass `{name}`: obligation counter `{stat}` vanished \
                     (baseline {base})"
                )),
                Some(now) if now < base => drops.push(format!(
                    "pass `{name}`: obligation counter `{stat}` decreased \
                     {base} -> {now} — proof coverage silently shrank"
                )),
                Some(_) => {}
            }
        }
    }
    Ok(drops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, PassReport};

    fn sample_report() -> Report {
        let mut protocol = PassReport::new("protocol");
        protocol.bump("configs_verified", 56);
        protocol.bump("peak_staged_blocks", 4);
        let mut lint = PassReport::new("lint");
        lint.bump("files_scanned", 60);
        lint.findings.push(Finding {
            rule: "no-panic-path".into(),
            location: "crates/comm/src/tcp.rs:12".into(),
            message: "bare `unwrap()` — with \"quotes\" and\nnewline".into(),
        });
        Report {
            passes: vec![protocol, lint],
        }
    }

    #[test]
    fn report_json_round_trips_through_the_parser() {
        // The proof-report schema: what `to_json` writes, `parse` reads
        // back structurally intact — escapes included.
        let report = sample_report();
        let parsed = parse(&report.to_json()).expect("report JSON parses");
        assert_eq!(parsed.get("tool").and_then(Json::as_str), Some("sar-check"));
        assert_eq!(parsed.get("clean"), Some(&Json::Bool(false)));
        let passes = parsed.get("passes").and_then(Json::as_arr).expect("passes");
        assert_eq!(passes.len(), 2);
        assert_eq!(
            passes[0].get("pass").and_then(Json::as_str),
            Some("protocol")
        );
        assert_eq!(
            passes[0]
                .get("stats")
                .and_then(|s| s.get("configs_verified"))
                .and_then(Json::as_num),
            Some(56.0)
        );
        let findings = passes[1]
            .get("findings")
            .and_then(Json::as_arr)
            .expect("findings");
        assert_eq!(
            findings[0].get("message").and_then(Json::as_str),
            Some("bare `unwrap()` — with \"quotes\" and\nnewline")
        );
    }

    #[test]
    fn unchanged_baseline_passes_and_growth_is_allowed() {
        let report = sample_report();
        let baseline = report.to_json();
        assert_eq!(check_baseline(&report, &baseline), Ok(Vec::new()));

        let mut grown = sample_report();
        grown.passes[0].bump("configs_verified", 10);
        assert_eq!(check_baseline(&grown, &baseline), Ok(Vec::new()));
    }

    #[test]
    fn dropped_pass_and_shrunk_obligation_are_reported() {
        let report = sample_report();
        let baseline = report.to_json();

        // A whole pass dropped.
        let partial = Report {
            passes: vec![report.passes[1].clone()],
        };
        let drops = check_baseline(&partial, &baseline).expect("parses");
        assert_eq!(drops.len(), 1, "{drops:?}");
        assert!(drops[0].contains("pass `protocol`"));

        // An obligation counter shrunk; the measurement stat may move.
        let mut shrunk = sample_report();
        shrunk.passes[0].stats[0].1 = 40;
        shrunk.passes[0].stats[1].1 = 99;
        let drops = check_baseline(&shrunk, &baseline).expect("parses");
        assert_eq!(drops.len(), 1, "{drops:?}");
        assert!(drops[0].contains("configs_verified"));
        assert!(drops[0].contains("56 -> 40"));
    }

    #[test]
    fn obligation_suffix_classification() {
        assert!(is_obligation_stat("configs_verified"));
        assert!(is_obligation_stat("files_scanned"));
        assert!(is_obligation_stat("fns_checked"));
        assert!(!is_obligation_stat("peak_staged_blocks"));
        assert!(!is_obligation_stat("deterministic_annotations"));
    }
}
