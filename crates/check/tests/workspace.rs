//! The gate, applied to this workspace itself: the protocol sweep, the
//! interleaving checker, and the linter must all come back clean on the
//! code as committed. `cargo test` therefore enforces the same bar CI's
//! `sar-check --all` job does.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/check/../../ = the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn stat(report: &sar_check::PassReport, key: &str) -> Option<u64> {
    report.stats.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}

#[test]
fn protocol_sweep_proves_the_ci_configurations() {
    let report = sar_check::protocol::sweep(&[2, 3, 4, 5, 6, 7, 8], &[0, 1, 2, 3], 2);
    assert!(
        report.findings.is_empty(),
        "protocol violations: {:#?}",
        report.findings
    );
    assert_eq!(
        stat(&report, "configs_verified"),
        Some(56),
        "7 world sizes × 4 depths × 2 case models"
    );
    // The training-protocol extension: gradonly + stale(2) + stale(3)
    // schedules across every (n, k, model) coordinate.
    assert_eq!(
        stat(&report, "protocol_configs_verified"),
        Some(168),
        "7 world sizes × 4 depths × 2 case models × 3 protocols"
    );
    // Serve tier (ctrl broadcast / MFG build / forward / result gather /
    // drain-then-ack shutdown) and codec negotiation at rendezvous.
    assert_eq!(stat(&report, "serve_configs_verified"), Some(7));
    assert_eq!(stat(&report, "negotiations_verified"), Some(7));
}

#[test]
fn interleaving_models_are_clean() {
    let report = sar_check::sched::check_all();
    assert!(
        report.findings.is_empty(),
        "interleaving violations: {:#?}",
        report.findings
    );
}

#[test]
fn the_workspace_lints_clean() {
    let report = sar_check::lint::run(&workspace_root());
    assert!(
        report.findings.is_empty(),
        "lint findings in the committed workspace:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    let scanned = stat(&report, "files_scanned").unwrap_or(0);
    assert!(
        scanned >= 50,
        "the walker found only {scanned} files — is the root wrong?"
    );
    // All committed waivers must be live: an unused one is itself a
    // finding (caught above), so tracked == used here.
    assert!(
        stat(&report, "waivers_tracked").unwrap_or(0) >= 6,
        "the workspace's audited waivers went missing: {:?}",
        report.stats
    );
}

#[test]
fn the_workspace_is_determinism_taint_clean() {
    let report = sar_check::taint::run(&workspace_root());
    assert!(
        report.findings.is_empty(),
        "determinism-taint findings in the committed workspace:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The analysis must actually have traversed the digest closure — a
    // zero here means the roots went missing, not that the code is clean.
    assert!(
        stat(&report, "taint_roots").unwrap_or(0) >= 100,
        "suspiciously few taint roots: {:?}",
        report.stats
    );
    assert!(
        stat(&report, "accum_sites_checked").unwrap_or(0) >= 50,
        "suspiciously few float-accumulation sites: {:?}",
        report.stats
    );
    assert!(
        stat(&report, "deterministic_annotations").unwrap_or(0) >= 15,
        "reviewed-determinism annotations went missing: {:?}",
        report.stats
    );
}

#[test]
fn the_workspace_conserves_its_ledger() {
    let report = sar_check::ledgercheck::run(&workspace_root());
    assert!(
        report.findings.is_empty(),
        "ledger-conservation findings in the committed workspace:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        stat(&report, "codec_variants_checked").unwrap_or(0) >= 4,
        "codec arm coverage shrank: {:?}",
        report.stats
    );
    assert!(
        stat(&report, "comm_sites_checked").unwrap_or(0) >= 10,
        "send/recv site coverage shrank: {:?}",
        report.stats
    );
}
