//! The gate, applied to this workspace itself: the protocol sweep, the
//! interleaving checker, and the linter must all come back clean on the
//! code as committed. `cargo test` therefore enforces the same bar CI's
//! `sar-check --all` job does.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/check/../../ = the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn protocol_sweep_proves_the_ci_configurations() {
    let report = sar_check::protocol::sweep(&[2, 3, 4, 5, 6, 7, 8], &[0, 1, 2, 3], 2);
    assert!(
        report.findings.is_empty(),
        "protocol violations: {:#?}",
        report.findings
    );
    let configs = report
        .stats
        .iter()
        .find(|(k, _)| k == "configs_verified")
        .map(|(_, v)| *v);
    assert_eq!(
        configs,
        Some(56),
        "7 world sizes × 4 depths × 2 case models"
    );
}

#[test]
fn interleaving_models_are_clean() {
    let report = sar_check::sched::check_all();
    assert!(
        report.findings.is_empty(),
        "interleaving violations: {:#?}",
        report.findings
    );
}

#[test]
fn the_workspace_lints_clean() {
    let report = sar_check::lint::run(&workspace_root());
    assert!(
        report.findings.is_empty(),
        "lint findings in the committed workspace:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    let scanned = report
        .stats
        .iter()
        .find(|(k, _)| k == "files_scanned")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(
        scanned >= 50,
        "the walker found only {scanned} files — is the root wrong?"
    );
}
