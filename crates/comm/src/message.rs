//! Message payloads exchanged between workers.

use crate::codec::Codec;
use crate::transport::TransportError;
use crate::wire::WIRE_HEADER_LEN;

/// A typed message payload.
///
/// Payloads carry raw buffers, never tensors: tensors are tied to their
/// creating thread's memory tracker, so senders detach data first (see
/// `sar_tensor::Tensor::into_data`) and receivers re-wrap it, which also
/// attributes the received bytes to the receiving worker's memory — exactly
/// how a real distributed runtime behaves.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A buffer of `f32` values (features, gradients).
    F32(Vec<f32>),
    /// A buffer of `u32` values (indices, labels).
    U32(Vec<u32>),
    /// An opaque byte buffer (serialized reports, control metadata).
    Bytes(Vec<u8>),
    /// A pure synchronization token.
    Empty,
    /// A codec-encoded `f32` block (see [`crate::codec`]): produced by
    /// the sending [`WorkerCtx`](crate::WorkerCtx) when a non-`raw`
    /// codec is active, carried through the transport as-is (both
    /// backends ship exactly these bytes), and decoded back to
    /// [`Payload::F32`] by the receiving context before delivery.
    Encoded {
        /// The codec that produced (and can decode) `bytes`.
        codec: Codec,
        /// The encoded block: stream header + codec body.
        bytes: Vec<u8>,
    },
}

impl Payload {
    /// Payload size in bytes, excluding framing.
    pub fn byte_len(&self) -> usize {
        match self {
            Payload::F32(v) => v.len() * 4,
            Payload::U32(v) => v.len() * 4,
            Payload::Bytes(v) => v.len(),
            Payload::Empty => 0,
            Payload::Encoded { bytes, .. } => bytes.len(),
        }
    }

    /// Size of this payload on the wire: the framed-message header plus
    /// [`Payload::byte_len`]. Every backend accounts traffic with this —
    /// the α–β cost model charges it and the TCP encoder emits exactly this
    /// many bytes — so the sim and TCP byte ledgers are directly comparable.
    pub fn wire_len(&self) -> usize {
        WIRE_HEADER_LEN + self.byte_len()
    }

    /// The dtype tag of this payload, as used in wire frames and error
    /// messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::F32(_) => "F32",
            Payload::U32(_) => "U32",
            Payload::Bytes(_) => "Bytes",
            Payload::Empty => "Empty",
            Payload::Encoded { .. } => "Encoded",
        }
    }

    /// Extracts an `f32` buffer, or reports the mismatch.
    ///
    /// # Errors
    ///
    /// [`TransportError::UnexpectedDtype`] if the payload is not
    /// [`Payload::F32`] — e.g. a misrouted TCP frame landed on a tag whose
    /// receiver expected feature data. Callers on the distributed recv path
    /// should propagate this so the rank exits cleanly instead of
    /// panicking mid-protocol.
    pub fn try_into_f32(self) -> Result<Vec<f32>, TransportError> {
        match self {
            Payload::F32(v) => Ok(v),
            other => Err(TransportError::UnexpectedDtype {
                expected: "F32",
                got: other.kind(),
            }),
        }
    }

    /// Extracts a `u32` buffer, or reports the mismatch.
    ///
    /// # Errors
    ///
    /// [`TransportError::UnexpectedDtype`] if the payload is not
    /// [`Payload::U32`].
    pub fn try_into_u32(self) -> Result<Vec<u32>, TransportError> {
        match self {
            Payload::U32(v) => Ok(v),
            other => Err(TransportError::UnexpectedDtype {
                expected: "U32",
                got: other.kind(),
            }),
        }
    }

    /// Extracts a raw byte buffer, or reports the mismatch.
    ///
    /// # Errors
    ///
    /// [`TransportError::UnexpectedDtype`] if the payload is not
    /// [`Payload::Bytes`].
    pub fn try_into_bytes(self) -> Result<Vec<u8>, TransportError> {
        match self {
            Payload::Bytes(v) => Ok(v),
            other => Err(TransportError::UnexpectedDtype {
                expected: "Bytes",
                got: other.kind(),
            }),
        }
    }

    /// Extracts an `f32` buffer.
    ///
    /// # Panics
    ///
    /// Panics if the payload is not [`Payload::F32`]. Fallible callers
    /// should use [`Payload::try_into_f32`].
    pub fn into_f32(self) -> Vec<f32> {
        self.try_into_f32().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Extracts a `u32` buffer.
    ///
    /// # Panics
    ///
    /// Panics if the payload is not [`Payload::U32`]. Fallible callers
    /// should use [`Payload::try_into_u32`].
    pub fn into_u32(self) -> Vec<u32> {
        self.try_into_u32().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Extracts a raw byte buffer.
    ///
    /// # Panics
    ///
    /// Panics if the payload is not [`Payload::Bytes`]. Fallible callers
    /// should use [`Payload::try_into_bytes`].
    pub fn into_bytes(self) -> Vec<u8> {
        self.try_into_bytes().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// An addressed message in flight, as handed to [`WorkerCtx`] by a
/// [`Transport`](crate::Transport) backend.
#[derive(Debug)]
pub struct Message {
    /// Sender rank.
    pub src: u32,
    /// Message tag.
    pub tag: u64,
    /// The payload.
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_len_counts_payload() {
        assert_eq!(Payload::F32(vec![0.0; 10]).byte_len(), 40);
        assert_eq!(Payload::U32(vec![1, 2]).byte_len(), 8);
        assert_eq!(Payload::Bytes(vec![0; 5]).byte_len(), 5);
        assert_eq!(Payload::Empty.byte_len(), 0);
    }

    #[test]
    fn wire_len_adds_the_frame_header() {
        assert_eq!(Payload::F32(vec![0.0; 10]).wire_len(), WIRE_HEADER_LEN + 40);
        assert_eq!(Payload::Empty.wire_len(), WIRE_HEADER_LEN);
    }

    #[test]
    fn into_f32_round_trips() {
        let v = vec![1.0, 2.0];
        assert_eq!(Payload::F32(v.clone()).into_f32(), v);
    }

    #[test]
    #[should_panic(expected = "expected F32")]
    fn into_f32_rejects_u32() {
        let _ = Payload::U32(vec![1]).into_f32();
    }

    #[test]
    fn try_into_reports_the_mismatch_instead_of_panicking() {
        let err = Payload::U32(vec![1]).try_into_f32().unwrap_err();
        assert_eq!(err.to_string(), "expected F32 payload, got U32");
        let err = Payload::Empty.try_into_u32().unwrap_err();
        assert_eq!(err.to_string(), "expected U32 payload, got Empty");
        let err = Payload::F32(vec![0.0]).try_into_bytes().unwrap_err();
        assert_eq!(err.to_string(), "expected Bytes payload, got F32");
        assert_eq!(Payload::Bytes(vec![7]).try_into_bytes().unwrap(), vec![7]);
    }
}
