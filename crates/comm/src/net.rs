//! The α–β communication cost model and per-worker traffic statistics.

use crate::phase::PhaseLedger;

/// α–β model of a network link: transferring a `b`-byte message costs
/// `alpha_us + b / bytes_per_us` microseconds of simulated time, charged to
/// the receiving worker.
///
/// The default models the paper's 200 Gb/s InfiniBand HDR fabric
/// (≈25 GB/s ⇒ 25 000 bytes/µs, ≈1.5 µs latency). Benchmarks on scaled-down
/// graphs typically scale the bandwidth down by the same factor as the
/// graph so that compute/communication ratios match the paper's regime —
/// see `sar-bench`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-message latency in microseconds.
    pub alpha_us: f64,
    /// Bandwidth in bytes per microsecond.
    pub bytes_per_us: f64,
}

impl CostModel {
    /// Simulated transfer time for one message, in microseconds.
    pub fn message_cost_us(&self, bytes: usize) -> f64 {
        self.alpha_us + bytes as f64 / self.bytes_per_us
    }

    /// A model with `factor`× less bandwidth (latency unchanged). Useful
    /// for matching a scaled-down graph to the paper's compute/comm ratio.
    pub fn scale_bandwidth(&self, factor: f64) -> CostModel {
        CostModel {
            alpha_us: self.alpha_us,
            bytes_per_us: self.bytes_per_us / factor,
        }
    }

    /// A model slowed down uniformly by `factor`: `factor`× higher latency
    /// *and* `factor`× less bandwidth. This is the right way to match this
    /// reproduction's single-thread compute rate to the paper's 36-core
    /// workers: both the per-message and per-byte costs grow relative to
    /// compute, preserving the paper's latency-bound regime at high worker
    /// counts (SAR's sequential rounds send N−1 small messages per layer).
    pub fn scale(&self, factor: f64) -> CostModel {
        CostModel {
            alpha_us: self.alpha_us * factor,
            bytes_per_us: self.bytes_per_us / factor,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alpha_us: 1.5,
            bytes_per_us: 25_000.0,
        }
    }
}

/// Communication statistics accumulated by one worker.
#[derive(Debug, Clone, PartialEq)]
pub struct CommStats {
    /// Bytes this worker sent to each peer.
    pub sent_bytes: Vec<u64>,
    /// Number of messages sent.
    pub sent_messages: u64,
    /// Bytes received.
    pub recv_bytes: u64,
    /// Simulated communication time charged to this worker, microseconds.
    pub sim_comm_us: f64,
    /// Per-phase / per-layer breakdown of the traffic above, plus CPU time
    /// and tensor-memory peaks recorded by phase scopes
    /// (see [`WorkerCtx::phase_scope`](crate::WorkerCtx::phase_scope)).
    pub ledger: PhaseLedger,
}

impl CommStats {
    pub(crate) fn new(world: usize) -> Self {
        CommStats {
            sent_bytes: vec![0; world],
            sent_messages: 0,
            recv_bytes: 0,
            sim_comm_us: 0.0,
            ledger: PhaseLedger::default(),
        }
    }

    /// Total bytes sent to all peers.
    pub fn total_sent(&self) -> u64 {
        self.sent_bytes.iter().sum()
    }

    /// Simulated communication time in seconds.
    pub fn sim_comm_secs(&self) -> f64 {
        self.sim_comm_us / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_combines_latency_and_bandwidth() {
        let m = CostModel {
            alpha_us: 2.0,
            bytes_per_us: 100.0,
        };
        assert!((m.message_cost_us(1000) - 12.0).abs() < 1e-9);
        assert!((m.message_cost_us(0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scale_bandwidth_slows_transfers() {
        let m = CostModel::default().scale_bandwidth(10.0);
        assert!(m.message_cost_us(250_000) > CostModel::default().message_cost_us(250_000));
        assert_eq!(m.alpha_us, CostModel::default().alpha_us);
    }
}
