//! The α–β communication cost model and per-worker traffic statistics.

use crate::phase::PhaseLedger;

/// α–β model of a network link: transferring a `b`-byte message costs
/// `alpha_us + b / bytes_per_us` microseconds of simulated time, charged to
/// the receiving worker.
///
/// The default models the paper's 200 Gb/s InfiniBand HDR fabric
/// (≈25 GB/s ⇒ 25 000 bytes/µs, ≈1.5 µs latency). Benchmarks on scaled-down
/// graphs typically scale the bandwidth down by the same factor as the
/// graph so that compute/communication ratios match the paper's regime —
/// see `sar-bench`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-message latency in microseconds.
    pub alpha_us: f64,
    /// Bandwidth in bytes per microsecond.
    pub bytes_per_us: f64,
}

impl CostModel {
    /// Simulated transfer time for one message, in microseconds.
    pub fn message_cost_us(&self, bytes: usize) -> f64 {
        self.alpha_us + bytes as f64 / self.bytes_per_us
    }

    /// A model with `factor`× less bandwidth (latency unchanged). Useful
    /// for matching a scaled-down graph to the paper's compute/comm ratio.
    pub fn scale_bandwidth(&self, factor: f64) -> CostModel {
        CostModel {
            alpha_us: self.alpha_us,
            bytes_per_us: self.bytes_per_us / factor,
        }
    }

    /// A model slowed down uniformly by `factor`: `factor`× higher latency
    /// *and* `factor`× less bandwidth. This is the right way to match this
    /// reproduction's single-thread compute rate to the paper's 36-core
    /// workers: both the per-message and per-byte costs grow relative to
    /// compute, preserving the paper's latency-bound regime at high worker
    /// counts (SAR's sequential rounds send N−1 small messages per layer).
    pub fn scale(&self, factor: f64) -> CostModel {
        CostModel {
            alpha_us: self.alpha_us * factor,
            bytes_per_us: self.bytes_per_us / factor,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alpha_us: 1.5,
            bytes_per_us: 25_000.0,
        }
    }
}

/// Communication statistics accumulated by one worker.
#[derive(Debug, Clone, PartialEq)]
pub struct CommStats {
    /// Bytes this worker sent to each peer.
    pub sent_bytes: Vec<u64>,
    /// Number of messages sent.
    pub sent_messages: u64,
    /// Bytes received.
    pub recv_bytes: u64,
    /// Communication time charged to this worker, microseconds: α–β
    /// simulated time on the channel backend, measured wall-clock blocking
    /// time on the TCP backend (see [`Clock`](crate::Clock)).
    pub comm_us: f64,
    /// Per-phase / per-layer breakdown of the traffic above, plus CPU time
    /// and tensor-memory peaks recorded by phase scopes
    /// (see [`WorkerCtx::phase_scope`](crate::WorkerCtx::phase_scope)).
    pub ledger: PhaseLedger,
}

impl CommStats {
    /// Zeroed statistics for a `world`-rank cluster.
    pub fn new(world: usize) -> Self {
        CommStats {
            sent_bytes: vec![0; world],
            sent_messages: 0,
            recv_bytes: 0,
            comm_us: 0.0,
            ledger: PhaseLedger::default(),
        }
    }

    /// Total bytes sent to all peers.
    pub fn total_sent(&self) -> u64 {
        self.sent_bytes.iter().sum()
    }

    /// Communication time in seconds.
    pub fn comm_secs(&self) -> f64 {
        self.comm_us / 1e6
    }

    /// Serializes the statistics to a self-contained little-endian byte
    /// buffer — the format used to gather per-rank results to rank 0 over
    /// the transport itself when workers live in separate processes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + 64 * self.ledger.len());
        buf.extend_from_slice(&(self.sent_bytes.len() as u32).to_le_bytes());
        for b in &self.sent_bytes {
            buf.extend_from_slice(&b.to_le_bytes());
        }
        buf.extend_from_slice(&self.sent_messages.to_le_bytes());
        buf.extend_from_slice(&self.recv_bytes.to_le_bytes());
        buf.extend_from_slice(&self.comm_us.to_le_bytes());
        buf.extend_from_slice(&(self.ledger.len() as u32).to_le_bytes());
        for (phase, layer, e) in self.ledger.rows() {
            buf.push(phase.code());
            match layer {
                Some(l) => {
                    buf.push(1);
                    buf.extend_from_slice(&l.to_le_bytes());
                }
                None => {
                    buf.push(0);
                    buf.extend_from_slice(&0u16.to_le_bytes());
                }
            }
            buf.extend_from_slice(&e.sent_bytes.to_le_bytes());
            buf.extend_from_slice(&e.recv_bytes.to_le_bytes());
            buf.extend_from_slice(&e.wire_sent_bytes.to_le_bytes());
            buf.extend_from_slice(&e.wire_recv_bytes.to_le_bytes());
            buf.extend_from_slice(&e.sent_messages.to_le_bytes());
            buf.extend_from_slice(&e.recv_messages.to_le_bytes());
            buf.extend_from_slice(&e.comm_us.to_le_bytes());
            buf.extend_from_slice(&e.cpu_us.to_le_bytes());
            buf.extend_from_slice(&e.wall_us.to_le_bytes());
            buf.extend_from_slice(&e.blocked_us.to_le_bytes());
            buf.extend_from_slice(&e.peak_tensor_bytes.to_le_bytes());
            buf.extend_from_slice(&e.spill_bytes.to_le_bytes());
            buf.extend_from_slice(&e.fault_bytes.to_le_bytes());
            buf.extend_from_slice(&e.disk_blocked_us.to_le_bytes());
        }
        buf
    }

    /// Inverse of [`CommStats::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a diagnostic if the buffer is truncated or structurally
    /// invalid (unknown phase code, impossible lengths).
    pub fn from_bytes(buf: &[u8]) -> Result<CommStats, String> {
        let mut cur = Cursor { buf, pos: 0 };
        let world = cur.u32()? as usize;
        if world > 1 << 20 {
            return Err(format!("implausible world size {world}"));
        }
        let mut stats = CommStats::new(world);
        for slot in stats.sent_bytes.iter_mut() {
            *slot = cur.u64()?;
        }
        stats.sent_messages = cur.u64()?;
        stats.recv_bytes = cur.u64()?;
        stats.comm_us = cur.f64()?;
        let rows = cur.u32()? as usize;
        if rows > 1 << 20 {
            return Err(format!("implausible ledger size {rows}"));
        }
        for _ in 0..rows {
            let code = cur.u8()?;
            let phase = crate::phase::Phase::from_code(code)
                .ok_or_else(|| format!("unknown phase code {code}"))?;
            let has_layer = cur.u8()? != 0;
            let layer_raw = cur.u16()?;
            let layer = has_layer.then_some(layer_raw);
            let entry = stats.ledger.entry_mut(phase, layer);
            entry.sent_bytes = cur.u64()?;
            entry.recv_bytes = cur.u64()?;
            entry.wire_sent_bytes = cur.u64()?;
            entry.wire_recv_bytes = cur.u64()?;
            entry.sent_messages = cur.u64()?;
            entry.recv_messages = cur.u64()?;
            entry.comm_us = cur.f64()?;
            entry.cpu_us = cur.f64()?;
            entry.wall_us = cur.f64()?;
            entry.blocked_us = cur.f64()?;
            entry.peak_tensor_bytes = cur.u64()?;
            entry.spill_bytes = cur.u64()?;
            entry.fault_bytes = cur.u64()?;
            entry.disk_blocked_us = cur.f64()?;
        }
        if cur.pos != buf.len() {
            return Err(format!(
                "CommStats buffer has {} trailing bytes",
                buf.len() - cur.pos
            ));
        }
        Ok(stats)
    }
}

/// Bounds-checked little-endian reader over a byte slice, shared by the
/// [`CommStats`] codec.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("CommStats buffer truncated at offset {}", self.pos))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Bounds-checked fixed-size read — the array conversion cannot fail
    /// because `take` returned exactly `N` bytes, so no unwrap is needed.
    fn take_arr<const N: usize>(&mut self) -> Result<[u8; N], String> {
        let s = self.take(N)?;
        let mut arr = [0u8; N];
        arr.copy_from_slice(s);
        Ok(arr)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take_arr()?))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take_arr()?))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take_arr()?))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take_arr()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_combines_latency_and_bandwidth() {
        let m = CostModel {
            alpha_us: 2.0,
            bytes_per_us: 100.0,
        };
        assert!((m.message_cost_us(1000) - 12.0).abs() < 1e-9);
        assert!((m.message_cost_us(0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scale_bandwidth_slows_transfers() {
        let m = CostModel::default().scale_bandwidth(10.0);
        assert!(m.message_cost_us(250_000) > CostModel::default().message_cost_us(250_000));
        assert_eq!(m.alpha_us, CostModel::default().alpha_us);
    }

    #[test]
    fn comm_stats_codec_round_trips() {
        use crate::phase::Phase;
        let mut s = CommStats::new(3);
        s.sent_bytes = vec![10, 0, 99];
        s.sent_messages = 7;
        s.recv_bytes = 1234;
        s.comm_us = 42.5;
        let e = s.ledger.entry_mut(Phase::ForwardFetch, Some(2));
        e.sent_bytes = 100;
        e.recv_bytes = 200;
        e.wire_sent_bytes = 60;
        e.wire_recv_bytes = 110;
        e.sent_messages = 3;
        e.recv_messages = 4;
        e.comm_us = 1.25;
        e.cpu_us = 9.75;
        e.wall_us = 3.5;
        e.blocked_us = 0.75;
        e.peak_tensor_bytes = 4096;
        e.spill_bytes = 8192;
        e.fault_bytes = 8000;
        e.disk_blocked_us = 2.25;
        s.ledger.entry_mut(Phase::GradRouting, None).recv_bytes = 55;

        let round = CommStats::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(round, s);
    }

    #[test]
    fn comm_stats_codec_rejects_truncation_and_garbage() {
        let s = CommStats::new(2);
        let bytes = s.to_bytes();
        assert!(CommStats::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(CommStats::from_bytes(&extra).is_err());
        assert!(CommStats::from_bytes(&[0xff; 8]).is_err());
    }
}
