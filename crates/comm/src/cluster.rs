//! Spawning and joining a simulated cluster of worker threads.

use std::sync::Arc;
use std::time::Duration;

use sar_tensor::MemoryTracker;

use crate::ctx::WorkerCtx;
use crate::net::{CommStats, CostModel};
use crate::transport::ChannelTransport;

/// What one worker produced: its closure result plus measurements.
#[derive(Debug, Clone)]
pub struct WorkerOutcome<T> {
    /// The worker's rank.
    pub rank: usize,
    /// Value returned by the worker closure.
    pub result: T,
    /// Communication statistics (bytes, messages, simulated time).
    pub comm: CommStats,
    /// Peak live tensor bytes on this worker's thread during the run.
    pub peak_tensor_bytes: usize,
}

/// A simulated cluster of `n` worker threads.
///
/// [`Cluster::run`] executes one SPMD program: the same closure runs on
/// every worker with its own [`WorkerCtx`]. Results and per-worker
/// measurements come back as [`WorkerOutcome`]s ordered by rank.
///
/// # Example
///
/// ```
/// use sar_comm::{Cluster, CostModel, Payload};
///
/// let out = Cluster::new(2, CostModel::default()).run(|ctx| {
///     let peer = 1 - ctx.rank();
///     ctx.send(peer, 0, Payload::U32(vec![ctx.rank() as u32]));
///     ctx.recv(peer, 0).into_u32()[0]
/// });
/// assert_eq!(out[0].result, 1);
/// assert_eq!(out[1].result, 0);
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    world: usize,
    cost: CostModel,
    recv_timeout: Duration,
}

impl Cluster {
    /// Creates a cluster description with `world` workers and the given
    /// network cost model.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    pub fn new(world: usize, cost: CostModel) -> Self {
        if world == 0 {
            panic!("cluster needs at least one worker");
        }
        Cluster {
            world,
            cost,
            recv_timeout: Duration::from_secs(300),
        }
    }

    /// Sets how long a blocked `recv` waits before declaring the protocol
    /// dead (default 300 s). Shorten in tests that exercise failure paths.
    pub fn recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Number of workers.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// Runs `f` on every worker and joins.
    ///
    /// The closure receives this worker's [`WorkerCtx`] *by value*, so SAR
    /// can move it into an `Rc` and let backward-pass tape closures
    /// communicate. Anything `Send` may be returned. Peak tensor memory is
    /// measured from the start of the closure (the worker thread starts
    /// with zero live tensors).
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic after all workers have been
    /// joined. Workers blocked on a peer that panicked fail their `recv`
    /// after the configured timeout, so a single failure tears down the
    /// whole cluster rather than hanging it.
    pub fn run<T, F>(&self, f: F) -> Vec<WorkerOutcome<T>>
    where
        T: Send + 'static,
        F: Fn(WorkerCtx) -> T + Send + Sync + 'static,
    {
        let n = self.world;
        let f = Arc::new(f);
        // Each mesh transport holds a sender clone for every rank, so a
        // worker that finishes early (dropping its transport) never
        // invalidates a peer's in-flight send.
        let mesh = ChannelTransport::mesh(n);

        let mut handles = Vec::with_capacity(n);
        for (rank, transport) in mesh.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let cost = self.cost;
            let timeout = self.recv_timeout;
            let handle = std::thread::Builder::new()
                .name(format!("sar-worker-{rank}"))
                .spawn(move || {
                    let ctx = WorkerCtx::new(Box::new(transport), cost, timeout);
                    let stats = ctx.share_stats();
                    MemoryTracker::reset_peak();
                    let result = f(ctx);
                    let peak = MemoryTracker::stats().peak_bytes;
                    let comm = stats.borrow().clone();
                    WorkerOutcome {
                        rank,
                        result,
                        comm,
                        peak_tensor_bytes: peak,
                    }
                })
                .unwrap_or_else(|e| panic!("failed to spawn worker thread for rank {rank}: {e}"));
            handles.push(handle);
        }

        let mut outcomes = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for handle in handles {
            match handle.join() {
                Ok(outcome) => outcomes.push(outcome),
                Err(e) => panic = panic.or(Some(e)),
            }
        }
        if let Some(e) = panic {
            std::panic::resume_unwind(e);
        }
        outcomes.sort_by_key(|o| o.rank);
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Payload;

    #[test]
    fn single_worker_runs() {
        let out = Cluster::new(1, CostModel::default()).run(|ctx| ctx.rank());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].result, 0);
    }

    #[test]
    fn ring_message_passing() {
        let out = Cluster::new(5, CostModel::default()).run(|ctx| {
            let next = (ctx.rank() + 1) % ctx.world_size();
            let prev = (ctx.rank() + ctx.world_size() - 1) % ctx.world_size();
            ctx.send(next, 1, Payload::U32(vec![ctx.rank() as u32]));
            ctx.recv(prev, 1).into_u32()[0]
        });
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.result as usize, (i + 4) % 5);
        }
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let out = Cluster::new(2, CostModel::default()).run(|ctx| {
            let peer = 1 - ctx.rank();
            ctx.send(peer, 10, Payload::F32(vec![1.0]));
            ctx.send(peer, 20, Payload::F32(vec![2.0]));
            // Receive in the opposite order.
            let b = ctx.recv(peer, 20).into_f32()[0];
            let a = ctx.recv(peer, 10).into_f32()[0];
            (a, b)
        });
        assert_eq!(out[0].result, (1.0, 2.0));
    }

    #[test]
    fn send_to_self_loops_back() {
        let out = Cluster::new(1, CostModel::default()).run(|ctx| {
            ctx.send(0, 3, Payload::U32(vec![42]));
            ctx.recv(0, 3).into_u32()[0]
        });
        assert_eq!(out[0].result, 42);
    }

    #[test]
    fn traffic_is_counted_and_charged() {
        use crate::wire::WIRE_HEADER_LEN;
        let out = Cluster::new(2, CostModel::default()).run(|ctx| {
            let peer = 1 - ctx.rank();
            ctx.send(peer, 0, Payload::F32(vec![0.0; 1000]));
            let _ = ctx.recv(peer, 0);
        });
        // 4000 payload bytes + the framed-message header.
        let wire = 4000 + WIRE_HEADER_LEN as u64;
        for o in &out {
            assert_eq!(o.comm.total_sent(), wire);
            assert_eq!(o.comm.recv_bytes, wire);
            let expect = CostModel::default().message_cost_us(wire as usize);
            assert!((o.comm.comm_us - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn self_messages_are_free() {
        let out = Cluster::new(1, CostModel::default()).run(|ctx| {
            ctx.send(0, 0, Payload::F32(vec![0.0; 100]));
            let _ = ctx.recv(0, 0);
        });
        assert_eq!(out[0].comm.comm_us, 0.0);
    }

    #[test]
    fn peak_memory_is_per_worker() {
        use sar_tensor::Tensor;
        let out = Cluster::new(3, CostModel::default()).run(|ctx| {
            // Worker r allocates (r+1) * 100 KiB.
            let rows = (ctx.rank() + 1) * 25_600;
            let t = Tensor::zeros(&[rows, 1]);
            t.sum()
        });
        for (r, o) in out.iter().enumerate() {
            let expect = (r + 1) * 25_600 * 4;
            assert!(
                o.peak_tensor_bytes >= expect && o.peak_tensor_bytes < expect + 4096,
                "rank {r}: peak {} vs expected {expect}",
                o.peak_tensor_bytes
            );
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static BEFORE: AtomicUsize = AtomicUsize::new(0);
        let out = Cluster::new(4, CostModel::default()).run(|ctx| {
            BEFORE.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier, all 4 increments must be visible.
            BEFORE.load(Ordering::SeqCst)
        });
        for o in out {
            assert_eq!(o.result, 4);
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let _ = Cluster::new(2, CostModel::default())
            .recv_timeout(Duration::from_millis(200))
            .run(|ctx| {
                if ctx.rank() == 0 {
                    panic!("boom");
                }
            });
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn recv_timeout_reports_deadlock() {
        let _ = Cluster::new(2, CostModel::default())
            .recv_timeout(Duration::from_millis(100))
            .run(|ctx| {
                if ctx.rank() == 0 {
                    // Wait for a message nobody sends.
                    let _ = ctx.recv(1, 99);
                }
            });
    }
}
