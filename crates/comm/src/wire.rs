//! The framed wire format shared by every transport backend.
//!
//! A frame is a fixed 32-byte header followed by the raw payload bytes:
//!
//! ```text
//!  offset  size  field
//!  ------  ----  -----------------------------------------------------
//!       0     4  magic  b"SAR1"
//!       4     1  kind   (0 = data, 1 = barrier, 2 = shutdown,
//!                        3 = request, 4 = response)
//!       5     1  dtype  (0 = empty, 1 = f32, 2 = u32, 3 = bytes,
//!                        4 = codec-encoded f32 block)
//!       6     1  codec  (for dtype 4: the wire codec id, see
//!                        [`Codec::code`]; zero otherwise)
//!       7     1  reserved (zero)
//!       8     4  src rank, u32 LE
//!      12     8  tag, u64 LE
//!      20     8  payload length in bytes, u64 LE
//!      28     4  CRC-32 (IEEE) of header bytes 0..28 + payload, u32 LE
//!      32     …  payload (little-endian scalars)
//! ```
//!
//! The header overhead is charged to *every* message by [`Payload::wire_len`],
//! so the simulated α–β cost model and the TCP byte ledgers agree exactly.
//! Integrity is end-to-end: the checksum covers the header fields as well as
//! the payload, so a corrupted tag or length is rejected, not misrouted.

use std::io::{self, Read, Write};

use crate::codec::Codec;
use crate::message::Payload;

/// Magic bytes opening every frame.
pub const WIRE_MAGIC: [u8; 4] = *b"SAR1";

/// Size of the fixed frame header, in bytes. Included in
/// [`Payload::wire_len`] so the cost model and the byte ledgers count
/// framing overhead identically on every backend.
pub const WIRE_HEADER_LEN: usize = 32;

/// Largest payload a frame may carry (a defence against decoding garbage
/// lengths after stream desynchronization): 1 GiB.
pub const WIRE_MAX_PAYLOAD: u64 = 1 << 30;

/// Frame kind: application data, transport-internal control traffic, or
/// client-facing serving traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A tagged application message.
    Data,
    /// A barrier announcement (`tag` carries the barrier sequence number).
    Barrier,
    /// Clean-shutdown announcement: the peer will send nothing further.
    Shutdown,
    /// A serving-tier request from a client to a front-end (`tag` carries
    /// the client-chosen request id, echoed back in the response).
    Request,
    /// A serving-tier response from a front-end to a client (`tag` echoes
    /// the request id).
    Response,
}

impl FrameKind {
    fn code(self) -> u8 {
        match self {
            FrameKind::Data => 0,
            FrameKind::Barrier => 1,
            FrameKind::Shutdown => 2,
            FrameKind::Request => 3,
            FrameKind::Response => 4,
        }
    }

    fn from_code(c: u8) -> Option<FrameKind> {
        match c {
            0 => Some(FrameKind::Data),
            1 => Some(FrameKind::Barrier),
            2 => Some(FrameKind::Shutdown),
            3 => Some(FrameKind::Request),
            4 => Some(FrameKind::Response),
            _ => None,
        }
    }
}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Data or control.
    pub kind: FrameKind,
    /// Sender rank as claimed by the header (verified against the
    /// connection's peer by the TCP backend).
    pub src: u32,
    /// Message tag (barrier sequence number for barrier frames).
    pub tag: u64,
    /// The payload.
    pub payload: Payload,
}

/// Why a frame could not be decoded.
#[derive(Debug)]
pub enum WireError {
    /// The stream ended cleanly on a frame boundary.
    Eof,
    /// The stream ended (or errored) mid-frame.
    Io(io::Error),
    /// The header did not start with [`WIRE_MAGIC`] or used an unknown
    /// kind/dtype code — the stream is desynchronized or corrupt.
    BadHeader(String),
    /// The CRC-32 over header + payload did not match.
    ChecksumMismatch {
        /// Checksum carried by the frame.
        expected: u32,
        /// Checksum computed from the received bytes.
        actual: u32,
        /// The wire codec the (untrusted) header claimed, if the frame
        /// was codec-encoded — so a corrupt compressed frame names the
        /// codec in its diagnostic.
        codec: Option<Codec>,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Eof => write!(f, "end of stream"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::BadHeader(d) => write!(f, "bad frame header: {d}"),
            WireError::ChecksumMismatch {
                expected,
                actual,
                codec,
            } => {
                write!(
                    f,
                    "checksum mismatch: frame claims {expected:#010x}, computed {actual:#010x}"
                )?;
                if let Some(c) = codec {
                    write!(f, " ({}-coded frame)", c.name())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for WireError {}

// ----------------------------------------------------------------------
// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.
// ----------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Streaming CRC-32 (IEEE): feed byte slices, then [`Crc32::finish`].
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Default for Crc32 {
    fn default() -> Self {
        Crc32(0xffff_ffff)
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC32_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// The final checksum.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xffff_ffff
    }
}

/// CRC-32 of one buffer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

// ----------------------------------------------------------------------
// Encoding
// ----------------------------------------------------------------------

fn dtype_code(p: &Payload) -> u8 {
    match p {
        Payload::Empty => 0,
        Payload::F32(_) => 1,
        Payload::U32(_) => 2,
        Payload::Bytes(_) => 3,
        Payload::Encoded { .. } => 4,
    }
}

/// The codec byte (header offset 6): the codec id for encoded frames,
/// zero for every plain dtype.
fn codec_byte(p: &Payload) -> u8 {
    match p {
        Payload::Encoded { codec, .. } => codec.code(),
        _ => 0,
    }
}

fn payload_bytes(p: &Payload, out: &mut Vec<u8>) {
    match p {
        Payload::Empty => {}
        Payload::F32(v) => {
            out.reserve(v.len() * 4);
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        Payload::U32(v) => {
            out.reserve(v.len() * 4);
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        Payload::Bytes(v) => out.extend_from_slice(v),
        Payload::Encoded { bytes, .. } => out.extend_from_slice(bytes),
    }
}

fn decode_payload(dtype: u8, codec_id: u8, bytes: Vec<u8>) -> Result<Payload, WireError> {
    if dtype != 4 && codec_id != 0 {
        return Err(WireError::BadHeader(format!(
            "codec byte {codec_id} set on a non-encoded frame (dtype {dtype})"
        )));
    }
    match dtype {
        0 => {
            if bytes.is_empty() {
                Ok(Payload::Empty)
            } else {
                Err(WireError::BadHeader(format!(
                    "empty dtype with {} payload bytes",
                    bytes.len()
                )))
            }
        }
        1 | 2 => {
            if !bytes.len().is_multiple_of(4) {
                return Err(WireError::BadHeader(format!(
                    "scalar payload length {} not a multiple of 4",
                    bytes.len()
                )));
            }
            if dtype == 1 {
                let v = bytes
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect();
                Ok(Payload::F32(v))
            } else {
                let v = bytes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect();
                Ok(Payload::U32(v))
            }
        }
        3 => Ok(Payload::Bytes(bytes)),
        4 => {
            let codec = Codec::from_code(codec_id).ok_or_else(|| {
                WireError::BadHeader(format!("encoded frame carries unknown codec id {codec_id}"))
            })?;
            if codec == Codec::Raw {
                return Err(WireError::BadHeader(
                    "encoded frame claims the raw codec (raw payloads use dtype 1)".into(),
                ));
            }
            Ok(Payload::Encoded { codec, bytes })
        }
        other => Err(WireError::BadHeader(format!("unknown dtype code {other}"))),
    }
}

/// Encodes one frame into a contiguous buffer (header + payload).
pub fn encode_frame(kind: FrameKind, src: u32, tag: u64, payload: &Payload) -> Vec<u8> {
    let mut body = Vec::new();
    payload_bytes(payload, &mut body);
    let mut buf = Vec::with_capacity(WIRE_HEADER_LEN + body.len());
    buf.extend_from_slice(&WIRE_MAGIC);
    buf.push(kind.code());
    buf.push(dtype_code(payload));
    buf.push(codec_byte(payload));
    buf.push(0);
    buf.extend_from_slice(&src.to_le_bytes());
    buf.extend_from_slice(&tag.to_le_bytes());
    buf.extend_from_slice(&(body.len() as u64).to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&buf[..28]);
    crc.update(&body);
    buf.extend_from_slice(&crc.finish().to_le_bytes());
    buf.extend_from_slice(&body);
    debug_assert_eq!(buf.len(), WIRE_HEADER_LEN + body.len());
    buf
}

/// Writes one frame to `w` (a single `write_all`, so concurrent writers on
/// distinct streams never interleave partial frames).
pub fn write_frame(
    w: &mut impl Write,
    kind: FrameKind,
    src: u32,
    tag: u64,
    payload: &Payload,
) -> io::Result<()> {
    w.write_all(&encode_frame(kind, src, tag, payload))
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    WireError::Eof
                } else {
                    WireError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("stream ended mid-frame ({filled} of {} bytes)", buf.len()),
                    ))
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Copies a fixed-size little-endian field out of a frame header. The
/// header is a fixed 32-byte array and every `at`/`N` pair is a compile-time
/// constant within bounds, so no fallible conversion is needed.
fn header_field<const N: usize>(header: &[u8; WIRE_HEADER_LEN], at: usize) -> [u8; N] {
    let mut arr = [0u8; N];
    arr.copy_from_slice(&header[at..at + N]);
    arr
}

/// Reads and validates one frame from `r`.
///
/// # Errors
///
/// [`WireError::Eof`] on a clean end-of-stream between frames; the other
/// variants on truncation, corruption, or checksum mismatch.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut header = [0u8; WIRE_HEADER_LEN];
    read_exact_or_eof(r, &mut header)?;
    if header[..4] != WIRE_MAGIC {
        return Err(WireError::BadHeader(format!(
            "magic {:02x?} != {:02x?}",
            &header[..4],
            WIRE_MAGIC
        )));
    }
    let kind = FrameKind::from_code(header[4])
        .ok_or_else(|| WireError::BadHeader(format!("unknown frame kind {}", header[4])))?;
    let dtype = header[5];
    let codec_id = header[6];
    let src = u32::from_le_bytes(header_field(&header, 8));
    let tag = u64::from_le_bytes(header_field(&header, 12));
    let len = u64::from_le_bytes(header_field(&header, 20));
    let expected = u32::from_le_bytes(header_field(&header, 28));
    if len > WIRE_MAX_PAYLOAD {
        return Err(WireError::BadHeader(format!(
            "payload length {len} exceeds the {WIRE_MAX_PAYLOAD}-byte frame limit"
        )));
    }
    let mut body = vec![0u8; len as usize];
    read_exact_or_eof(r, &mut body).map_err(|e| match e {
        // EOF inside the payload is truncation, not a clean close.
        WireError::Eof => WireError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stream ended inside a frame payload",
        )),
        other => other,
    })?;
    let mut crc = Crc32::new();
    crc.update(&header[..28]);
    crc.update(&body);
    let actual = crc.finish();
    if actual != expected {
        return Err(WireError::ChecksumMismatch {
            expected,
            actual,
            codec: (dtype == 4).then(|| Codec::from_code(codec_id)).flatten(),
        });
    }
    let payload = decode_payload(dtype, codec_id, body)?;
    Ok(Frame {
        kind,
        src,
        tag,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn round_trip(payload: Payload) {
        let buf = encode_frame(FrameKind::Data, 3, 42, &payload);
        assert_eq!(buf.len(), payload.wire_len());
        let frame = read_frame(&mut &buf[..]).expect("decode");
        assert_eq!(frame.kind, FrameKind::Data);
        assert_eq!(frame.src, 3);
        assert_eq!(frame.tag, 42);
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn frames_round_trip_every_dtype() {
        round_trip(Payload::Empty);
        round_trip(Payload::F32(vec![1.5, -2.25, f32::MIN_POSITIVE]));
        round_trip(Payload::U32(vec![0, 1, u32::MAX]));
        round_trip(Payload::Bytes(vec![7u8; 13]));
        for codec in [Codec::F16, Codec::Bf16, Codec::Int8, Codec::Delta] {
            round_trip(Payload::Encoded {
                codec,
                bytes: vec![9u8; 21],
            });
        }
    }

    #[test]
    fn encoded_frames_carry_the_codec_id_in_header_byte_6() {
        let p = Payload::Encoded {
            codec: Codec::Int8,
            bytes: vec![1, 2, 3],
        };
        let buf = encode_frame(FrameKind::Data, 0, 5, &p);
        assert_eq!(buf[5], 4); // dtype: encoded block
        assert_eq!(buf[6], Codec::Int8.code());
        // Plain frames keep the byte zero (the seed wire format).
        let raw = encode_frame(FrameKind::Data, 0, 5, &Payload::F32(vec![1.0]));
        assert_eq!(raw[6], 0);
        assert_eq!(raw[7], 0);
    }

    #[test]
    fn unknown_or_raw_codec_id_is_a_bad_header_naming_the_codec_space() {
        let reseal = |buf: &mut Vec<u8>| {
            let mut c = Crc32::new();
            c.update(&buf[..28]);
            c.update(&buf[WIRE_HEADER_LEN..]);
            let crc = c.finish();
            buf[28..32].copy_from_slice(&crc.to_le_bytes());
        };
        let p = Payload::Encoded {
            codec: Codec::F16,
            bytes: vec![0u8; 4],
        };
        // Unknown codec id.
        let mut buf = encode_frame(FrameKind::Data, 0, 5, &p);
        buf[6] = 200;
        reseal(&mut buf);
        match read_frame(&mut &buf[..]) {
            Err(WireError::BadHeader(d)) => assert!(d.contains("codec id 200"), "{d}"),
            other => panic!("expected BadHeader, got {other:?}"),
        }
        // Codec byte set on a plain frame.
        let mut buf = encode_frame(FrameKind::Data, 0, 5, &Payload::F32(vec![1.0]));
        buf[6] = Codec::F16.code();
        reseal(&mut buf);
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(WireError::BadHeader(_))
        ));
    }

    #[test]
    fn corrupted_encoded_frame_names_the_codec() {
        let p = Payload::Encoded {
            codec: Codec::Delta,
            bytes: vec![5u8; 16],
        };
        let mut buf = encode_frame(FrameKind::Data, 2, 9, &p);
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        match read_frame(&mut &buf[..]) {
            Err(e @ WireError::ChecksumMismatch { .. }) => {
                assert!(e.to_string().contains("delta"), "{e}");
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn serving_frame_kinds_round_trip() {
        for kind in [FrameKind::Request, FrameKind::Response] {
            let buf = encode_frame(kind, 0, 17, &Payload::Bytes(vec![1, 2, 3]));
            let frame = read_frame(&mut &buf[..]).expect("decode");
            assert_eq!(frame.kind, kind);
            assert_eq!(frame.tag, 17);
            assert_eq!(frame.payload, Payload::Bytes(vec![1, 2, 3]));
        }
    }

    #[test]
    fn unknown_frame_kind_is_rejected() {
        let mut buf = encode_frame(FrameKind::Data, 0, 0, &Payload::Empty);
        buf[4] = 9;
        // Re-seal the checksum so only the kind byte is at fault.
        let crc = {
            let mut c = Crc32::new();
            c.update(&buf[..28]);
            c.finish()
        };
        buf[28..32].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(WireError::BadHeader(_))
        ));
    }

    #[test]
    fn consecutive_frames_parse_from_one_stream() {
        let mut buf = encode_frame(FrameKind::Data, 0, 1, &Payload::U32(vec![9]));
        buf.extend(encode_frame(FrameKind::Barrier, 0, 7, &Payload::Empty));
        let mut r = &buf[..];
        let a = read_frame(&mut r).unwrap();
        let b = read_frame(&mut r).unwrap();
        assert_eq!(a.payload, Payload::U32(vec![9]));
        assert_eq!(b.kind, FrameKind::Barrier);
        assert_eq!(b.tag, 7);
        assert!(matches!(read_frame(&mut r), Err(WireError::Eof)));
    }

    #[test]
    fn corrupted_payload_is_rejected() {
        let mut buf = encode_frame(FrameKind::Data, 1, 2, &Payload::F32(vec![1.0, 2.0]));
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        match read_frame(&mut &buf[..]) {
            Err(WireError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_header_tag_is_rejected() {
        // The checksum covers the header too: flipping a tag bit must fail.
        let mut buf = encode_frame(FrameKind::Data, 1, 2, &Payload::U32(vec![5]));
        buf[12] ^= 0x80;
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = encode_frame(FrameKind::Data, 1, 2, &Payload::Empty);
        buf[0] = b'X';
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(WireError::BadHeader(_))
        ));
    }

    #[test]
    fn truncated_frame_is_io_error_not_eof() {
        let buf = encode_frame(FrameKind::Data, 1, 2, &Payload::F32(vec![3.0; 8]));
        let cut = &buf[..buf.len() - 5];
        assert!(matches!(read_frame(&mut &cut[..]), Err(WireError::Io(_))));
    }
}
