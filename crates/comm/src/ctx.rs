//! Per-worker communication context: tagged point-to-point messaging.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender};

use crate::message::{Message, Payload};
use crate::net::{CommStats, CostModel};

/// A worker's handle to the simulated cluster.
///
/// Each worker thread owns exactly one `WorkerCtx`. Point-to-point
/// messages are tagged; [`WorkerCtx::recv`] matches on `(src, tag)` and
/// buffers out-of-order arrivals, so independent protocols (per-layer
/// feature fetches, gradient pushes, collectives) can interleave safely.
///
/// `WorkerCtx` is intentionally not `Clone`: SAR's algorithms are
/// bulk-synchronous SPMD, one context per worker.
pub struct WorkerCtx {
    rank: usize,
    world: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    barrier: Arc<std::sync::Barrier>,
    cost: CostModel,
    recv_timeout: Duration,
    stats: Rc<RefCell<CommStats>>,
    pending: RefCell<HashMap<(u32, u64), VecDeque<Payload>>>,
    coll_seq: Cell<u64>,
}

/// Tags at or above this value are reserved for collectives.
pub(crate) const COLLECTIVE_TAG_BASE: u64 = 1 << 62;

impl WorkerCtx {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        world: usize,
        senders: Vec<Sender<Message>>,
        receiver: Receiver<Message>,
        barrier: Arc<std::sync::Barrier>,
        cost: CostModel,
        recv_timeout: Duration,
    ) -> Self {
        WorkerCtx {
            rank,
            world,
            senders,
            receiver,
            barrier,
            cost,
            recv_timeout,
            stats: Rc::new(RefCell::new(CommStats::new(world))),
            pending: RefCell::new(HashMap::new()),
            coll_seq: Cell::new(0),
        }
    }

    /// Allocates the next collective tag. Relies on SPMD execution: all
    /// workers must invoke collectives in the same order.
    pub(crate) fn next_coll_tag(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        COLLECTIVE_TAG_BASE + seq
    }

    /// This worker's rank in `0..world_size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of workers in the cluster.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// The cluster's α–β cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Snapshot of this worker's communication statistics.
    pub fn stats(&self) -> CommStats {
        self.stats.borrow().clone()
    }

    /// A shared handle to the live statistics, readable after the context
    /// has been consumed (used by [`Cluster::run`](crate::Cluster::run)).
    pub fn share_stats(&self) -> Rc<RefCell<CommStats>> {
        Rc::clone(&self.stats)
    }

    /// Sends `payload` to worker `dst` under `tag`.
    ///
    /// Sending to self is allowed (the message loops back through the
    /// pending buffer) but never charged simulated time. Channels are
    /// unbounded, so `send` never blocks — protocols where every worker
    /// sends before receiving cannot deadlock.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range or the destination worker has
    /// panicked (its channel is disconnected).
    pub fn send(&self, dst: usize, tag: u64, payload: Payload) {
        assert!(dst < self.world, "destination {dst} out of range");
        let bytes = payload.byte_len() as u64;
        {
            let mut s = self.stats.borrow_mut();
            s.sent_bytes[dst] += bytes;
            s.sent_messages += 1;
        }
        if dst == self.rank {
            self.pending
                .borrow_mut()
                .entry((self.rank as u32, tag))
                .or_default()
                .push_back(payload);
            return;
        }
        self.senders[dst]
            .send(Message {
                src: self.rank as u32,
                tag,
                payload,
            })
            .expect("destination worker hung up (panicked?)");
    }

    /// Receives the next payload from `src` under `tag`, blocking until it
    /// arrives. Out-of-order messages for other `(src, tag)` pairs are
    /// buffered.
    ///
    /// Charges this worker `alpha + bytes/beta` of simulated communication
    /// time unless `src == rank`.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has been torn down while waiting.
    pub fn recv(&self, src: usize, tag: u64) -> Payload {
        let key = (src as u32, tag);
        let payload = loop {
            if let Some(p) = self
                .pending
                .borrow_mut()
                .get_mut(&key)
                .and_then(VecDeque::pop_front)
            {
                break p;
            }
            let msg = self
                .receiver
                .recv_timeout(self.recv_timeout)
                .unwrap_or_else(|e| {
                    panic!(
                        "worker {} waiting on (src={src}, tag={tag}): {e} — \
                         a peer likely panicked or the protocol deadlocked",
                        self.rank
                    )
                });
            if (msg.src, msg.tag) == key {
                break msg.payload;
            }
            self.pending
                .borrow_mut()
                .entry((msg.src, msg.tag))
                .or_default()
                .push_back(msg.payload);
        };
        if src != self.rank {
            let mut s = self.stats.borrow_mut();
            s.recv_bytes += payload.byte_len() as u64;
            s.sim_comm_us += self.cost.message_cost_us(payload.byte_len());
        }
        payload
    }

    /// `true` if a message from `(src, tag)` is already available without
    /// blocking (it may sit in the pending buffer or the channel).
    pub fn try_ready(&self, src: usize, tag: u64) -> bool {
        let key = (src as u32, tag);
        if self
            .pending
            .borrow()
            .get(&key)
            .is_some_and(|q| !q.is_empty())
        {
            return true;
        }
        while let Ok(msg) = self.receiver.try_recv() {
            let k = (msg.src, msg.tag);
            self.pending
                .borrow_mut()
                .entry(k)
                .or_default()
                .push_back(msg.payload);
            if k == key {
                return true;
            }
        }
        false
    }

    /// Blocks until all workers have reached the barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Charges extra simulated communication time (used by collectives to
    /// model algorithms whose step count differs from their message count).
    pub fn charge_sim_us(&self, us: f64) {
        self.stats.borrow_mut().sim_comm_us += us;
    }
}

impl std::fmt::Debug for WorkerCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerCtx")
            .field("rank", &self.rank)
            .field("world", &self.world)
            .finish()
    }
}
