//! Per-worker communication context: tagged point-to-point messaging.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::time::{Duration, Instant};

use sar_tensor::MemScope;

use crate::codec::{self, Codec};
use crate::message::Payload;
use crate::net::{CommStats, CostModel};
use crate::phase::Phase;
use crate::time::thread_cpu_secs;
use crate::transport::{Clock, Transport, TransportError};

/// Out-of-order arrivals for one `(src, tag)` pair: each payload with
/// the wire length it occupied on the network.
type PendingQueue = VecDeque<(Payload, u64)>;

/// Identity of one delta-codec stream: `(peer, phase, layer)`.
type DeltaStreamKey = (u32, Phase, Option<u16>);

/// A worker's handle to the cluster.
///
/// Each worker owns exactly one `WorkerCtx`, wrapping one
/// [`Transport`] backend (in-process channels or TCP — the algorithms
/// above never see the difference). Point-to-point messages are tagged;
/// [`WorkerCtx::recv`] matches on `(src, tag)` and buffers out-of-order
/// arrivals, so independent protocols (per-layer feature fetches, gradient
/// pushes, collectives) can interleave safely.
///
/// All traffic is accounted in *logical* [`Payload::wire_len`] bytes —
/// raw-f32 payload plus the framed-message header — so byte ledgers are
/// identical across backends and codecs. When a non-`raw` [`Codec`] is
/// active (see [`WorkerCtx::set_codec`]), eligible data-plane payloads
/// are additionally encoded on send and decoded on delivery, and the
/// *wire* byte counters ([`PhaseEntry::wire_sent_bytes`](crate::PhaseEntry)
/// and friends) record the encoded size that actually crossed the
/// network. Communication *time* follows the backend's [`Clock`]:
/// simulated α–β cost on the channel backend (charged on the wire size),
/// measured wall-clock blocking time on TCP.
///
/// `WorkerCtx` is intentionally not `Clone`: SAR's algorithms are
/// bulk-synchronous SPMD, one context per worker.
pub struct WorkerCtx {
    transport: Box<dyn Transport>,
    cost: CostModel,
    recv_timeout: Duration,
    stats: Rc<RefCell<CommStats>>,
    // Buffered out-of-order arrivals, each paired with the wire length it
    // occupied on the network (encoded size for codec frames; equal to the
    // logical size otherwise).
    pending: RefCell<HashMap<(u32, u64), PendingQueue>>,
    codec: Cell<Codec>,
    // Delta-codec stream state: the last block sent per
    // (dst, phase, layer) stream and the last block decoded per
    // (src, phase, layer) stream. The two stay identical because the
    // delta codec is lossless; only `Codec::Delta` reads them.
    delta_sent: RefCell<HashMap<DeltaStreamKey, Vec<f32>>>,
    delta_recv: RefCell<HashMap<DeltaStreamKey, Vec<f32>>>,
    coll_seq: Cell<u64>,
    phase: Cell<Phase>,
    layer: Cell<Option<u16>>,
    // Thread CPU clock at the last phase/layer switch; NaN until the first
    // switch on the worker thread (the context is created on the spawning
    // thread, whose CPU clock is unrelated).
    cpu_mark: Cell<f64>,
    // Wall clock at the last phase/layer switch; None until the first
    // switch, mirroring `cpu_mark`'s warm-up.
    wall_mark: Cell<Option<Instant>>,
}

/// Tags at or above this value are reserved for collectives.
pub(crate) const COLLECTIVE_TAG_BASE: u64 = 1 << 62;

impl WorkerCtx {
    /// Wraps a transport backend in a worker context.
    ///
    /// `recv_timeout` bounds how long a blocked [`WorkerCtx::recv`] waits
    /// before declaring the protocol dead.
    pub fn new(transport: Box<dyn Transport>, cost: CostModel, recv_timeout: Duration) -> Self {
        let world = transport.world_size();
        WorkerCtx {
            transport,
            cost,
            recv_timeout,
            stats: Rc::new(RefCell::new(CommStats::new(world))),
            pending: RefCell::new(HashMap::new()),
            codec: Cell::new(Codec::Raw),
            delta_sent: RefCell::new(HashMap::new()),
            delta_recv: RefCell::new(HashMap::new()),
            coll_seq: Cell::new(0),
            phase: Cell::new(Phase::Other),
            layer: Cell::new(None),
            cpu_mark: Cell::new(f64::NAN),
            wall_mark: Cell::new(None),
        }
    }

    /// Allocates the next collective tag. Relies on SPMD execution: all
    /// workers must invoke collectives in the same order.
    pub(crate) fn next_coll_tag(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        COLLECTIVE_TAG_BASE + seq
    }

    /// This worker's rank in `0..world_size`.
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// Number of workers in the cluster.
    pub fn world_size(&self) -> usize {
        self.transport.world_size()
    }

    /// How the underlying transport accounts communication time.
    pub fn clock(&self) -> Clock {
        self.transport.clock()
    }

    /// The cluster's α–β cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// The wire codec currently applied to eligible data-plane payloads.
    pub fn codec(&self) -> Codec {
        self.codec.get()
    }

    /// Selects the wire codec for eligible data-plane payloads: `F32`
    /// sends to a *remote* peer on a rotation-exchange tag inside a
    /// compressible phase (forward fetch, backward re-fetch, gradient
    /// routing). Everything else — self-sends, collectives, gathers,
    /// control traffic, non-f32 payloads — always ships raw.
    ///
    /// All ranks must run the same codec (the TCP rendezvous enforces
    /// this; the in-process cluster shares one configuration). The
    /// default is [`Codec::Raw`], under which this context behaves
    /// byte-for-byte like the seed.
    pub fn set_codec(&self, codec: Codec) {
        self.codec.set(codec);
    }

    /// Snapshot of this worker's communication statistics.
    pub fn stats(&self) -> CommStats {
        self.stats.borrow().clone()
    }

    /// A shared handle to the live statistics, readable after the context
    /// has been consumed (used by [`Cluster::run`](crate::Cluster::run)).
    pub fn share_stats(&self) -> Rc<RefCell<CommStats>> {
        Rc::clone(&self.stats)
    }

    /// The phase currently attributed traffic and CPU time.
    pub fn current_phase(&self) -> Phase {
        self.phase.get()
    }

    /// The model layer currently attributed traffic and CPU time, if any.
    pub fn current_layer(&self) -> Option<u16> {
        self.layer.get()
    }

    /// Attributes the thread CPU time elapsed since the last attribution
    /// point to the current `(phase, layer)` cell and restarts the mark.
    /// Scope guards call this on entry and exit, making CPU attribution
    /// *exclusive*: a nested scope's time is charged to the nested cell
    /// only. Call directly before reading [`WorkerCtx::stats`] at a
    /// measurement boundary (e.g. the end of an epoch) so trailing time is
    /// not lost.
    pub fn flush_phase_timing(&self) {
        let now = thread_cpu_secs();
        // sar-check: deterministic(metering: wall/CPU marks feed the
        // phase-timing stats only, never payload bytes or digests)
        let wall_now = Instant::now();
        let mark = self.cpu_mark.get();
        // CPU burned by intra-worker pool helpers since the last flush.
        // Drained unconditionally so a warm-up flush (non-finite mark)
        // discards helper time from before attribution started, exactly as
        // it discards the spawning thread's own CPU time.
        let helper_us = sar_tensor::pool::take_helper_cpu_us();
        // Disk-tier traffic since the last flush, drained unconditionally
        // for the same reason as helper CPU time.
        let (spill, fault, disk_us) = sar_tensor::tier::take_tier_counters();
        if mark.is_finite() {
            let mut s = self.stats.borrow_mut();
            let entry = s.ledger.entry_mut(self.phase.get(), self.layer.get());
            if now > mark {
                entry.cpu_us += (now - mark) * 1e6;
            }
            entry.cpu_us += helper_us;
            entry.spill_bytes += spill;
            entry.fault_bytes += fault;
            entry.disk_blocked_us += disk_us;
            if let Some(w) = self.wall_mark.get() {
                entry.wall_us += wall_now.duration_since(w).as_secs_f64() * 1e6;
            }
        }
        self.cpu_mark.set(now);
        self.wall_mark.set(Some(wall_now));
    }

    /// Enters `phase` until the returned guard drops (scopes nest; the
    /// previous phase is restored). While active, every send/receive on a
    /// non-collective tag, all CPU time, and the tensor-memory high-water
    /// mark are attributed to `(phase, current layer)` in the ledger.
    pub fn phase_scope(&self, phase: Phase) -> PhaseScope<'_> {
        self.flush_phase_timing();
        let prev = self.phase.replace(phase);
        PhaseScope {
            ctx: self,
            prev,
            mem: Some(MemScope::begin()),
        }
    }

    /// Attributes traffic and CPU time to model layer `layer` until the
    /// returned guard drops (the previous layer is restored).
    pub fn layer_scope(&self, layer: u16) -> LayerScope<'_> {
        self.layer_scope_opt(Some(layer))
    }

    /// Like [`WorkerCtx::layer_scope`] with an optional layer — used by
    /// backward-pass functions restoring the layer they were recorded
    /// under (which may be none).
    pub fn layer_scope_opt(&self, layer: Option<u16>) -> LayerScope<'_> {
        self.flush_phase_timing();
        let prev = self.layer.replace(layer);
        LayerScope { ctx: self, prev }
    }

    /// The ledger phase a message on `tag` belongs to: collective tags are
    /// classified as [`Phase::Collective`] regardless of the active scope,
    /// everything else goes to the current phase.
    fn traffic_phase(&self, tag: u64) -> Phase {
        if tag >= COLLECTIVE_TAG_BASE {
            Phase::Collective
        } else {
            self.phase.get()
        }
    }

    /// Sends `payload` to worker `dst` under `tag`.
    ///
    /// Sending to self is allowed (the message loops back through the
    /// pending buffer, never touching the transport) but never charged
    /// communication time. Neither backend's `send` blocks on a quiet
    /// network — protocols where every worker sends before receiving
    /// cannot deadlock (TCP can block briefly if a socket buffer fills,
    /// which is backpressure, not a protocol stall).
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range or the destination worker is gone
    /// (its channel is disconnected / its connection dropped). Callers
    /// that must survive a dead peer use [`WorkerCtx::try_send`].
    pub fn send(&self, dst: usize, tag: u64, payload: Payload) {
        self.try_send(dst, tag, payload).unwrap_or_else(|e| {
            panic!(
                "worker {} sending to (dst={dst}, tag={tag}): {e} — \
                 the destination worker hung up (panicked?)",
                self.rank()
            )
        });
    }

    /// Fallible [`WorkerCtx::send`]: identical byte/message accounting,
    /// but a transport failure comes back as an error instead of a panic,
    /// so the caller can exit its rank cleanly with context.
    ///
    /// The send is ledgered before the transport is touched (mirroring the
    /// panicking path, where the process dies before the ledger could be
    /// read), so a failed send still appears in the sent counters.
    ///
    /// # Errors
    ///
    /// Whatever the transport reports — typically
    /// [`TransportError::Disconnected`].
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range (a programming error, not a
    /// cluster-health condition).
    pub fn try_send(&self, dst: usize, tag: u64, payload: Payload) -> Result<(), TransportError> {
        if dst >= self.world_size() {
            panic!(
                "worker {}: send destination {dst} out of range for world {}",
                self.rank(),
                self.world_size()
            );
        }
        let logical = payload.wire_len() as u64;
        let payload = self.encode_for_wire(dst, tag, payload);
        let wire = payload.wire_len() as u64;
        {
            let mut s = self.stats.borrow_mut();
            s.sent_bytes[dst] += logical;
            s.sent_messages += 1;
            let entry = s
                .ledger
                .entry_mut(self.traffic_phase(tag), self.layer.get());
            entry.sent_bytes += logical;
            entry.wire_sent_bytes += wire;
            entry.sent_messages += 1;
        }
        if dst == self.rank() {
            self.pending
                .borrow_mut()
                .entry((self.rank() as u32, tag))
                .or_default()
                .push_back((payload, wire));
            return Ok(());
        }
        self.transport.send(dst, tag, payload)
    }

    /// Applies the active codec to `payload` if it is codec-eligible:
    /// a non-`raw` codec is set, the destination is a remote peer, the
    /// tag is in the data-plane space, the traffic phase is one of the
    /// three exchange phases, and the payload carries f32 data. Returns
    /// the payload unchanged otherwise, so the raw/ineligible path is
    /// byte-for-byte the seed behavior.
    fn encode_for_wire(&self, dst: usize, tag: u64, payload: Payload) -> Payload {
        let codec = self.codec.get();
        if codec == Codec::Raw || dst == self.rank() || tag >= codec::CODEC_TAG_CEILING {
            return payload;
        }
        let phase = self.traffic_phase(tag);
        if !codec::phase_is_compressible(phase) {
            return payload;
        }
        let values = match payload {
            Payload::F32(v) => v,
            other => return other,
        };
        let layer = self.layer.get();
        let bytes = if codec == Codec::Delta {
            let key = (dst as u32, phase, layer);
            let mut cache = self.delta_sent.borrow_mut();
            let enc = codec.encode_block(phase, layer, &values, cache.get(&key).map(Vec::as_slice));
            cache.insert(key, values);
            enc
        } else {
            codec.encode_block(phase, layer, &values, None)
        };
        Payload::Encoded { codec, bytes }
    }

    /// Decodes a codec-encoded payload arriving from `src` back to `F32`,
    /// returning it paired with the wire length the frame occupied on the
    /// network. Must run at *arrival* time — before the message enters
    /// the pending buffer — so delta streams decode in transmission
    /// order (per-peer delivery is FIFO on both backends).
    ///
    /// # Errors
    ///
    /// [`TransportError::Corrupt`] naming the codec and the peer rank if
    /// the block's stream header or body fails to decode.
    fn decode_arrival(&self, src: u32, payload: Payload) -> Result<(Payload, u64), TransportError> {
        let wire = payload.wire_len() as u64;
        let (codec, bytes) = match payload {
            Payload::Encoded { codec, bytes } => (codec, bytes),
            other => return Ok((other, wire)),
        };
        let corrupt = |detail: String| TransportError::Corrupt {
            peer: src as usize,
            detail: format!("{}-coded block: {detail}", codec.name()),
        };
        let (meta, body) = codec::parse_meta(&bytes).map_err(corrupt)?;
        let values = if codec == Codec::Delta {
            let key = (src, meta.phase, meta.layer);
            let mut cache = self.delta_recv.borrow_mut();
            let vals = codec
                .decode_body(&meta, body, cache.get(&key).map(Vec::as_slice))
                .map_err(corrupt)?;
            cache.insert(key, vals.clone());
            vals
        } else {
            codec.decode_body(&meta, body, None).map_err(corrupt)?
        };
        Ok((Payload::F32(values), wire))
    }

    /// Non-blocking [`WorkerCtx::send`] for pipeline call sites: hands the
    /// payload to the transport's outgoing queue and returns without
    /// waiting for the peer. Byte/message ledgers are charged exactly as in
    /// the blocking path (the ledger is written before the transport is
    /// touched on both), so switching a protocol between `send` and
    /// `send_nowait` cannot change any byte ledger.
    ///
    /// On the channel backend every send is already an enqueue; on TCP the
    /// frame goes to the destination's per-peer writer thread, so the
    /// serve-side encode and socket write happen off the caller's critical
    /// path. If the writer's bounded queue is full the call exerts
    /// backpressure (it briefly blocks), which bounds in-flight memory but
    /// never deadlocks a send-before-receive protocol.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range or the destination worker is gone,
    /// like [`WorkerCtx::send`].
    pub fn send_nowait(&self, dst: usize, tag: u64, payload: Payload) {
        self.try_send(dst, tag, payload).unwrap_or_else(|e| {
            panic!(
                "worker {} sending (nowait) to (dst={dst}, tag={tag}): {e} — \
                 the destination worker hung up (panicked?)",
                self.rank()
            )
        });
    }

    /// Receives the next payload from `src` under `tag`, blocking until it
    /// arrives. Out-of-order messages for other `(src, tag)` pairs are
    /// buffered.
    ///
    /// Charges this worker's ledger communication time unless
    /// `src == rank`: `alpha + wire_len/beta` of simulated time under
    /// [`Clock::Simulated`], the measured wall-clock time spent blocked on
    /// the transport under [`Clock::Wall`].
    ///
    /// # Panics
    ///
    /// Panics if nothing arrives within the receive timeout (a peer died
    /// or the protocol deadlocked) or the transport reports a peer
    /// failure. Callers that must survive a dead peer use
    /// [`WorkerCtx::try_recv`].
    pub fn recv(&self, src: usize, tag: u64) -> Payload {
        self.try_recv(src, tag).unwrap_or_else(|e| {
            panic!(
                "worker {} waiting on (src={src}, tag={tag}): {e} — \
                 a peer likely panicked, died, or the protocol deadlocked",
                self.rank()
            )
        })
    }

    /// Fallible [`WorkerCtx::recv`]: identical matching, buffering and
    /// ledger accounting, but a timeout or peer failure comes back as an
    /// error instead of a panic, so the caller can exit its rank cleanly
    /// naming what it was waiting for.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] if nothing arrived within the receive
    /// timeout; otherwise whatever the transport reports (disconnect,
    /// corrupt frame, …). Nothing is charged to the ledger on failure.
    pub fn try_recv(&self, src: usize, tag: u64) -> Result<Payload, TransportError> {
        let key = (src as u32, tag);
        let mut blocked_us = 0.0f64;
        let (payload, wire) = loop {
            if let Some(p) = self
                .pending
                .borrow_mut()
                .get_mut(&key)
                .and_then(VecDeque::pop_front)
            {
                break p;
            }
            // sar-check: deterministic(metering: blocked-time accounting
            // only; the delivered payload is untouched)
            let start = Instant::now();
            let msg = self.transport.recv_any(self.recv_timeout)?;
            blocked_us += start.elapsed().as_secs_f64() * 1e6; // sar-check: deterministic(metering)
            let decoded = self.decode_arrival(msg.src, msg.payload)?;
            if (msg.src, msg.tag) == key {
                break decoded;
            }
            self.pending
                .borrow_mut()
                .entry((msg.src, msg.tag))
                .or_default()
                .push_back(decoded);
        };
        self.charge_recv(src, tag, &payload, wire, blocked_us);
        Ok(payload)
    }

    /// Receives the next message carrying `tag` from *any* source, blocking
    /// until one arrives. Messages on other tags are buffered exactly as in
    /// [`WorkerCtx::try_recv`], and the byte/message ledger accounting is
    /// identical, so mixing the two on one context is safe.
    ///
    /// When several sources already have a buffered message for `tag`, the
    /// lowest-ranked source wins — a deterministic tie-break, so callers
    /// that drain a known set of peers see a reproducible order whenever
    /// arrivals outpace consumption. Use only where *processing* order may
    /// follow arrival order (e.g. collecting per-rank results keyed by
    /// source); protocols whose floating-point accumulation order matters
    /// must receive in fixed rank order via [`WorkerCtx::try_recv`].
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] if nothing arrived within the receive
    /// timeout; otherwise whatever the transport reports.
    pub fn recv_tagged_any(&self, tag: u64) -> Result<(usize, Payload), TransportError> {
        let mut blocked_us = 0.0f64;
        let (src, payload, wire) = loop {
            let buffered = {
                let mut pending = self.pending.borrow_mut();
                // sar-check: deterministic(reduced with min(): the lowest
                // ready src wins regardless of map iteration order)
                let lowest = pending
                    .iter()
                    .filter(|((_, t), q)| *t == tag && !q.is_empty())
                    .map(|(&(s, _), _)| s)
                    .min();
                // Pop under the same borrow that found the queue, so the
                // entry is non-empty by construction.
                lowest.and_then(|s| {
                    pending
                        .get_mut(&(s, tag))
                        .and_then(VecDeque::pop_front)
                        .map(|(p, w)| (s as usize, p, w))
                })
            };
            if let Some(found) = buffered {
                break found;
            }
            // sar-check: deterministic(metering: blocked-time accounting
            // only; the delivered payload is untouched)
            let start = Instant::now();
            let msg = self.transport.recv_any(self.recv_timeout)?;
            blocked_us += start.elapsed().as_secs_f64() * 1e6; // sar-check: deterministic(metering)
            let (decoded, wire) = self.decode_arrival(msg.src, msg.payload)?;
            if msg.tag == tag {
                break (msg.src as usize, decoded, wire);
            }
            self.pending
                .borrow_mut()
                .entry((msg.src, msg.tag))
                .or_default()
                .push_back((decoded, wire));
        };
        self.charge_recv(src, tag, &payload, wire, blocked_us);
        Ok((src, payload))
    }

    /// Ledgers one received message: logical bytes (from the decoded
    /// payload) and message count always, wire bytes from `wire` (the
    /// frame's encoded size on the network), communication time per the
    /// backend clock — the α–β model charges the *wire* size, which is
    /// what actually crossed the link — and the measured parked time as
    /// [`blocked_us`](crate::PhaseEntry::blocked_us). Self-sends loop
    /// through the pending buffer and are never charged.
    // sar-check: deterministic(metering: every accumulation here is a
    // ledger charge counter — bytes, messages, microseconds — charged once
    // per delivery in program order; payload data is never touched)
    fn charge_recv(&self, src: usize, tag: u64, payload: &Payload, wire: u64, blocked_us: f64) {
        if src == self.rank() {
            return;
        }
        let bytes = payload.wire_len() as u64;
        let cost_us = if self.transport.clock() == Clock::Wall {
            blocked_us
        } else {
            self.cost.message_cost_us(wire as usize)
        };
        let mut s = self.stats.borrow_mut();
        s.recv_bytes += bytes;
        s.comm_us += cost_us;
        let entry = s
            .ledger
            .entry_mut(self.traffic_phase(tag), self.layer.get());
        entry.recv_bytes += bytes;
        entry.wire_recv_bytes += wire;
        entry.recv_messages += 1;
        entry.comm_us += cost_us;
        entry.blocked_us += blocked_us;
    }

    /// `true` if a message from `(src, tag)` is already available without
    /// blocking (it may sit in the pending buffer or the transport).
    ///
    /// # Panics
    ///
    /// Panics if the transport reports a peer failure while polling.
    /// Callers that must survive a dead peer use [`WorkerCtx::poll_ready`].
    pub fn try_ready(&self, src: usize, tag: u64) -> bool {
        self.poll_ready(src, tag).unwrap_or_else(|e| {
            panic!(
                "worker {} polling for (src={src}, tag={tag}): {e}",
                self.rank()
            )
        })
    }

    /// Fallible [`WorkerCtx::try_ready`]: a transport failure while
    /// polling comes back as an error instead of a panic.
    ///
    /// # Errors
    ///
    /// Whatever the transport reports (disconnect, corrupt frame, …).
    pub fn poll_ready(&self, src: usize, tag: u64) -> Result<bool, TransportError> {
        let key = (src as u32, tag);
        if self
            .pending
            .borrow()
            .get(&key)
            .is_some_and(|q| !q.is_empty())
        {
            return Ok(true);
        }
        loop {
            let msg = match self.transport.try_recv_any()? {
                Some(m) => m,
                None => return Ok(false),
            };
            let k = (msg.src, msg.tag);
            let decoded = self.decode_arrival(msg.src, msg.payload)?;
            self.pending
                .borrow_mut()
                .entry(k)
                .or_default()
                .push_back(decoded);
            if k == key {
                return Ok(true);
            }
        }
    }

    /// Blocks until all workers have reached the barrier. Barrier traffic
    /// is transport-internal: it appears in no byte ledger on any backend.
    ///
    /// # Panics
    ///
    /// Panics if a peer dies while the barrier is forming. Callers that
    /// must survive a dead peer use [`WorkerCtx::try_barrier`].
    pub fn barrier(&self) {
        self.try_barrier()
            .unwrap_or_else(|e| panic!("worker {} barrier failed: {e}", self.rank()));
    }

    /// Fallible [`WorkerCtx::barrier`]: a peer dying while the barrier is
    /// forming comes back as an error instead of a panic.
    ///
    /// # Errors
    ///
    /// Whatever the transport reports (disconnect, timeout, …).
    pub fn try_barrier(&self) -> Result<(), TransportError> {
        self.transport.barrier()
    }

    /// Charges extra communication time (used by collectives to model
    /// algorithms whose step count differs from their message count).
    pub fn charge_comm_us(&self, us: f64) {
        let mut s = self.stats.borrow_mut();
        s.comm_us += us;
        s.ledger
            .entry_mut(self.phase.get(), self.layer.get())
            .comm_us += us;
    }
}

/// Guard returned by [`WorkerCtx::phase_scope`]. On drop it flushes CPU
/// attribution, folds the scope's tensor-memory high-water mark into the
/// phase's ledger cell, and restores the previous phase.
#[must_use = "the phase ends when this guard drops"]
pub struct PhaseScope<'a> {
    ctx: &'a WorkerCtx,
    prev: Phase,
    mem: Option<MemScope>,
}

impl Drop for PhaseScope<'_> {
    fn drop(&mut self) {
        self.ctx.flush_phase_timing();
        let peak = self
            .mem
            .take()
            .map(|m| m.finish().peak_bytes as u64)
            .unwrap_or(0);
        {
            let mut s = self.ctx.stats.borrow_mut();
            let entry = s
                .ledger
                .entry_mut(self.ctx.phase.get(), self.ctx.layer.get());
            entry.peak_tensor_bytes = entry.peak_tensor_bytes.max(peak);
        }
        self.ctx.phase.set(self.prev);
    }
}

/// Guard returned by [`WorkerCtx::layer_scope`]. On drop it flushes CPU
/// attribution and restores the previous layer.
#[must_use = "the layer attribution ends when this guard drops"]
pub struct LayerScope<'a> {
    ctx: &'a WorkerCtx,
    prev: Option<u16>,
}

impl Drop for LayerScope<'_> {
    fn drop(&mut self) {
        self.ctx.flush_phase_timing();
        self.ctx.layer.set(self.prev);
    }
}

impl std::fmt::Debug for WorkerCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerCtx")
            .field("rank", &self.rank())
            .field("world", &self.world_size())
            .field("clock", &self.clock())
            .field("phase", &self.phase.get())
            .field("layer", &self.layer.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WIRE_HEADER_LEN;
    use crate::{Cluster, CostModel};

    const H: u64 = WIRE_HEADER_LEN as u64;

    #[test]
    fn traffic_lands_in_the_active_phase() {
        let out = Cluster::new(2, CostModel::default()).run(|ctx| {
            let peer = 1 - ctx.rank();
            {
                let _p = ctx.phase_scope(Phase::ForwardFetch);
                ctx.send(peer, 0, Payload::F32(vec![0.0; 250]));
                let _ = ctx.recv(peer, 0);
            }
            {
                let _p = ctx.phase_scope(Phase::GradRouting);
                ctx.send(peer, 1, Payload::F32(vec![0.0; 125]));
                let _ = ctx.recv(peer, 1);
            }
            ctx.stats()
        });
        for o in &out {
            let fetch = o.result.ledger.phase_total(Phase::ForwardFetch);
            let route = o.result.ledger.phase_total(Phase::GradRouting);
            assert_eq!(fetch.sent_bytes, 1000 + H);
            assert_eq!(fetch.recv_bytes, 1000 + H);
            assert_eq!(fetch.recv_messages, 1);
            assert_eq!(route.sent_bytes, 500 + H);
            assert_eq!(route.recv_bytes, 500 + H);
            // Ledger splits exactly the totals.
            assert_eq!(fetch.sent_bytes + route.sent_bytes, o.result.total_sent());
            assert!((fetch.comm_us + route.comm_us - o.result.comm_us).abs() < 1e-9);
        }
    }

    #[test]
    fn collective_tags_classify_automatically() {
        let out = Cluster::new(2, CostModel::default()).run(|ctx| {
            // Even inside a ForwardFetch scope, collective traffic must be
            // ledgered as Collective.
            let _p = ctx.phase_scope(Phase::ForwardFetch);
            let s = ctx.all_reduce_sum_scalar(1.0);
            assert_eq!(s, 2.0);
            ctx.stats()
        });
        for o in &out {
            let coll = o.result.ledger.phase_total(Phase::Collective);
            assert!(coll.sent_bytes > 0);
            assert_eq!(
                o.result.ledger.phase_total(Phase::ForwardFetch).sent_bytes,
                0
            );
            assert_eq!(coll.sent_bytes, o.result.total_sent());
        }
    }

    #[test]
    fn nested_scopes_restore_and_attribute_exclusively() {
        let out = Cluster::new(1, CostModel::default()).run(|ctx| {
            assert_eq!(ctx.current_phase(), Phase::Other);
            {
                let _outer = ctx.phase_scope(Phase::BackwardRefetch);
                assert_eq!(ctx.current_phase(), Phase::BackwardRefetch);
                {
                    let _inner = ctx.phase_scope(Phase::GradRouting);
                    assert_eq!(ctx.current_phase(), Phase::GradRouting);
                    // Burn CPU inside the inner scope.
                    let mut acc = 0u64;
                    for i in 0..5_000_000u64 {
                        acc = acc.wrapping_add(i * i);
                    }
                    assert!(acc != 1);
                }
                assert_eq!(ctx.current_phase(), Phase::BackwardRefetch);
            }
            assert_eq!(ctx.current_phase(), Phase::Other);
            ctx.stats()
        });
        let ledger = &out[0].result.ledger;
        assert!(ledger.phase_total(Phase::GradRouting).cpu_us > 0.0);
    }

    #[test]
    fn layer_scopes_split_the_ledger_by_layer() {
        let out = Cluster::new(2, CostModel::default()).run(|ctx| {
            let peer = 1 - ctx.rank();
            for layer in 0..2u16 {
                let _l = ctx.layer_scope(layer);
                let _p = ctx.phase_scope(Phase::ForwardFetch);
                ctx.send(
                    peer,
                    layer as u64,
                    Payload::F32(vec![0.0; 100 * (layer as usize + 1)]),
                );
                let _ = ctx.recv(peer, layer as u64);
            }
            assert_eq!(ctx.current_layer(), None);
            ctx.stats()
        });
        for o in &out {
            let l0 = o.result.ledger.get(Phase::ForwardFetch, Some(0));
            let l1 = o.result.ledger.get(Phase::ForwardFetch, Some(1));
            assert_eq!(l0.recv_bytes, 400 + H);
            assert_eq!(l1.recv_bytes, 800 + H);
        }
    }

    #[test]
    fn phase_scope_records_memory_peak() {
        use sar_tensor::Tensor;
        let out = Cluster::new(1, CostModel::default()).run(|ctx| {
            {
                let _p = ctx.phase_scope(Phase::ForwardFetch);
                let t = Tensor::zeros(&[1000, 10]);
                drop(t);
            }
            ctx.stats()
        });
        let peak = out[0]
            .result
            .ledger
            .phase_total(Phase::ForwardFetch)
            .peak_tensor_bytes;
        assert!(peak >= 1000 * 10 * 4, "peak {peak}");
    }

    #[test]
    fn self_sends_count_bytes_but_not_receives() {
        let out = Cluster::new(1, CostModel::default()).run(|ctx| {
            let _p = ctx.phase_scope(Phase::GradRouting);
            ctx.send(0, 0, Payload::F32(vec![0.0; 10]));
            let _ = ctx.recv(0, 0);
            ctx.stats()
        });
        let route = out[0].result.ledger.phase_total(Phase::GradRouting);
        assert_eq!(route.sent_bytes, 40 + H);
        assert_eq!(route.recv_bytes, 0);
        assert_eq!(route.comm_us, 0.0);
    }

    #[test]
    fn lossy_codec_halves_wire_bytes_but_keeps_logical_ledger() {
        use crate::codec::BLOCK_META_LEN;
        let out = Cluster::new(2, CostModel::default()).run(|ctx| {
            ctx.set_codec(Codec::F16);
            let peer = 1 - ctx.rank();
            let _p = ctx.phase_scope(Phase::ForwardFetch);
            ctx.send(peer, 0, Payload::F32(vec![1.5; 250]));
            let got = ctx.recv(peer, 0).into_f32();
            // 1.5 is exactly representable in f16, so values round-trip.
            assert_eq!(got, vec![1.5; 250]);
            ctx.stats()
        });
        let wire_payload = (BLOCK_META_LEN + 250 * 2) as u64;
        for o in &out {
            let fetch = o.result.ledger.phase_total(Phase::ForwardFetch);
            // Logical ledger is the seed's raw-f32 accounting...
            assert_eq!(fetch.sent_bytes, 1000 + H);
            assert_eq!(fetch.recv_bytes, 1000 + H);
            // ...while the wire counters see the encoded frame.
            assert_eq!(fetch.wire_sent_bytes, wire_payload + H);
            assert_eq!(fetch.wire_recv_bytes, wire_payload + H);
        }
    }

    #[test]
    fn delta_codec_round_trips_bit_exactly_and_compresses_repeats() {
        let values: Vec<f32> = (0..300).map(|i| (i as f32 * 0.37).sin() * 1e3).collect();
        let out = Cluster::new(2, CostModel::default()).run(|ctx| {
            ctx.set_codec(Codec::Delta);
            let peer = 1 - ctx.rank();
            let values: Vec<f32> = (0..300).map(|i| (i as f32 * 0.37).sin() * 1e3).collect();
            let _p = ctx.phase_scope(Phase::GradRouting);
            // Two "epochs" of identical data on one stream: the second
            // block deltas to almost nothing.
            for tag in 0..2u64 {
                ctx.send(peer, tag, Payload::F32(values.clone()));
                let got = ctx.recv(peer, tag).into_f32();
                let same = got
                    .iter()
                    .zip(&values)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "delta codec must be bit-exact");
            }
            ctx.stats()
        });
        let logical = 2 * (values.len() as u64 * 4 + H);
        for o in &out {
            let route = o.result.ledger.phase_total(Phase::GradRouting);
            assert_eq!(route.sent_bytes, logical);
            assert!(
                route.wire_sent_bytes < logical,
                "repeated blocks must compress: wire {} vs logical {logical}",
                route.wire_sent_bytes
            );
        }
    }

    #[test]
    fn raw_codec_and_collectives_keep_wire_equal_to_logical() {
        let out = Cluster::new(2, CostModel::default()).run(|ctx| {
            // Default codec is raw; collectives stay raw even under int8.
            let peer = 1 - ctx.rank();
            {
                let _p = ctx.phase_scope(Phase::ForwardFetch);
                ctx.send(peer, 0, Payload::F32(vec![2.0; 64]));
                let _ = ctx.recv(peer, 0);
            }
            ctx.set_codec(Codec::Int8);
            let s = ctx.all_reduce_sum_scalar(1.0);
            assert_eq!(s, 2.0);
            ctx.stats()
        });
        for o in &out {
            let fetch = o.result.ledger.phase_total(Phase::ForwardFetch);
            assert_eq!(fetch.wire_sent_bytes, fetch.sent_bytes);
            assert_eq!(fetch.wire_recv_bytes, fetch.recv_bytes);
            let coll = o.result.ledger.phase_total(Phase::Collective);
            assert_eq!(coll.wire_sent_bytes, coll.sent_bytes);
        }
    }

    #[test]
    fn self_sends_are_never_encoded() {
        let out = Cluster::new(1, CostModel::default()).run(|ctx| {
            ctx.set_codec(Codec::Int8);
            let _p = ctx.phase_scope(Phase::GradRouting);
            let values = vec![0.123_456_79_f32, -9.876_543e-4, f32::MIN_POSITIVE];
            ctx.send(0, 0, Payload::F32(values.clone()));
            let got = ctx.recv(0, 0).into_f32();
            // Local math stays exact: int8 would have mangled these.
            let same = got
                .iter()
                .zip(&values)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "self-sends must bypass the codec");
            ctx.stats()
        });
        let route = out[0].result.ledger.phase_total(Phase::GradRouting);
        assert_eq!(route.wire_sent_bytes, route.sent_bytes);
    }

    #[test]
    fn corrupt_encoded_block_names_the_codec_and_peer() {
        use crate::transport::ChannelTransport;
        let mut mesh = ChannelTransport::mesh(2);
        let receiver = mesh.pop().map(Box::new);
        let sender = mesh.pop();
        let (Some(receiver), Some(sender)) = (receiver, sender) else {
            unreachable!("mesh(2) yields two transports");
        };
        // Rank 0 injects an encoded frame whose body is garbage.
        sender
            .send(
                1,
                7,
                Payload::Encoded {
                    codec: Codec::Int8,
                    bytes: vec![0xFF; 5],
                },
            )
            .expect("channel send");
        let ctx = WorkerCtx::new(receiver, CostModel::default(), Duration::from_secs(5));
        let err = ctx.try_recv(0, 7).expect_err("garbage must not decode");
        let msg = err.to_string();
        assert!(msg.contains("rank 0"), "peer missing: {msg}");
        assert!(msg.contains("int8"), "codec missing: {msg}");
    }

    #[test]
    fn delta_block_without_its_predecessor_is_a_named_error() {
        use crate::codec::BLOCK_META_LEN;
        use crate::transport::ChannelTransport;
        let mut mesh = ChannelTransport::mesh(2);
        let receiver = mesh.pop().map(Box::new);
        let sender = mesh.pop();
        let (Some(receiver), Some(sender)) = (receiver, sender) else {
            unreachable!("mesh(2) yields two transports");
        };
        // A structurally valid delta frame in XOR mode, but the receiver
        // has never seen the stream — its mirror cache is empty.
        let mut bytes = Codec::Delta.encode_block(Phase::ForwardFetch, Some(1), &[1.0, 2.0], None);
        bytes[BLOCK_META_LEN] = 1; // flip mode raw -> xor-rle
        sender
            .send(
                1,
                9,
                Payload::Encoded {
                    codec: Codec::Delta,
                    bytes,
                },
            )
            .expect("channel send");
        let ctx = WorkerCtx::new(receiver, CostModel::default(), Duration::from_secs(5));
        let err = ctx.try_recv(0, 9).expect_err("desynchronized delta stream");
        let msg = err.to_string();
        assert!(msg.contains("delta"), "codec missing: {msg}");
        assert!(msg.contains("rank 0"), "peer missing: {msg}");
    }

    #[test]
    fn tcp_backed_ctx_measures_wall_clock_and_same_bytes() {
        use crate::tcp::{run_tcp_threads, TcpOpts};
        let out = run_tcp_threads(2, TcpOpts::default(), |t| {
            let ctx = WorkerCtx::new(Box::new(t), CostModel::default(), Duration::from_secs(30));
            assert_eq!(ctx.clock(), Clock::Wall);
            let peer = 1 - ctx.rank();
            let _p = ctx.phase_scope(Phase::ForwardFetch);
            ctx.send(peer, 0, Payload::F32(vec![0.0; 250]));
            let _ = ctx.recv(peer, 0);
            ctx.stats()
        });
        for stats in &out {
            let fetch = stats.ledger.phase_total(Phase::ForwardFetch);
            // Byte ledger identical to the sim backend...
            assert_eq!(fetch.sent_bytes, 1000 + H);
            assert_eq!(fetch.recv_bytes, 1000 + H);
            // ...but time is measured, not modeled.
            assert!(stats.comm_us >= 0.0);
        }
    }
}
