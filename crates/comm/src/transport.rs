//! The pluggable transport abstraction beneath [`WorkerCtx`].
//!
//! SAR's algorithms talk to the cluster through [`WorkerCtx`]; `WorkerCtx`
//! talks to the world through a [`Transport`]. Two backends ship with the
//! crate:
//!
//! * [`ChannelTransport`] — the original in-process backend: `N` worker
//!   threads connected by unbounded channels, with communication *time*
//!   simulated under the α–β [`CostModel`](crate::CostModel) (a
//!   [`Clock::Simulated`] backend).
//! * [`TcpTransport`](crate::TcpTransport) — one OS process per rank,
//!   length-prefixed checksummed frames over per-peer TCP connections
//!   (a [`Clock::Wall`] backend: communication time is measured, not
//!   modeled).
//!
//! Both guarantee **per-`(peer, tag)` FIFO ordering**: two messages sent
//! from the same rank arrive in send order (channels preserve it directly;
//! a TCP stream preserves it per connection). Neither reorders across
//! peers. Channels are unbounded and TCP relies on kernel socket buffers
//! plus the sender's blocking `write`, so `send` provides backpressure
//! only on the TCP backend (a full socket buffer blocks the sender until
//! the peer drains it).
//!
//! [`WorkerCtx`]: crate::WorkerCtx

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::message::{Message, Payload};

/// How a backend accounts communication time in the observability ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Charged from the α–β cost model (deterministic, hardware-free).
    Simulated,
    /// Measured wall-clock time spent blocked on the network.
    Wall,
}

/// Errors surfaced by transport backends.
///
/// The in-process backend can only time out or lose a peer; the TCP
/// backend adds connection, handshake, and integrity failures. Every
/// variant names enough context (peer rank, attempt counts) to debug a
/// dead cluster from one worker's log line.
#[derive(Debug)]
pub enum TransportError {
    /// Could not connect to `peer` after `attempts` tries with jittered
    /// exponential backoff.
    ConnectFailed {
        /// Rank that never answered.
        peer: usize,
        /// Connection attempts made.
        attempts: u32,
        /// Total time spent backing off between attempts.
        waited: Duration,
        /// The last I/O error observed.
        last: std::io::Error,
    },
    /// The rendezvous or mesh handshake violated the protocol.
    Handshake(String),
    /// A peer's connection closed without a clean shutdown frame.
    Disconnected {
        /// Rank whose connection dropped.
        peer: usize,
    },
    /// No message arrived within the timeout.
    Timeout {
        /// How long the receiver waited.
        waited: Duration,
        /// What the wait was for, when the backend knows more than "a
        /// message" — e.g. a barrier names its sequence number and the
        /// ranks not yet heard from.
        detail: Option<String>,
    },
    /// A frame failed integrity checks (checksum mismatch, bad magic,
    /// impossible length) — the stream from `peer` is unusable.
    Corrupt {
        /// Rank whose stream produced the bad frame.
        peer: usize,
        /// Decoder diagnostic.
        detail: String,
    },
    /// A message arrived intact but its payload dtype is not what the
    /// receiver expected — a misrouted or protocol-confused frame.
    UnexpectedDtype {
        /// Dtype the receiver required.
        expected: &'static str,
        /// Dtype actually carried by the payload.
        got: &'static str,
    },
    /// Any other I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::ConnectFailed {
                peer,
                attempts,
                waited,
                last,
            } => write!(
                f,
                "could not connect to rank {peer} after {attempts} attempts \
                 ({waited:?} spent backing off): {last}"
            ),
            TransportError::Handshake(d) => write!(f, "handshake failed: {d}"),
            TransportError::Disconnected { peer } => {
                write!(f, "connection to rank {peer} closed unexpectedly")
            }
            TransportError::Timeout {
                waited,
                detail: Some(d),
            } => {
                write!(f, "timed out after {waited:?}: {d}")
            }
            TransportError::Timeout { waited, .. } => {
                write!(f, "no message within {waited:?}")
            }
            TransportError::Corrupt { peer, detail } => {
                write!(f, "corrupt frame from rank {peer}: {detail}")
            }
            TransportError::UnexpectedDtype { expected, got } => {
                write!(f, "expected {expected} payload, got {got}")
            }
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A point-to-point message fabric connecting `world_size` ranks.
///
/// # Contract
///
/// * `send` is addressed `(dst, tag, payload)` and must not be invoked
///   with `dst == rank` — [`WorkerCtx`](crate::WorkerCtx) loops self-sends
///   back internally and never hands them to the transport.
/// * `recv_any` yields the next inbound message from *any* peer; tag
///   matching and out-of-order buffering live above the transport, in
///   `WorkerCtx`.
/// * Messages from one peer arrive in the order they were sent (per-peer
///   FIFO). No ordering holds across peers.
/// * `barrier` blocks until every rank reaches it. Barrier traffic is
///   transport-internal and must **not** surface through `recv_any` or be
///   charged to the byte ledgers (the channel backend synchronizes without
///   messages; parity between backends requires TCP to hide its barrier
///   frames too).
pub trait Transport: Send {
    /// This rank.
    fn rank(&self) -> usize;

    /// Number of ranks in the cluster.
    fn world_size(&self) -> usize;

    /// Whether communication time is simulated or measured.
    fn clock(&self) -> Clock;

    /// Delivers `payload` to `dst` under `tag`.
    ///
    /// # Errors
    ///
    /// Fails if the peer is gone or the wire write fails.
    fn send(&self, dst: usize, tag: u64, payload: Payload) -> Result<(), TransportError>;

    /// Blocks up to `timeout` for the next inbound message from any peer.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] if nothing arrived; a backend-specific
    /// error if a peer died or sent a corrupt frame.
    fn recv_any(&self, timeout: Duration) -> Result<Message, TransportError>;

    /// Returns the next inbound message if one is already queued.
    ///
    /// # Errors
    ///
    /// Backend-specific errors as for [`Transport::recv_any`]; a quiet
    /// fabric returns `Ok(None)`.
    fn try_recv_any(&self) -> Result<Option<Message>, TransportError>;

    /// Blocks until every rank has entered the barrier.
    ///
    /// # Errors
    ///
    /// Fails if a peer dies while the barrier is forming.
    fn barrier(&self) -> Result<(), TransportError>;
}

// ----------------------------------------------------------------------
// The in-process channel backend
// ----------------------------------------------------------------------

/// The in-process backend: unbounded channels between worker threads and a
/// shared [`std::sync::Barrier`]. Communication time is *simulated* by the
/// layer above ([`Clock::Simulated`]); bytes and messages are counted from
/// [`Payload::wire_len`] exactly as the TCP backend counts them.
pub struct ChannelTransport {
    rank: usize,
    world: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    barrier: Arc<std::sync::Barrier>,
}

impl ChannelTransport {
    /// Builds the fully connected channel fabric for `world` ranks,
    /// returning one transport per rank (index = rank).
    ///
    /// Every transport holds a sender clone for every rank, so a worker
    /// finishing (and dropping its transport) never invalidates a peer's
    /// in-flight `send`.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    pub fn mesh(world: usize) -> Vec<ChannelTransport> {
        if world == 0 {
            panic!("transport mesh needs at least one rank");
        }
        let mut senders = Vec::with_capacity(world);
        let mut receivers = Vec::with_capacity(world);
        for _ in 0..world {
            // sar-check: allow(no-unbounded-channel) — unboundedness is what
            // makes `send` non-blocking, which the deadlock-freedom proof in
            // sar-check's protocol pass depends on; depth is bounded by the
            // (K+2)-block pipeline residency, not by the channel.
            let (tx, rx) = unbounded::<Message>();
            senders.push(tx);
            receivers.push(rx);
        }
        let barrier = Arc::new(std::sync::Barrier::new(world));
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| ChannelTransport {
                rank,
                world,
                senders: senders.clone(),
                receiver,
                barrier: Arc::clone(&barrier),
            })
            .collect()
    }
}

impl std::fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("rank", &self.rank)
            .field("world", &self.world)
            .finish()
    }
}

impl Transport for ChannelTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world
    }

    fn clock(&self) -> Clock {
        Clock::Simulated
    }

    fn send(&self, dst: usize, tag: u64, payload: Payload) -> Result<(), TransportError> {
        self.senders[dst]
            .send(Message {
                src: self.rank as u32,
                tag,
                payload,
            })
            .map_err(|_| TransportError::Disconnected { peer: dst })
    }

    fn recv_any(&self, timeout: Duration) -> Result<Message, TransportError> {
        self.receiver.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout {
                waited: timeout,
                detail: None,
            },
            RecvTimeoutError::Disconnected => TransportError::Disconnected { peer: self.rank },
        })
    }

    fn try_recv_any(&self) -> Result<Option<Message>, TransportError> {
        match self.receiver.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => {
                Err(TransportError::Disconnected { peer: self.rank })
            }
        }
    }

    fn barrier(&self) -> Result<(), TransportError> {
        self.barrier.wait();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_routes_between_ranks() {
        let mut mesh = ChannelTransport::mesh(3);
        let t2 = mesh.pop().unwrap();
        let t1 = mesh.pop().unwrap();
        let t0 = mesh.pop().unwrap();
        t0.send(2, 7, Payload::U32(vec![1])).unwrap();
        t1.send(2, 8, Payload::U32(vec![2])).unwrap();
        let a = t2.recv_any(Duration::from_secs(1)).unwrap();
        let b = t2.recv_any(Duration::from_secs(1)).unwrap();
        let mut got: Vec<(u32, u64)> = vec![(a.src, a.tag), (b.src, b.tag)];
        got.sort_unstable();
        assert_eq!(got, vec![(0, 7), (1, 8)]);
        assert!(t2.try_recv_any().unwrap().is_none());
    }

    #[test]
    fn recv_any_times_out() {
        let mesh = ChannelTransport::mesh(2);
        match mesh[0].recv_any(Duration::from_millis(10)) {
            Err(TransportError::Timeout { .. }) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn per_peer_fifo_order_is_preserved() {
        let mesh = ChannelTransport::mesh(2);
        for i in 0..10u32 {
            mesh[0].send(1, 5, Payload::U32(vec![i])).unwrap();
        }
        for i in 0..10u32 {
            let m = mesh[1].recv_any(Duration::from_secs(1)).unwrap();
            assert_eq!(m.payload, Payload::U32(vec![i]));
        }
    }
}
