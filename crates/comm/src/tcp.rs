//! The TCP transport backend: a real wire under the SAR runtime.
//!
//! One OS process per rank, one duplex TCP connection per peer pair, and
//! the checksummed frame format of [`wire`](crate::wire). The backend is
//! assembled in two steps:
//!
//! 1. **Rendezvous** — every rank binds a *data* listener on an ephemeral
//!    port (`port 0`; nothing in the protocol assumes fixed ports, so
//!    parallel CI jobs never collide). Rank 0 additionally serves the
//!    rendezvous point: ranks `1..N` connect to it, announce
//!    `(rank, data_address)`, and receive the full roster of all `N` data
//!    addresses in exchange.
//! 2. **Mesh** — rank `p` connects to the data listener of every rank
//!    `q > p` (with retry + exponential backoff) and accepts one
//!    connection from every rank `q < p`. Each accepted/established stream
//!    is identified by a one-frame hello carrying the peer's rank.
//!
//! After the mesh is up, one reader thread per peer decodes frames and
//! demultiplexes them: data frames flow to the inbox consumed by
//! [`Transport::recv_any`]; barrier frames feed the barrier accountant;
//! a shutdown frame (or clean EOF after [`TcpTransport`] starts closing)
//! ends the thread. A corrupt frame or an unexpected EOF is surfaced
//! *through the inbox* as a typed [`TransportError`], so a blocked
//! receiver learns about a dead peer immediately instead of hanging.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::codec::Codec;
use crate::message::{Message, Payload};
use crate::transport::{Clock, Transport, TransportError};
use crate::wire::{read_frame, write_frame, Frame, FrameKind, WireError};

/// Connection and I/O tuning for [`TcpTransport`].
#[derive(Debug, Clone, Copy)]
pub struct TcpOpts {
    /// Connection attempts per peer before giving up.
    pub connect_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt, capped at
    /// one second, with deterministic rank-seeded jitter of up to half the
    /// current backoff so a world of ranks retrying a slow rendezvous does
    /// not hammer it in lock-step.
    pub connect_backoff: Duration,
    /// Socket write timeout, and the deadline for handshake reads and
    /// barrier formation.
    pub io_timeout: Duration,
    /// Depth of each per-peer writer queue: how many outgoing frames may
    /// wait for the writer thread before `send` exerts backpressure
    /// (briefly blocking the caller). Large enough for a full pipelined
    /// rotation at any practical prefetch depth; small enough to bound
    /// in-flight send memory.
    pub writer_queue: usize,
    /// The wire codec this rank will run (see [`crate::codec`]). Carried
    /// in the rendezvous hello; rank 0 rejects the cluster unless every
    /// rank negotiated the same codec, and reader threads reject encoded
    /// frames carrying any other codec id.
    pub codec: Codec,
}

impl Default for TcpOpts {
    fn default() -> Self {
        TcpOpts {
            connect_attempts: 25,
            connect_backoff: Duration::from_millis(20),
            io_timeout: Duration::from_secs(120),
            writer_queue: 64,
            codec: Codec::Raw,
        }
    }
}

impl TcpOpts {
    /// Short-fuse options for failure-path tests.
    pub fn impatient() -> Self {
        TcpOpts {
            connect_attempts: 3,
            connect_backoff: Duration::from_millis(5),
            io_timeout: Duration::from_millis(500),
            ..TcpOpts::default()
        }
    }
}

/// What a reader thread forwards to the consuming worker.
type InboxItem = Result<Message, TransportError>;

/// One outgoing unit of work for a per-peer writer thread.
enum WriterMsg {
    /// Encode and write one frame.
    Frame {
        kind: FrameKind,
        tag: u64,
        payload: Payload,
    },
    /// Write a shutdown frame, half-close the socket, and exit.
    Close,
}

/// The sending side of one peer connection: a bounded queue feeding a
/// dedicated writer thread, so frame encoding and the socket write happen
/// off the worker's critical path. The worker's `send` is an enqueue — it
/// only blocks when the queue is full (backpressure).
struct WriterHandle {
    tx: std::sync::mpsc::SyncSender<WriterMsg>,
    /// Socket clone used solely by [`TcpTransport::abort`] to hard-close
    /// the connection out from under a possibly mid-write writer thread.
    sock: TcpStream,
    /// The first error the writer thread hit, for a diagnostic richer than
    /// "queue closed" on the next send.
    err: Arc<Mutex<Option<TransportError>>>,
    join: Option<std::thread::JoinHandle<()>>,
}

/// A TCP-backed [`Transport`]: per-peer framed streams, wall-clock time
/// accounting, clean shutdown on drop.
pub struct TcpTransport {
    rank: usize,
    world: usize,
    /// Per-peer writer threads, indexed by peer rank (`None` at `rank`).
    writers: Vec<Option<WriterHandle>>,
    inbox_rx: Receiver<InboxItem>,
    /// Kept alive so `inbox_rx` never reports a closed channel while the
    /// transport itself is alive.
    _inbox_tx: Sender<InboxItem>,
    barrier_rx: Receiver<(usize, u64)>,
    barrier_seq: Mutex<u64>,
    /// Barrier arrivals per sequence number: which peers have announced
    /// reaching a barrier this rank may not have entered yet. Tracking the
    /// rank *set* (not a count) lets a timed-out barrier name exactly who
    /// never showed up.
    barrier_ranks: Mutex<HashMap<u64, HashSet<usize>>>,
    /// Deadline for barrier formation, from [`TcpOpts::io_timeout`].
    io_timeout: Duration,
    closing: Arc<AtomicBool>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("rank", &self.rank)
            .field("world", &self.world)
            .finish()
    }
}

// ----------------------------------------------------------------------
// Rendezvous
// ----------------------------------------------------------------------

/// Rendezvous hello: `rank` announces its data listener address and the
/// wire codec it intends to run.
fn send_hello(
    stream: &mut TcpStream,
    rank: usize,
    codec: Codec,
    data_addr: SocketAddr,
) -> std::io::Result<()> {
    let addr = data_addr.to_string().into_bytes();
    let mut buf = Vec::with_capacity(9 + addr.len());
    buf.extend_from_slice(&(rank as u32).to_le_bytes());
    buf.push(codec.code());
    buf.extend_from_slice(&(addr.len() as u32).to_le_bytes());
    buf.extend_from_slice(&addr);
    stream.write_all(&buf)
}

fn read_exact(stream: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<()> {
    stream.read_exact(buf)
}

fn recv_hello(stream: &mut TcpStream) -> Result<(usize, Codec, SocketAddr), TransportError> {
    let mut head = [0u8; 9];
    read_exact(stream, &mut head).map_err(TransportError::Io)?;
    let rank = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
    let codec = Codec::from_code(head[4]).ok_or_else(|| {
        TransportError::Handshake(format!(
            "rendezvous hello from rank {rank} names unknown codec id {}",
            head[4]
        ))
    })?;
    let len = u32::from_le_bytes([head[5], head[6], head[7], head[8]]) as usize;
    if len > 256 {
        return Err(TransportError::Handshake(format!(
            "rendezvous hello claims a {len}-byte address"
        )));
    }
    let mut addr = vec![0u8; len];
    read_exact(stream, &mut addr).map_err(TransportError::Io)?;
    let addr = String::from_utf8(addr)
        .map_err(|e| TransportError::Handshake(format!("non-utf8 address: {e}")))?;
    let addr: SocketAddr = addr
        .parse()
        .map_err(|e| TransportError::Handshake(format!("bad address {addr:?}: {e}")))?;
    Ok((rank, codec, addr))
}

fn send_roster(stream: &mut TcpStream, roster: &[SocketAddr]) -> std::io::Result<()> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(roster.len() as u32).to_le_bytes());
    for a in roster {
        let s = a.to_string().into_bytes();
        buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
        buf.extend_from_slice(&s);
    }
    stream.write_all(&buf)
}

fn recv_roster(stream: &mut TcpStream, world: usize) -> Result<Vec<SocketAddr>, TransportError> {
    let mut head = [0u8; 4];
    read_exact(stream, &mut head).map_err(TransportError::Io)?;
    let n = u32::from_le_bytes(head) as usize;
    if n != world {
        return Err(TransportError::Handshake(format!(
            "roster lists {n} ranks, expected {world}"
        )));
    }
    let mut roster = Vec::with_capacity(n);
    for _ in 0..n {
        let mut lenb = [0u8; 4];
        read_exact(stream, &mut lenb).map_err(TransportError::Io)?;
        let len = u32::from_le_bytes(lenb) as usize;
        if len > 256 {
            return Err(TransportError::Handshake(format!(
                "roster entry claims a {len}-byte address"
            )));
        }
        let mut addr = vec![0u8; len];
        read_exact(stream, &mut addr).map_err(TransportError::Io)?;
        let addr = String::from_utf8(addr)
            .map_err(|e| TransportError::Handshake(format!("non-utf8 address: {e}")))?;
        roster.push(
            addr.parse()
                .map_err(|e| TransportError::Handshake(format!("bad address {addr:?}: {e}")))?,
        );
    }
    Ok(roster)
}

/// SplitMix64 — the deterministic jitter generator for connection
/// backoff. Seeded from `(rank, attempt)` so retries are reproducible per
/// rank but decorrelated across ranks.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Connects to `addr` with retry + jittered exponential backoff. `peer`
/// only labels the error; `rank` seeds the jitter, so every rank sleeps a
/// deterministic but distinct schedule instead of the whole world
/// retrying in lock-step. The final error reports how many attempts were
/// made and the total time spent backing off.
fn connect_with_retry(
    addr: SocketAddr,
    peer: usize,
    rank: usize,
    opts: &TcpOpts,
) -> Result<TcpStream, TransportError> {
    let mut backoff = opts.connect_backoff;
    let mut waited = Duration::ZERO;
    let mut last = None;
    for attempt in 0..opts.connect_attempts {
        match TcpStream::connect_timeout(&addr, opts.io_timeout.max(Duration::from_millis(250))) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
        if attempt + 1 < opts.connect_attempts {
            // Up to +50% of the current backoff, drawn deterministically
            // from (rank, attempt).
            let r = splitmix64((rank as u64) << 32 | u64::from(attempt));
            let half = backoff.as_nanos() as u64 / 2;
            let jitter_ns = if half == 0 { 0 } else { r % half };
            let sleep = backoff + Duration::from_nanos(jitter_ns);
            std::thread::sleep(sleep);
            waited += sleep;
            backoff = (backoff * 2).min(Duration::from_secs(1));
        }
    }
    Err(TransportError::ConnectFailed {
        peer,
        attempts: opts.connect_attempts,
        waited,
        last: last.unwrap_or_else(|| std::io::Error::other("no attempt made")),
    })
}

/// Accepts one connection with a deadline (the listener is switched to
/// non-blocking and polled).
fn accept_with_deadline(
    listener: &TcpListener,
    deadline: Instant,
) -> Result<(TcpStream, SocketAddr), TransportError> {
    listener.set_nonblocking(true).map_err(TransportError::Io)?;
    loop {
        match listener.accept() {
            Ok(pair) => {
                listener
                    .set_nonblocking(false)
                    .map_err(TransportError::Io)?;
                pair.0.set_nonblocking(false).map_err(TransportError::Io)?;
                return Ok(pair);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(TransportError::Timeout {
                        waited: Duration::from_secs(0),
                        detail: None,
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(TransportError::Io(e)),
        }
    }
}

impl TcpTransport {
    /// Rank 0: binds the data listener, serves the rendezvous on
    /// `rendezvous` (commonly bound to port 0 by the caller), and meshes.
    ///
    /// # Errors
    ///
    /// Fails if fewer than `world - 1` peers join before the deadline, a
    /// rank joins twice, or the mesh cannot form.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0` (a caller bug, not a network failure).
    pub fn host(
        rendezvous: TcpListener,
        world: usize,
        opts: TcpOpts,
    ) -> Result<TcpTransport, TransportError> {
        if world == 0 {
            panic!("cluster needs at least one rank");
        }
        let host_ip = rendezvous.local_addr().map_err(TransportError::Io)?.ip();
        let data_listener = TcpListener::bind((host_ip, 0)).map_err(TransportError::Io)?;
        let my_addr = data_listener.local_addr().map_err(TransportError::Io)?;

        let mut roster: Vec<Option<SocketAddr>> = vec![None; world];
        roster[0] = Some(my_addr);
        let deadline = Instant::now() + opts.io_timeout;
        let mut joined: Vec<(usize, TcpStream)> = Vec::with_capacity(world - 1);
        while joined.len() + 1 < world {
            let (mut stream, _) =
                accept_with_deadline(&rendezvous, deadline).map_err(|e| match e {
                    TransportError::Timeout { .. } => TransportError::Handshake(format!(
                        "only {} of {world} ranks joined the rendezvous within {:?}",
                        joined.len() + 1,
                        opts.io_timeout
                    )),
                    other => other,
                })?;
            stream
                .set_read_timeout(Some(opts.io_timeout))
                .map_err(TransportError::Io)?;
            let (rank, codec, addr) = recv_hello(&mut stream)?;
            if rank == 0 || rank >= world {
                return Err(TransportError::Handshake(format!(
                    "rendezvous hello from out-of-range rank {rank} (world {world})"
                )));
            }
            if codec != opts.codec {
                return Err(TransportError::Handshake(format!(
                    "codec negotiation failed: rank {rank} runs codec {}, rank 0 runs {}",
                    codec.name(),
                    opts.codec.name()
                )));
            }
            if roster[rank].is_some() {
                return Err(TransportError::Handshake(format!(
                    "rank {rank} joined the rendezvous twice"
                )));
            }
            roster[rank] = Some(addr);
            joined.push((rank, stream));
        }
        let roster: Vec<SocketAddr> = roster.into_iter().flatten().collect();
        if roster.len() != world {
            return Err(TransportError::Handshake(format!(
                "rendezvous closed with only {} of {world} ranks known",
                roster.len()
            )));
        }
        for (_, stream) in &mut joined {
            send_roster(stream, &roster).map_err(TransportError::Io)?;
        }
        drop(joined);
        Self::mesh(0, world, data_listener, &roster, opts)
    }

    /// Ranks `1..world`: joins the rendezvous served by rank 0 at `addr`,
    /// receives the roster, and meshes.
    ///
    /// # Errors
    ///
    /// [`TransportError::ConnectFailed`] (naming rank 0) if the rendezvous
    /// never answers; handshake or mesh errors otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is 0 or `>= world` (a caller bug — rank 0 hosts).
    pub fn join(
        addr: impl ToSocketAddrs,
        rank: usize,
        world: usize,
        opts: TcpOpts,
    ) -> Result<TcpTransport, TransportError> {
        if rank == 0 || rank >= world {
            panic!("join is for ranks 1..world, got rank {rank} of world {world}");
        }
        let addr = addr
            .to_socket_addrs()
            .map_err(TransportError::Io)?
            .next()
            .ok_or_else(|| {
                TransportError::Handshake("rendezvous address resolves to nothing".into())
            })?;
        let data_listener = TcpListener::bind((addr.ip(), 0)).map_err(TransportError::Io)?;
        let my_addr = data_listener.local_addr().map_err(TransportError::Io)?;

        let mut stream = connect_with_retry(addr, 0, rank, &opts)?;
        stream
            .set_read_timeout(Some(opts.io_timeout))
            .map_err(TransportError::Io)?;
        send_hello(&mut stream, rank, opts.codec, my_addr).map_err(TransportError::Io)?;
        let roster = recv_roster(&mut stream, world)?;
        drop(stream);
        Self::mesh(rank, world, data_listener, &roster, opts)
    }

    /// Builds the full mesh from a known roster: connect to every higher
    /// rank, accept from every lower rank, then start the reader threads.
    fn mesh(
        rank: usize,
        world: usize,
        data_listener: TcpListener,
        roster: &[SocketAddr],
        opts: TcpOpts,
    ) -> Result<TcpTransport, TransportError> {
        let mut streams: Vec<Option<TcpStream>> = (0..world).map(|_| None).collect();

        // Outbound: to every higher rank. A one-frame hello identifies us.
        for (q, &peer_addr) in roster.iter().enumerate().skip(rank + 1) {
            let mut s = connect_with_retry(peer_addr, q, rank, &opts)?;
            s.set_nodelay(true).ok();
            write_frame(
                &mut s,
                FrameKind::Data,
                rank as u32,
                HELLO_TAG,
                &Payload::Empty,
            )
            .map_err(TransportError::Io)?;
            streams[q] = Some(s);
        }
        // Inbound: one connection from every lower rank.
        let deadline = Instant::now() + opts.io_timeout;
        for _ in 0..rank {
            let (mut s, _) = accept_with_deadline(&data_listener, deadline).map_err(|e| {
                if matches!(e, TransportError::Timeout { .. }) {
                    TransportError::Handshake(format!(
                        "rank {rank}: not all lower ranks connected within {:?}",
                        opts.io_timeout
                    ))
                } else {
                    e
                }
            })?;
            s.set_nodelay(true).ok();
            s.set_read_timeout(Some(opts.io_timeout))
                .map_err(TransportError::Io)?;
            let hello = read_frame(&mut s).map_err(|e| {
                TransportError::Handshake(format!("rank {rank}: bad mesh hello: {e}"))
            })?;
            let q = hello.src as usize;
            if hello.tag != HELLO_TAG || q >= rank {
                return Err(TransportError::Handshake(format!(
                    "rank {rank}: unexpected mesh hello from rank {q} (tag {})",
                    hello.tag
                )));
            }
            if streams[q].is_some() {
                return Err(TransportError::Handshake(format!(
                    "rank {rank}: rank {q} connected twice"
                )));
            }
            s.set_read_timeout(None).map_err(TransportError::Io)?;
            streams[q] = Some(s);
        }

        // Demux plumbing + reader and writer threads.
        // sar-check: allow(no-unbounded-channel) — reader threads must never
        // block handing frames to the inbox, or a slow consumer would stall
        // the socket and break the non-blocking-send model the protocol
        // verifier assumes; depth is bounded by pipeline residency.
        let (inbox_tx, inbox_rx) = unbounded::<InboxItem>();
        // sar-check: allow(no-unbounded-channel) — barrier notifications are
        // at most one per peer per barrier sequence number.
        let (barrier_tx, barrier_rx) = unbounded::<(usize, u64)>();
        let closing = Arc::new(AtomicBool::new(false));
        let mut writers: Vec<Option<WriterHandle>> = (0..world).map(|_| None).collect();
        for (q, slot) in streams.into_iter().enumerate() {
            let Some(stream) = slot else { continue };
            stream
                .set_write_timeout(Some(opts.io_timeout))
                .map_err(TransportError::Io)?;
            let read_half = stream.try_clone().map_err(TransportError::Io)?;
            let abort_half = stream.try_clone().map_err(TransportError::Io)?;
            let tx = inbox_tx.clone();
            let btx = barrier_tx.clone();
            let closing_r = Arc::clone(&closing);
            let negotiated = opts.codec;
            std::thread::Builder::new()
                .name(format!("sar-tcp-r{rank}-p{q}"))
                .spawn(move || reader_loop(read_half, q, negotiated, tx, btx, closing_r))
                .map_err(TransportError::Io)?;
            let (wtx, wrx) = std::sync::mpsc::sync_channel::<WriterMsg>(opts.writer_queue.max(1));
            let err = Arc::new(Mutex::new(None));
            let werr = Arc::clone(&err);
            let join = std::thread::Builder::new()
                .name(format!("sar-tcp-w{rank}-p{q}"))
                .spawn(move || writer_loop(stream, rank as u32, q, wrx, werr))
                .map_err(TransportError::Io)?;
            writers[q] = Some(WriterHandle {
                tx: wtx,
                sock: abort_half,
                err,
                join: Some(join),
            });
        }
        Ok(TcpTransport {
            rank,
            world,
            writers,
            inbox_rx,
            _inbox_tx: inbox_tx,
            barrier_rx,
            barrier_seq: Mutex::new(0),
            barrier_ranks: Mutex::new(HashMap::new()),
            io_timeout: opts.io_timeout,
            closing,
        })
    }

    /// The typed error for a barrier that never formed: names the barrier
    /// sequence number and the ranks not yet heard from, so one worker's
    /// log line identifies the wedged peers.
    fn barrier_timeout(&self, seq: u64) -> TransportError {
        let heard = self
            .barrier_ranks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&seq)
            .cloned()
            .unwrap_or_default();
        let mut missing: Vec<usize> = (0..self.world)
            .filter(|&q| q != self.rank && !heard.contains(&q))
            .collect();
        missing.sort_unstable();
        TransportError::Timeout {
            waited: self.io_timeout,
            detail: Some(format!(
                "barrier seq {seq} never formed; still waiting on ranks {missing:?}"
            )),
        }
    }

    /// Simulates a crash for fault-injection tests: closes every peer
    /// socket immediately, without shutdown frames. Peers observe an
    /// unexpected EOF and surface [`TransportError::Disconnected`]; this
    /// rank's writer threads fail their next write and exit.
    pub fn abort(&self) {
        self.closing.store(true, Ordering::SeqCst);
        for w in self.writers.iter().flatten() {
            let _ = w.sock.shutdown(Shutdown::Both);
        }
    }
}

/// Drains one peer's outgoing queue onto its socket. Exits on a `Close`
/// message (clean shutdown), a write error (recorded in `err` for the next
/// `send` to report), or all senders dropping. Sent `F32` payload buffers
/// are recycled through [`crate::buffer`], closing the serve-side
/// allocation loop.
fn writer_loop(
    mut stream: TcpStream,
    src: u32,
    peer: usize,
    rx: std::sync::mpsc::Receiver<WriterMsg>,
    err: Arc<Mutex<Option<TransportError>>>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WriterMsg::Frame { kind, tag, payload } => {
                let res = write_frame(&mut stream, kind, src, tag, &payload);
                if let Payload::F32(v) = payload {
                    crate::buffer::recycle_f32(v);
                }
                if let Err(e) = res {
                    let mapped = if matches!(
                        e.kind(),
                        std::io::ErrorKind::BrokenPipe
                            | std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::ConnectionAborted
                    ) {
                        TransportError::Disconnected { peer }
                    } else {
                        TransportError::Io(e)
                    };
                    if let Ok(mut slot) = err.lock() {
                        *slot = Some(mapped);
                    }
                    // Dropping `rx` disconnects the queue; the next send
                    // observes the failure.
                    return;
                }
            }
            WriterMsg::Close => {
                let _ = write_frame(&mut stream, FrameKind::Shutdown, src, 0, &Payload::Empty);
                let _ = stream.shutdown(Shutdown::Write);
                return;
            }
        }
    }
}

/// Mesh-hello marker tag (never collides with worker tags, which the
/// runtime allocates far below `u64::MAX`).
const HELLO_TAG: u64 = u64::MAX;

fn reader_loop(
    mut stream: TcpStream,
    peer: usize,
    negotiated: Codec,
    inbox: Sender<InboxItem>,
    barriers: Sender<(usize, u64)>,
    closing: Arc<AtomicBool>,
) {
    loop {
        match read_frame(&mut stream) {
            Ok(Frame {
                kind: FrameKind::Data,
                src,
                tag,
                payload,
            }) => {
                let item = if src as usize != peer {
                    Err(TransportError::Corrupt {
                        peer,
                        detail: format!("frame claims src rank {src}"),
                    })
                } else if let Payload::Encoded { codec, .. } = &payload {
                    if *codec == negotiated {
                        Ok(Message { src, tag, payload })
                    } else {
                        Err(TransportError::Corrupt {
                            peer,
                            detail: format!(
                                "{}-coded frame from rank {src}, but this cluster \
                                 negotiated codec {}",
                                codec.name(),
                                negotiated.name()
                            ),
                        })
                    }
                } else {
                    Ok(Message { src, tag, payload })
                };
                let failed = item.is_err();
                if inbox.send(item).is_err() || failed {
                    return;
                }
            }
            Ok(Frame {
                kind: FrameKind::Barrier,
                tag,
                ..
            }) => {
                if barriers.send((peer, tag)).is_err() {
                    return;
                }
            }
            Ok(Frame {
                kind: FrameKind::Shutdown,
                ..
            }) => return,
            Ok(Frame { kind, .. }) => {
                // Serving-tier frames (Request/Response) belong on a
                // client connection, never inside the worker mesh.
                let _ = inbox.send(Err(TransportError::Corrupt {
                    peer,
                    detail: format!("unexpected {kind:?} frame on the worker mesh"),
                }));
                return;
            }
            Err(WireError::Eof) => {
                if !closing.load(Ordering::SeqCst) {
                    let _ = inbox.send(Err(TransportError::Disconnected { peer }));
                }
                return;
            }
            Err(WireError::ChecksumMismatch {
                expected,
                actual,
                codec,
            }) => {
                let coded = codec
                    .map(|c| format!(" on a {}-coded frame", c.name()))
                    .unwrap_or_default();
                let _ = inbox.send(Err(TransportError::Corrupt {
                    peer,
                    detail: format!(
                        "checksum mismatch{coded} (frame {expected:#010x}, computed {actual:#010x})"
                    ),
                }));
                return;
            }
            Err(WireError::BadHeader(d)) => {
                let _ = inbox.send(Err(TransportError::Corrupt { peer, detail: d }));
                return;
            }
            Err(WireError::Io(e)) => {
                if !closing.load(Ordering::SeqCst) {
                    let _ = inbox.send(Err(TransportError::Io(e)));
                }
                return;
            }
        }
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world
    }

    fn clock(&self) -> Clock {
        Clock::Wall
    }

    fn send(&self, dst: usize, tag: u64, payload: Payload) -> Result<(), TransportError> {
        let writer = self.writers[dst]
            .as_ref()
            .ok_or(TransportError::Disconnected { peer: dst })?;
        writer
            .tx
            .send(WriterMsg::Frame {
                kind: FrameKind::Data,
                tag,
                payload,
            })
            .map_err(|_| {
                // The writer thread exited: report what killed it if it
                // left a diagnostic, else a plain disconnect.
                writer
                    .err
                    .lock()
                    .ok()
                    .and_then(|mut e| e.take())
                    .unwrap_or(TransportError::Disconnected { peer: dst })
            })
    }

    fn recv_any(&self, timeout: Duration) -> Result<Message, TransportError> {
        match self.inbox_rx.recv_timeout(timeout) {
            Ok(item) => item,
            Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout {
                waited: timeout,
                detail: None,
            }),
            Err(RecvTimeoutError::Disconnected) => {
                Err(TransportError::Disconnected { peer: self.rank })
            }
        }
    }

    fn try_recv_any(&self) -> Result<Option<Message>, TransportError> {
        match self.inbox_rx.try_recv() {
            Ok(item) => item.map(Some),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => {
                Err(TransportError::Disconnected { peer: self.rank })
            }
        }
    }

    fn barrier(&self) -> Result<(), TransportError> {
        if self.world == 1 {
            return Ok(());
        }
        let seq = {
            // Lock poisoning only means another barrier call panicked midway;
            // the counter itself is still coherent, so keep going.
            let mut s = self.barrier_seq.lock().unwrap_or_else(|e| e.into_inner());
            let v = *s;
            *s += 1;
            v
        };
        for (q, w) in self.writers.iter().enumerate() {
            let Some(w) = w else { continue };
            // Barrier frames ride the same per-peer queue as data frames,
            // so a barrier never overtakes an already-enqueued message.
            w.tx.send(WriterMsg::Frame {
                kind: FrameKind::Barrier,
                tag: seq,
                payload: Payload::Empty,
            })
            .map_err(|_| TransportError::Disconnected { peer: q })?;
        }
        // Barrier formation shares the configured I/O deadline — a barrier
        // that outlives `io_timeout` means a peer is dead or wedged, and
        // waiting a hardcoded ten minutes on top would only delay the
        // diagnosis.
        let deadline = Instant::now() + self.io_timeout;
        loop {
            {
                let mut ranks = self.barrier_ranks.lock().unwrap_or_else(|e| e.into_inner());
                if ranks.get(&seq).is_some_and(|r| r.len() == self.world - 1) {
                    ranks.remove(&seq);
                    return Ok(());
                }
            }
            let left = deadline
                .checked_duration_since(Instant::now())
                .ok_or_else(|| self.barrier_timeout(seq))?;
            match self
                .barrier_rx
                .recv_timeout(left.min(Duration::from_millis(200)))
            {
                Ok((peer, s)) => {
                    self.barrier_ranks
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .entry(s)
                        .or_default()
                        .insert(peer);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(TransportError::Disconnected { peer: self.rank })
                }
            }
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.closing.store(true, Ordering::SeqCst);
        // Ask every writer thread to flush its queue, emit a shutdown
        // frame, and half-close the socket. The send blocks only while the
        // queue drains; a wedged socket is bounded by the write timeout.
        for w in self.writers.iter().flatten() {
            let _ = w.tx.send(WriterMsg::Close);
        }
        for w in self.writers.iter_mut().flatten() {
            if let Some(join) = w.join.take() {
                let _ = join.join();
            }
        }
        // Reader threads exit on the peers' shutdown frames or EOFs; they
        // are detached, so no join (a blocked join could deadlock with a
        // peer that drops later).
    }
}

/// Spawns a localhost TCP cluster with one *thread* per rank — the
/// harness used by parity and protocol tests (real sockets, no process
/// management). Rank 0 hosts the rendezvous on an ephemeral port; the
/// other ranks learn the address through a channel, exactly as external
/// launchers learn it through the rendezvous file.
///
/// # Panics
///
/// Panics if any rank fails to establish its transport, or if a worker
/// closure panics.
pub fn run_tcp_threads<T, F>(world: usize, opts: TcpOpts, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(TcpTransport) -> T + Send + Sync + 'static,
{
    let rendezvous = TcpListener::bind(("127.0.0.1", 0))
        .unwrap_or_else(|e| panic!("failed to bind the rendezvous listener: {e}"));
    let addr = rendezvous
        .local_addr()
        .unwrap_or_else(|e| panic!("failed to read the rendezvous address: {e}"));
    let f = Arc::new(f);
    let mut handles = Vec::with_capacity(world);
    for rank in 0..world {
        let f = Arc::clone(&f);
        let rendezvous = (rank == 0).then(|| {
            rendezvous
                .try_clone()
                .unwrap_or_else(|e| panic!("rank 0: failed to clone the rendezvous listener: {e}"))
        });
        handles.push(
            std::thread::Builder::new()
                .name(format!("sar-tcp-worker-{rank}"))
                .spawn(move || {
                    let transport = match rendezvous {
                        Some(l) => TcpTransport::host(l, world, opts),
                        None => TcpTransport::join(addr, rank, world, opts),
                    }
                    .unwrap_or_else(|e| panic!("rank {rank}: transport setup failed: {e}"));
                    f(transport)
                })
                .unwrap_or_else(|e| panic!("failed to spawn tcp worker for rank {rank}: {e}")),
        );
    }
    handles
        .into_iter()
        .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_ranks_exchange_over_loopback() {
        let out = run_tcp_threads(2, TcpOpts::default(), |t| {
            let peer = 1 - t.rank();
            t.send(peer, 7, Payload::U32(vec![t.rank() as u32 * 10]))
                .unwrap();
            let m = t.recv_any(Duration::from_secs(10)).unwrap();
            assert_eq!(m.src as usize, peer);
            assert_eq!(m.tag, 7);
            m.payload.into_u32()[0]
        });
        assert_eq!(out, vec![10, 0]);
    }

    #[test]
    fn four_rank_mesh_routes_all_pairs() {
        let out = run_tcp_threads(4, TcpOpts::default(), |t| {
            let n = t.world_size();
            for q in 0..n {
                if q != t.rank() {
                    t.send(q, 1, Payload::U32(vec![t.rank() as u32])).unwrap();
                }
            }
            let mut got = vec![false; n];
            got[t.rank()] = true;
            for _ in 0..n - 1 {
                let m = t.recv_any(Duration::from_secs(10)).unwrap();
                got[m.payload.into_u32()[0] as usize] = true;
            }
            got.iter().all(|&b| b)
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn per_peer_order_is_preserved() {
        let out = run_tcp_threads(2, TcpOpts::default(), |t| {
            let peer = 1 - t.rank();
            for i in 0..50u32 {
                t.send(peer, i as u64, Payload::U32(vec![i])).unwrap();
            }
            let mut seen = Vec::with_capacity(50);
            for _ in 0..50 {
                let m = t.recv_any(Duration::from_secs(10)).unwrap();
                seen.push(m.payload.into_u32()[0]);
            }
            seen
        });
        let expect: Vec<u32> = (0..50).collect();
        assert_eq!(out[0], expect);
        assert_eq!(out[1], expect);
    }

    #[test]
    fn barriers_synchronize_and_stay_off_the_inbox() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static ENTERED: AtomicUsize = AtomicUsize::new(0);
        let out = run_tcp_threads(3, TcpOpts::default(), |t| {
            ENTERED.fetch_add(1, Ordering::SeqCst);
            t.barrier().unwrap();
            let seen = ENTERED.load(Ordering::SeqCst);
            // A second barrier immediately after: sequence numbers keep
            // consecutive barriers apart.
            t.barrier().unwrap();
            assert!(
                t.try_recv_any().unwrap().is_none(),
                "barrier leaked a frame"
            );
            seen
        });
        assert!(out.iter().all(|&s| s == 3));
    }

    #[test]
    fn connect_failure_names_the_peer_rank() {
        // Nothing listens here: grab an ephemeral port and release it.
        let addr = {
            let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            l.local_addr().unwrap()
        };
        let Err(err) = TcpTransport::join(addr, 1, 2, TcpOpts::impatient()) else {
            panic!("join must fail with no rendezvous");
        };
        let msg = err.to_string();
        assert!(
            msg.contains("rank 0") && msg.contains("attempts"),
            "error must name the unreachable rank and the retry count: {msg}"
        );
    }

    #[test]
    fn mid_stream_disconnect_surfaces_typed_error_without_hanging() {
        let out = run_tcp_threads(2, TcpOpts::default(), |t| {
            if t.rank() == 1 {
                // Crash without a shutdown frame.
                t.abort();
                return "aborted".to_string();
            }
            match t.recv_any(Duration::from_secs(10)) {
                Err(TransportError::Disconnected { peer }) => format!("disconnected:{peer}"),
                other => format!("unexpected: {other:?}"),
            }
        });
        assert_eq!(out[0], "disconnected:1");
    }

    #[test]
    fn corrupted_frame_is_rejected_with_checksum_error() {
        // A real rank 0 against a hand-rolled "rank 1" that completes the
        // rendezvous + mesh handshake and then sends a bit-flipped frame.
        let rendezvous = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let rdv_addr = rendezvous.local_addr().unwrap();
        let evil = std::thread::spawn(move || {
            let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            let my_addr = listener.local_addr().unwrap();
            let mut s = TcpStream::connect(rdv_addr).unwrap();
            send_hello(&mut s, 1, Codec::Raw, my_addr).unwrap();
            let _roster = recv_roster(&mut s, 2).unwrap();
            // Rank 0 connects to us (lower rank dials higher).
            let (mut data, _) = listener.accept().unwrap();
            let hello = read_frame(&mut data).unwrap();
            assert_eq!(hello.src, 0);
            let mut frame =
                crate::wire::encode_frame(FrameKind::Data, 1, 9, &Payload::F32(vec![1.0, 2.0]));
            let last = frame.len() - 1;
            frame[last] ^= 0x40;
            data.write_all(&frame).unwrap();
            data.flush().unwrap();
            // Hold the socket open so EOF cannot race the corrupt frame.
            std::thread::sleep(Duration::from_millis(300));
        });
        let t = TcpTransport::host(rendezvous, 2, TcpOpts::default()).unwrap();
        match t.recv_any(Duration::from_secs(5)) {
            Err(TransportError::Corrupt { peer: 1, detail }) => {
                assert!(detail.contains("checksum"), "detail: {detail}");
            }
            other => panic!("expected checksum rejection, got {other:?}"),
        }
        evil.join().unwrap();
    }

    #[test]
    fn connect_failure_reports_total_backoff_time() {
        let addr = {
            let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            l.local_addr().unwrap()
        };
        let err = connect_with_retry(addr, 3, 1, &TcpOpts::impatient())
            .expect_err("nothing listens there");
        let TransportError::ConnectFailed {
            peer,
            attempts,
            waited,
            ..
        } = &err
        else {
            panic!("expected ConnectFailed, got {err:?}");
        };
        assert_eq!(*peer, 3);
        assert_eq!(*attempts, 3);
        // Two backoff sleeps happened (5ms + jitter, 10ms + jitter).
        assert!(*waited >= Duration::from_millis(15), "waited {waited:?}");
        let msg = err.to_string();
        assert!(
            msg.contains("backing off") && msg.contains("attempts"),
            "error must surface the retry budget: {msg}"
        );
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_rank_and_distinct_across_ranks() {
        // The jitter draw for (rank, attempt) is a pure function.
        assert_eq!(splitmix64(42), splitmix64(42));
        let draws: Vec<u64> = (0..8u64).map(|rank| splitmix64(rank << 32)).collect();
        let mut unique = draws.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(
            unique.len(),
            draws.len(),
            "ranks must not retry in lock-step"
        );
    }

    #[test]
    fn barrier_timeout_names_the_seq_and_missing_ranks() {
        let opts = TcpOpts {
            io_timeout: Duration::from_millis(400),
            ..TcpOpts::default()
        };
        let out = run_tcp_threads(2, opts, |t| {
            if t.rank() == 1 {
                // Never enter the barrier; stay alive long enough that
                // rank 0 times out rather than observing a disconnect.
                std::thread::sleep(Duration::from_millis(1500));
                return "slept".to_string();
            }
            match t.barrier() {
                Err(TransportError::Timeout { waited, detail }) => {
                    let d = detail.unwrap_or_default();
                    assert!(
                        d.contains("barrier seq 0") && d.contains("[1]"),
                        "diagnostic must name the seq and the absent ranks: {d}"
                    );
                    // The deadline came from io_timeout, not a hardcoded
                    // 600 s.
                    assert!(waited <= Duration::from_secs(1));
                    "timed-out".to_string()
                }
                other => format!("unexpected: {other:?}"),
            }
        });
        assert_eq!(out[0], "timed-out");
    }

    #[test]
    fn codec_negotiation_rejects_a_mismatched_rank() {
        let rendezvous = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let rdv_addr = rendezvous.local_addr().unwrap();
        let joiner = std::thread::spawn(move || {
            let opts = TcpOpts {
                codec: Codec::Int8,
                ..TcpOpts::impatient()
            };
            TcpTransport::join(rdv_addr, 1, 2, opts).err()
        });
        let host_opts = TcpOpts {
            codec: Codec::F16,
            ..TcpOpts::impatient()
        };
        let err = TcpTransport::host(rendezvous, 2, host_opts)
            .expect_err("host must reject a codec mismatch");
        let msg = err.to_string();
        assert!(
            msg.contains("codec negotiation failed")
                && msg.contains("int8")
                && msg.contains("f16")
                && msg.contains("rank 1"),
            "diagnostic must name both codecs and the rank: {msg}"
        );
        // The joiner fails too (the roster never arrives).
        assert!(joiner.join().unwrap().is_some());
    }

    #[test]
    fn negotiated_codec_frames_cross_the_mesh() {
        let opts = TcpOpts {
            codec: Codec::Delta,
            ..TcpOpts::default()
        };
        let out = run_tcp_threads(2, opts, |t| {
            let peer = 1 - t.rank();
            let bytes = Codec::Delta.encode_block(
                crate::phase::Phase::ForwardFetch,
                Some(0),
                &[1.0, 2.0, 3.0],
                None,
            );
            t.send(
                peer,
                5,
                Payload::Encoded {
                    codec: Codec::Delta,
                    bytes,
                },
            )
            .unwrap();
            let m = t.recv_any(Duration::from_secs(10)).unwrap();
            matches!(
                m.payload,
                Payload::Encoded {
                    codec: Codec::Delta,
                    ..
                }
            )
        });
        assert!(out[0] && out[1]);
    }

    #[test]
    fn unnegotiated_codec_frame_is_rejected_by_the_reader() {
        // Cluster negotiated raw; a peer ships an int8-coded frame anyway.
        let out = run_tcp_threads(2, TcpOpts::default(), |t| {
            if t.rank() == 1 {
                let bytes = Codec::Int8.encode_block(
                    crate::phase::Phase::ForwardFetch,
                    None,
                    &[1.0; 64],
                    None,
                );
                t.send(
                    0,
                    4,
                    Payload::Encoded {
                        codec: Codec::Int8,
                        bytes,
                    },
                )
                .unwrap();
                std::thread::sleep(Duration::from_millis(300));
                return "sent".to_string();
            }
            match t.recv_any(Duration::from_secs(5)) {
                Err(TransportError::Corrupt { peer: 1, detail }) => {
                    assert!(
                        detail.contains("int8") && detail.contains("raw"),
                        "detail must name both codecs: {detail}"
                    );
                    "rejected".to_string()
                }
                other => format!("unexpected: {other:?}"),
            }
        });
        assert_eq!(out[0], "rejected");
    }

    #[test]
    fn corrupted_encoded_frame_names_the_codec_on_tcp() {
        // Like corrupted_frame_is_rejected_with_checksum_error, but the
        // bit-flipped frame is codec-encoded: the checksum diagnostic must
        // say which codec the frame claimed.
        let rendezvous = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let rdv_addr = rendezvous.local_addr().unwrap();
        let evil = std::thread::spawn(move || {
            let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            let my_addr = listener.local_addr().unwrap();
            let mut s = TcpStream::connect(rdv_addr).unwrap();
            send_hello(&mut s, 1, Codec::Delta, my_addr).unwrap();
            let _roster = recv_roster(&mut s, 2).unwrap();
            let (mut data, _) = listener.accept().unwrap();
            let hello = read_frame(&mut data).unwrap();
            assert_eq!(hello.src, 0);
            let bytes = Codec::Delta.encode_block(
                crate::phase::Phase::GradRouting,
                None,
                &[4.0, 5.0],
                None,
            );
            let mut frame = crate::wire::encode_frame(
                FrameKind::Data,
                1,
                9,
                &Payload::Encoded {
                    codec: Codec::Delta,
                    bytes,
                },
            );
            let last = frame.len() - 1;
            frame[last] ^= 0x40;
            data.write_all(&frame).unwrap();
            data.flush().unwrap();
            std::thread::sleep(Duration::from_millis(300));
        });
        let opts = TcpOpts {
            codec: Codec::Delta,
            ..TcpOpts::default()
        };
        let t = TcpTransport::host(rendezvous, 2, opts).unwrap();
        match t.recv_any(Duration::from_secs(5)) {
            Err(TransportError::Corrupt { peer: 1, detail }) => {
                assert!(
                    detail.contains("checksum") && detail.contains("delta"),
                    "detail: {detail}"
                );
            }
            other => panic!("expected checksum rejection, got {other:?}"),
        }
        evil.join().unwrap();
    }

    #[test]
    fn bytes_payload_round_trips_on_the_wire() {
        let out = run_tcp_threads(2, TcpOpts::default(), |t| {
            let peer = 1 - t.rank();
            let blob: Vec<u8> = (0..=255).collect();
            t.send(peer, 3, Payload::Bytes(blob.clone())).unwrap();
            let m = t.recv_any(Duration::from_secs(10)).unwrap();
            m.payload.into_bytes() == blob
        });
        assert!(out[0] && out[1]);
    }
}
