//! A process-wide recycling pool for `f32` payload buffers.
//!
//! Every rotation round of Algorithm 1 ships one gathered feature block
//! per peer; without reuse that is a fresh `Vec<f32>` allocation per
//! round × layer × epoch on the send side. The pool closes the loop on
//! the TCP backend: the serve path takes a buffer, fills it and sends it,
//! and the per-peer writer thread returns the vector here after the frame
//! hits the socket. On the in-process channel backend the vector moves to
//! the receiver intact (zero-copy), so there is nothing to recycle and
//! `take` simply allocates on a miss.
//!
//! The pool is deliberately dumb: a mutexed stack of vectors, capped so a
//! burst cannot pin unbounded memory. Buffers are handed out fully
//! zeroed-length-adjusted (`resize`), never carrying stale capacity
//! contents into a payload.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Most vectors the pool retains; excess recycles are simply dropped.
const MAX_POOLED: usize = 64;

static POOL: Mutex<Vec<Vec<f32>>> = Mutex::new(Vec::new());
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RECYCLES: AtomicU64 = AtomicU64::new(0);
static RECYCLE_DROPS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide pool counters, as surfaced in the
/// `buffer_pool` object of the run-report JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// `take_f32` calls served from a pooled allocation.
    pub hits: u64,
    /// `take_f32` calls that had to allocate fresh.
    pub misses: u64,
    /// Buffers returned and retained by the pool.
    pub recycles: u64,
    /// Buffers returned but dropped because the pool was full.
    pub recycle_drops: u64,
}

/// Takes a zeroed buffer of exactly `len` elements, reusing a pooled
/// allocation when one with sufficient capacity exists.
pub fn take_f32(len: usize) -> Vec<f32> {
    let reused = {
        let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
        // Prefer the last vector with enough capacity; fall back to any.
        match pool.iter().rposition(|v| v.capacity() >= len) {
            Some(i) => Some(pool.swap_remove(i)),
            None => pool.pop(),
        }
    };
    match reused {
        Some(mut v) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            v.clear();
            v.resize(len, 0.0);
            v
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            vec![0.0; len]
        }
    }
}

/// Returns a buffer to the pool (dropped if the pool is full). Callable
/// from any thread — the TCP writer threads recycle sent payloads here.
pub fn recycle_f32(v: Vec<f32>) {
    if v.capacity() == 0 {
        return;
    }
    let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
    if pool.len() < MAX_POOLED {
        pool.push(v);
        RECYCLES.fetch_add(1, Ordering::Relaxed);
    } else {
        RECYCLE_DROPS.fetch_add(1, Ordering::Relaxed);
    }
}

/// `(hits, misses)` counters since process start — observability for tests
/// asserting that steady-state rounds stop allocating.
pub fn pool_counters() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Full counter snapshot since process start: hits, misses, retained
/// recycles and capacity-dropped recycles.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        recycles: RECYCLES.load(Ordering::Relaxed),
        recycle_drops: RECYCLE_DROPS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_buffers_are_reused() {
        let v = take_f32(1000);
        let cap = v.capacity();
        recycle_f32(v);
        let (h0, _) = pool_counters();
        let v2 = take_f32(500);
        assert!(v2.capacity() >= cap.min(1000));
        assert_eq!(v2.len(), 500);
        let (h1, _) = pool_counters();
        assert!(h1 > h0, "second take must be a pool hit");
        recycle_f32(v2);
    }

    #[test]
    fn take_returns_exact_len_and_zeroed_contents() {
        recycle_f32(vec![7.0; 64]);
        let v = take_f32(16);
        assert_eq!(v.len(), 16);
        assert!(v.iter().all(|&x| x == 0.0), "pooled buffer not zeroed");
        recycle_f32(v);
        let v = take_f32(128);
        assert_eq!(v.len(), 128);
        assert!(v.iter().all(|&x| x == 0.0));
        recycle_f32(v);
    }

    #[test]
    fn recycle_counters_track_retention() {
        let before = pool_stats();
        recycle_f32(vec![0.0; 8]);
        let after = pool_stats();
        // Either the pool had room (recycles grew) or it was full
        // (recycle_drops grew) — exactly one of the two.
        assert_eq!(
            after.recycles + after.recycle_drops,
            before.recycles + before.recycle_drops + 1
        );
        // Zero-capacity vectors are rejected before either counter.
        recycle_f32(Vec::new());
        let last = pool_stats();
        assert_eq!(
            last.recycles + last.recycle_drops,
            after.recycles + after.recycle_drops
        );
    }
}
