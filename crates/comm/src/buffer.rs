//! A process-wide recycling pool for `f32` payload buffers.
//!
//! Every rotation round of Algorithm 1 ships one gathered feature block
//! per peer; without reuse that is a fresh `Vec<f32>` allocation per
//! round × layer × epoch on the send side. The pool closes the loop on
//! the TCP backend: the serve path takes a buffer, fills it and sends it,
//! and the per-peer writer thread returns the vector here after the frame
//! hits the socket. On the in-process channel backend the vector moves to
//! the receiver intact (zero-copy), so there is nothing to recycle and
//! `take` simply allocates on a miss.
//!
//! The pool is deliberately dumb: a mutexed stack of vectors, capped so a
//! burst cannot pin unbounded memory. Buffers are handed out fully
//! zeroed-length-adjusted (`resize`), never carrying stale capacity
//! contents into a payload.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Most vectors the pool retains; excess recycles are simply dropped.
const MAX_POOLED: usize = 64;

static POOL: Mutex<Vec<Vec<f32>>> = Mutex::new(Vec::new());
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Takes a zeroed buffer of exactly `len` elements, reusing a pooled
/// allocation when one with sufficient capacity exists.
pub fn take_f32(len: usize) -> Vec<f32> {
    let reused = {
        let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
        // Prefer the last vector with enough capacity; fall back to any.
        match pool.iter().rposition(|v| v.capacity() >= len) {
            Some(i) => Some(pool.swap_remove(i)),
            None => pool.pop(),
        }
    };
    match reused {
        Some(mut v) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            v.clear();
            v.resize(len, 0.0);
            v
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            vec![0.0; len]
        }
    }
}

/// Returns a buffer to the pool (dropped if the pool is full). Callable
/// from any thread — the TCP writer threads recycle sent payloads here.
pub fn recycle_f32(v: Vec<f32>) {
    if v.capacity() == 0 {
        return;
    }
    let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
    if pool.len() < MAX_POOLED {
        pool.push(v);
    }
}

/// `(hits, misses)` counters since process start — observability for tests
/// asserting that steady-state rounds stop allocating.
pub fn pool_counters() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_buffers_are_reused() {
        let v = take_f32(1000);
        let cap = v.capacity();
        recycle_f32(v);
        let (h0, _) = pool_counters();
        let v2 = take_f32(500);
        assert!(v2.capacity() >= cap.min(1000));
        assert_eq!(v2.len(), 500);
        let (h1, _) = pool_counters();
        assert!(h1 > h0, "second take must be a pool hit");
        recycle_f32(v2);
    }

    #[test]
    fn take_returns_exact_len_and_zeroed_contents() {
        recycle_f32(vec![7.0; 64]);
        let v = take_f32(16);
        assert_eq!(v.len(), 16);
        assert!(v.iter().all(|&x| x == 0.0), "pooled buffer not zeroed");
        recycle_f32(v);
        let v = take_f32(128);
        assert_eq!(v.len(), 128);
        assert!(v.iter().all(|&x| x == 0.0));
        recycle_f32(v);
    }
}
