//! Negotiated per-payload wire codecs for the rotation exchange.
//!
//! SAR's dominant cost is communication volume, and every exchange in the
//! seed shipped raw `f32`. This module adds a codec layer *under* the
//! logical protocol: the [`WorkerCtx`](crate::WorkerCtx) encodes eligible
//! data-plane `F32` payloads (forward fetch, backward re-fetch, gradient
//! routing — never collectives, gathers or control traffic) into a
//! [`Payload::Encoded`](crate::Payload::Encoded) block, and decodes them
//! back on delivery. Both backends carry the *encoded* bytes through the
//! transport, so the α–β cost model and the TCP socket see exactly the
//! same wire volume, and ledger accounting splits cleanly into *logical*
//! bytes (raw-f32 payload semantics, unchanged — the parity digest pins
//! these) and *wire* bytes (what actually crossed the network).
//!
//! Codecs:
//!
//! * `raw` — identity; eligible payloads are not rewritten at all, so the
//!   whole path is byte-for-byte the seed behavior.
//! * `f16` — IEEE 754 binary16 truncation, round-to-nearest-even. 2×.
//! * `bf16` — bfloat16 truncation (f32's top 16 bits, round-to-nearest-
//!   even). Same range as f32, 2×.
//! * `int8` — symmetric linear quantization with one f32 scale per
//!   [`INT8_BLOCK`]-value block (`scale = maxabs / 127`). ≈3.8×.
//! * `delta` — lossless XOR + zero-run-length coding against the previous
//!   block on the same `(peer, phase, layer)` stream — in SAR's schedule
//!   that stream carries exactly one block per epoch, so this is a delta
//!   against the previous *epoch's* block. Falls back to a raw body when
//!   the delta does not compress, so it never expands beyond
//!   `meta + 1` bytes of overhead.
//!
//! Every encoded block opens with an 8-byte stream header
//! (`phase`, `layer`, element count) so the receiver can key its delta
//! mirror cache — and validate the body — from the frame alone, without
//! trusting its own ambient phase/layer scope to match the sender's.
//!
//! Decoding is deterministic and backend-independent: a `f16`-coded block
//! decodes to the same f32 bits whether it crossed a simulated channel or
//! a TCP socket, which is what keeps losses bitwise identical across
//! transports under any codec.

use crate::phase::Phase;

/// Values per quantization block for the `int8` codec (one f32 scale is
/// stored per block).
pub const INT8_BLOCK: usize = 64;

/// Size of the stream header opening every encoded block body.
pub const BLOCK_META_LEN: usize = 8;

/// Tags at or above this value are never codec-eligible: the serving
/// control plane (`1 << 42`), the result gather (`1 << 61`), the
/// collective space (`1 << 62`) and the transport hello (`u64::MAX`) all
/// live above it, while every peer-to-peer rotation-exchange tag
/// (`1 << 40` plus small view offsets) lives below.
pub const CODEC_TAG_CEILING: u64 = 1 << 41;

/// A negotiated wire codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Ship raw little-endian f32 — the seed wire format.
    #[default]
    Raw,
    /// IEEE 754 binary16 truncation.
    F16,
    /// bfloat16 truncation.
    Bf16,
    /// Symmetric per-block int8 quantization.
    Int8,
    /// Lossless XOR + zero-RLE delta against the previous epoch's block.
    Delta,
}

impl Codec {
    /// All codecs, in wire-code order.
    pub const ALL: [Codec; 5] = [
        Codec::Raw,
        Codec::F16,
        Codec::Bf16,
        Codec::Int8,
        Codec::Delta,
    ];

    /// Stable wire code, carried in frame-header byte 6 and in the
    /// rendezvous hello.
    pub fn code(self) -> u8 {
        match self {
            Codec::Raw => 0,
            Codec::F16 => 1,
            Codec::Bf16 => 2,
            Codec::Int8 => 3,
            Codec::Delta => 4,
        }
    }

    /// Inverse of [`Codec::code`].
    pub fn from_code(code: u8) -> Option<Codec> {
        Codec::ALL.into_iter().find(|c| c.code() == code)
    }

    /// Stable flag-value name (`--codec raw|f16|bf16|int8|delta`).
    pub fn name(self) -> &'static str {
        match self {
            Codec::Raw => "raw",
            Codec::F16 => "f16",
            Codec::Bf16 => "bf16",
            Codec::Int8 => "int8",
            Codec::Delta => "delta",
        }
    }

    /// Inverse of [`Codec::name`].
    pub fn parse(name: &str) -> Option<Codec> {
        Codec::ALL.into_iter().find(|c| c.name() == name)
    }

    /// `true` if decoded values can differ from the encoded input.
    /// `raw` and `delta` are bit-exact; the truncating/quantizing codecs
    /// are not.
    pub fn is_lossy(self) -> bool {
        matches!(self, Codec::F16 | Codec::Bf16 | Codec::Int8)
    }

    /// Encodes one f32 block into a self-describing body:
    /// `[phase u8][has_layer u8][layer u16 LE][n u32 LE][codec body]`.
    ///
    /// `prev` is the previous block on this `(peer, phase, layer)` stream
    /// (senders keep the last *sent* values, receivers the last *decoded*
    /// ones — identical for the lossless `delta`, the only codec that
    /// reads it).
    pub fn encode_block(
        self,
        phase: Phase,
        layer: Option<u16>,
        values: &[f32],
        prev: Option<&[f32]>,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(BLOCK_META_LEN + values.len() * 4);
        out.push(phase.code());
        out.push(u8::from(layer.is_some()));
        out.extend_from_slice(&layer.unwrap_or(0).to_le_bytes());
        out.extend_from_slice(&(values.len() as u32).to_le_bytes());
        match self {
            Codec::Raw => raw_encode(values, &mut out),
            Codec::F16 => {
                for &v in values {
                    out.extend_from_slice(&f32_to_f16_bits(v).to_le_bytes());
                }
            }
            Codec::Bf16 => {
                for &v in values {
                    out.extend_from_slice(&f32_to_bf16_bits(v).to_le_bytes());
                }
            }
            Codec::Int8 => int8_encode(values, &mut out),
            Codec::Delta => delta_encode(values, prev, &mut out),
        }
        out
    }

    /// Decodes a codec body (everything after the [`BlockMeta`] prefix)
    /// back into f32 values. `prev` is consulted only by `delta`.
    ///
    /// # Errors
    ///
    /// A diagnostic naming this codec on any structural mismatch —
    /// truncated or oversized bodies, unknown delta modes, or a delta
    /// frame arriving without its matching previous block.
    pub fn decode_body(
        self,
        meta: &BlockMeta,
        body: &[u8],
        prev: Option<&[f32]>,
    ) -> Result<Vec<f32>, String> {
        let n = meta.n;
        match self {
            Codec::Raw => {
                expect_len(self, body.len(), n * 4)?;
                Ok(raw_decode(body))
            }
            Codec::F16 => {
                expect_len(self, body.len(), n * 2)?;
                Ok(body
                    .chunks_exact(2)
                    .map(|c| f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]])))
                    .collect())
            }
            Codec::Bf16 => {
                expect_len(self, body.len(), n * 2)?;
                Ok(body
                    .chunks_exact(2)
                    .map(|c| bf16_bits_to_f32(u16::from_le_bytes([c[0], c[1]])))
                    .collect())
            }
            Codec::Int8 => int8_decode(n, body),
            Codec::Delta => delta_decode(n, body, prev),
        }
    }
}

/// The stream header opening every encoded block: the sender's phase and
/// layer scope (the delta stream key) plus the element count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Traffic phase the sender charged this block to.
    pub phase: Phase,
    /// Sender's layer scope, if any.
    pub layer: Option<u16>,
    /// Number of f32 values in the decoded block.
    pub n: usize,
}

/// Splits an encoded block into its [`BlockMeta`] and the codec body.
///
/// # Errors
///
/// A diagnostic on a truncated prefix, an unknown phase code, or an
/// implausible element count.
pub fn parse_meta(bytes: &[u8]) -> Result<(BlockMeta, &[u8]), String> {
    if bytes.len() < BLOCK_META_LEN {
        return Err(format!(
            "encoded block of {} bytes is shorter than the {BLOCK_META_LEN}-byte stream header",
            bytes.len()
        ));
    }
    let phase = Phase::from_code(bytes[0])
        .ok_or_else(|| format!("encoded block has unknown phase code {}", bytes[0]))?;
    let layer = (bytes[1] != 0).then(|| u16::from_le_bytes([bytes[2], bytes[3]]));
    let n = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
    if n as u64 * 4 > crate::wire::WIRE_MAX_PAYLOAD {
        return Err(format!(
            "encoded block claims implausible element count {n}"
        ));
    }
    Ok((BlockMeta { phase, layer, n }, &bytes[BLOCK_META_LEN..]))
}

fn expect_len(codec: Codec, got: usize, want: usize) -> Result<(), String> {
    if got == want {
        Ok(())
    } else {
        Err(format!(
            "{} body is {got} bytes, expected {want}",
            codec.name()
        ))
    }
}

fn raw_encode(values: &[f32], out: &mut Vec<u8>) {
    out.reserve(values.len() * 4);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn raw_decode(body: &[u8]) -> Vec<f32> {
    body.chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

// ----------------------------------------------------------------------
// binary16 / bfloat16 conversion (manual — the workspace is
// dependency-free by design)
// ----------------------------------------------------------------------

/// f32 → IEEE 754 binary16 bits, round-to-nearest-even. NaNs stay NaN
/// (payload truncated, quiet bit forced), overflow saturates to ±inf,
/// underflow flushes through binary16 subnormals to ±0.
pub fn f32_to_f16_bits(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // Inf or NaN: preserve NaN-ness explicitly (truncating the
        // mantissa could silently turn a NaN into an infinity).
        let quiet = if man != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | quiet | ((man >> 13) as u16 & 0x03ff);
    }
    let unbiased = exp - 127;
    if unbiased >= 16 {
        return sign | 0x7c00; // overflow → ±inf
    }
    if unbiased >= -14 {
        // Normal binary16: re-bias and round 23 → 10 mantissa bits.
        let h = (((unbiased + 15) as u32) << 10) | (man >> 13);
        let round_bits = man & 0x1fff;
        let carry = u32::from(round_bits > 0x1000 || (round_bits == 0x1000 && (h & 1) != 0));
        // A mantissa carry correctly rolls into the exponent (and into
        // ±inf at the top of the range).
        return sign | (h + carry) as u16;
    }
    if unbiased >= -25 {
        // binary16 subnormal: shift the implicit leading 1 into the
        // stored mantissa, still rounding half-to-even.
        let full = man | 0x0080_0000;
        let shift = (13 - 14 - unbiased) as u32; // 14..=24
        let h = full >> shift;
        let round_bits = full & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let carry = u32::from(round_bits > halfway || (round_bits == halfway && (h & 1) != 0));
        return sign | (h + carry) as u16;
    }
    sign // underflow → ±0
}

/// IEEE 754 binary16 bits → f32 (exact: every binary16 value is
/// representable in f32).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = u32::from(h >> 10) & 0x1f;
    let man = u32::from(h & 0x03ff);
    if exp == 0x1f {
        return f32::from_bits(sign | 0x7f80_0000 | (man << 13));
    }
    if exp == 0 {
        // Subnormal: value = man × 2⁻²⁴, exact in f32.
        let mag = man as f32 * f32::from_bits(103u32 << 23);
        return f32::from_bits(mag.to_bits() | sign);
    }
    f32::from_bits(sign | ((exp + 112) << 23) | (man << 13))
}

/// f32 → bfloat16 bits (the top 16 bits of the f32, round-to-nearest-
/// even). NaNs stay NaN, overflow saturates to ±inf.
pub fn f32_to_bf16_bits(v: f32) -> u16 {
    let bits = v.to_bits();
    if v.is_nan() {
        // Force a mantissa bit so truncation cannot yield an infinity.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let round = 0x7fff + ((bits >> 16) & 1);
    ((bits.wrapping_add(round)) >> 16) as u16
}

/// bfloat16 bits → f32 (exact).
pub fn bf16_bits_to_f32(b: u16) -> f32 {
    f32::from_bits(u32::from(b) << 16)
}

// ----------------------------------------------------------------------
// int8 symmetric per-block quantization
// ----------------------------------------------------------------------

fn int8_encode(values: &[f32], out: &mut Vec<u8>) {
    out.reserve(values.len() + 4 * values.len().div_ceil(INT8_BLOCK));
    for block in values.chunks(INT8_BLOCK) {
        let maxabs = block
            .iter()
            .filter(|v| v.is_finite())
            .fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if maxabs > 0.0 { maxabs / 127.0 } else { 0.0 };
        out.extend_from_slice(&scale.to_le_bytes());
        for &v in block {
            // Defined behavior for non-finite inputs: NaN quantizes to 0,
            // ±inf saturates to the endpoints.
            let q: i8 = if v.is_nan() || scale == 0.0 {
                0
            } else if v.is_infinite() {
                if v > 0.0 {
                    127
                } else {
                    -127
                }
            } else {
                (v / scale).round().clamp(-127.0, 127.0) as i8
            };
            out.push(q as u8);
        }
    }
}

fn int8_decode(n: usize, body: &[u8]) -> Result<Vec<f32>, String> {
    let blocks = n.div_ceil(INT8_BLOCK);
    expect_len(Codec::Int8, body.len(), n + 4 * blocks)?;
    let mut out = Vec::with_capacity(n);
    let mut pos = 0usize;
    let mut remaining = n;
    while remaining > 0 {
        let scale = f32::from_le_bytes([body[pos], body[pos + 1], body[pos + 2], body[pos + 3]]);
        pos += 4;
        let take = remaining.min(INT8_BLOCK);
        for &b in &body[pos..pos + take] {
            out.push((b as i8) as f32 * scale);
        }
        pos += take;
        remaining -= take;
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// delta: XOR against the previous block on the stream + zero-RLE
// ----------------------------------------------------------------------

/// Delta body modes: the first body byte.
const DELTA_RAW: u8 = 0;
const DELTA_XOR_RLE: u8 = 1;

/// RLE over the XOR bytes. Token `t`:
/// `0x00..=0x7f` — a literal run of `t + 1` bytes follows;
/// `0x80..=0xff` — a run of `t - 0x7f` zero bytes (nothing follows).
fn xor_rle_encode(prev: &[f32], cur: &[f32], out: &mut Vec<u8>) {
    let xor_byte = |i: usize| -> u8 {
        let p = prev[i / 4].to_le_bytes();
        let c = cur[i / 4].to_le_bytes();
        p[i % 4] ^ c[i % 4]
    };
    let total = cur.len() * 4;
    let mut i = 0usize;
    while i < total {
        if xor_byte(i) == 0 {
            let mut run = 1usize;
            while i + run < total && run < 128 && xor_byte(i + run) == 0 {
                run += 1;
            }
            out.push(0x7f + run as u8);
            i += run;
        } else {
            let start = i;
            let mut run = 1usize;
            while i + run < total && run < 128 && xor_byte(i + run) != 0 {
                run += 1;
            }
            out.push((run - 1) as u8);
            for k in 0..run {
                out.push(xor_byte(start + k));
            }
            i += run;
        }
    }
}

fn delta_encode(values: &[f32], prev: Option<&[f32]>, out: &mut Vec<u8>) {
    if let Some(p) = prev {
        if p.len() == values.len() && !values.is_empty() {
            let mut rle = Vec::with_capacity(values.len());
            xor_rle_encode(p, values, &mut rle);
            if rle.len() < values.len() * 4 {
                out.push(DELTA_XOR_RLE);
                out.extend_from_slice(&rle);
                return;
            }
        }
    }
    // No usable previous block (first epoch, or a stream whose shape
    // changed), or the delta did not compress: ship raw.
    out.push(DELTA_RAW);
    raw_encode(values, out);
}

fn delta_decode(n: usize, body: &[u8], prev: Option<&[f32]>) -> Result<Vec<f32>, String> {
    let Some((&mode, rest)) = body.split_first() else {
        return Err("delta body is empty (missing mode byte)".into());
    };
    match mode {
        DELTA_RAW => {
            expect_len(Codec::Delta, rest.len(), n * 4)?;
            Ok(raw_decode(rest))
        }
        DELTA_XOR_RLE => {
            let p = match prev {
                Some(p) if p.len() == n => p,
                _ => {
                    return Err(format!(
                        "delta frame for {n} values has no matching previous block \
                         (stream desynchronized)"
                    ))
                }
            };
            let total = n * 4;
            let mut xor = Vec::with_capacity(total);
            let mut i = 0usize;
            while i < rest.len() {
                let t = rest[i];
                i += 1;
                if t >= 0x80 {
                    let run = (t - 0x7f) as usize;
                    if xor.len() + run > total {
                        return Err("delta zero run overflows the block".into());
                    }
                    xor.resize(xor.len() + run, 0);
                } else {
                    let run = t as usize + 1;
                    if i + run > rest.len() {
                        return Err("delta literal run is truncated".into());
                    }
                    if xor.len() + run > total {
                        return Err("delta literal run overflows the block".into());
                    }
                    xor.extend_from_slice(&rest[i..i + run]);
                    i += run;
                }
            }
            if xor.len() != total {
                return Err(format!(
                    "delta body decodes to {} bytes, expected {total}",
                    xor.len()
                ));
            }
            let mut out = Vec::with_capacity(n);
            for (k, pv) in p.iter().enumerate() {
                let pb = pv.to_le_bytes();
                out.push(f32::from_le_bytes([
                    pb[0] ^ xor[4 * k],
                    pb[1] ^ xor[4 * k + 1],
                    pb[2] ^ xor[4 * k + 2],
                    pb[3] ^ xor[4 * k + 3],
                ]));
            }
            Ok(out)
        }
        other => Err(format!("unknown delta mode byte {other}")),
    }
}

/// `true` for phases whose data-plane traffic a codec may rewrite: the
/// three rotation-exchange phases. Collectives (parameter all-reduce,
/// loss reductions) and everything outside a phase scope stay raw.
pub fn phase_is_compressible(phase: Phase) -> bool {
    matches!(
        phase,
        Phase::ForwardFetch | Phase::BackwardRefetch | Phase::GradRouting
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random generator for the proptest-style
    /// sweeps (the workspace has no proptest dependency by design).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn f32(&mut self) -> f32 {
            // Mostly ordinary magnitudes, with occasional weird bit
            // patterns (NaN payloads, infinities, subnormals).
            match self.next() % 10 {
                0 => f32::from_bits(self.next() as u32), // arbitrary bits
                1 => f32::MIN_POSITIVE / (1 + self.next() % 1000) as f32, // subnormal
                _ => ((self.next() % 2_000_000) as f32 / 1000.0) - 1000.0,
            }
        }
        fn values(&mut self, n: usize) -> Vec<f32> {
            (0..n).map(|_| self.f32()).collect()
        }
    }

    /// Bitwise equality that treats NaN payload-insensitively: both NaN,
    /// or identical bits.
    fn same(a: f32, b: f32) -> bool {
        (a.is_nan() && b.is_nan()) || a.to_bits() == b.to_bits()
    }

    const RAGGED: [usize; 8] = [0, 1, 3, 63, 64, 65, 129, 1000];

    fn round_trip(codec: Codec, values: &[f32], prev: Option<&[f32]>) -> Vec<f32> {
        let enc = codec.encode_block(Phase::ForwardFetch, Some(2), values, prev);
        let (meta, body) = parse_meta(&enc).expect("meta");
        assert_eq!(meta.phase, Phase::ForwardFetch);
        assert_eq!(meta.layer, Some(2));
        assert_eq!(meta.n, values.len());
        codec.decode_body(&meta, body, prev).expect("decode")
    }

    #[test]
    fn raw_round_trips_exactly_including_weird_bits() {
        let mut rng = Rng(1);
        for n in RAGGED {
            let v = rng.values(n);
            let d = round_trip(Codec::Raw, &v, None);
            assert!(v.iter().zip(&d).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
        let specials = [
            f32::NAN,
            -f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            0.0,
            -0.0,
            f32::MIN_POSITIVE,
            f32::MIN_POSITIVE / 2.0,
            f32::from_bits(1), // smallest subnormal
        ];
        let d = round_trip(Codec::Raw, &specials, None);
        assert!(specials
            .iter()
            .zip(&d)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn delta_round_trips_exactly_with_and_without_prev() {
        let mut rng = Rng(2);
        for n in RAGGED {
            let v = rng.values(n);
            // First block on a stream: raw mode.
            let d0 = round_trip(Codec::Delta, &v, None);
            assert!(v.iter().zip(&d0).all(|(a, b)| a.to_bits() == b.to_bits()));
            // Second block: XOR-RLE against a similar previous block.
            let mut prev = v.clone();
            for (i, p) in prev.iter_mut().enumerate() {
                if i % 7 == 0 {
                    *p += 0.5;
                }
            }
            let d1 = round_trip(Codec::Delta, &v, Some(&prev));
            assert!(v.iter().zip(&d1).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn delta_compresses_identical_and_similar_epochs() {
        let v: Vec<f32> = (0..1024).map(|i| i as f32 * 0.25).collect();
        let identical = Codec::Delta.encode_block(Phase::ForwardFetch, None, &v, Some(&v));
        // All-zero XOR: ~8 bytes of RLE per KiB.
        assert!(identical.len() < BLOCK_META_LEN + 1 + 64);
        // A mismatched-length prev must fall back to raw, not corrupt.
        let short = vec![1.0f32; 3];
        let enc = Codec::Delta.encode_block(Phase::ForwardFetch, None, &v, Some(&short));
        assert_eq!(enc.len(), BLOCK_META_LEN + 1 + v.len() * 4);
    }

    #[test]
    fn delta_without_matching_prev_is_a_named_error() {
        let v = vec![1.0f32; 16];
        let enc = Codec::Delta.encode_block(Phase::GradRouting, None, &v, Some(&v));
        let (meta, body) = parse_meta(&enc).unwrap();
        let err = Codec::Delta.decode_body(&meta, body, None).unwrap_err();
        assert!(err.contains("delta"), "{err}");
        assert!(err.contains("previous block"), "{err}");
    }

    #[test]
    fn f16_and_bf16_are_idempotent_and_preserve_specials() {
        let mut rng = Rng(3);
        for codec in [Codec::F16, Codec::Bf16] {
            for n in RAGGED {
                let v = rng.values(n);
                let once = round_trip(codec, &v, None);
                let twice = round_trip(codec, &once, None);
                // Re-encoding already-quantized values is exact.
                assert!(
                    once.iter().zip(&twice).all(|(a, b)| same(*a, *b)),
                    "{} double round-trip drifted",
                    codec.name()
                );
            }
            let specials = round_trip(
                codec,
                &[f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 0.0, -0.0],
                None,
            );
            assert!(specials[0].is_nan());
            assert_eq!(specials[1], f32::INFINITY);
            assert_eq!(specials[2], f32::NEG_INFINITY);
            assert_eq!(specials[3].to_bits(), 0);
            assert_eq!(specials[4].to_bits(), (-0.0f32).to_bits());
        }
    }

    #[test]
    fn f16_matches_known_conversions() {
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff); // f16::MAX
        assert_eq!(f32_to_f16_bits(65536.0), 0x7c00); // overflow → inf
        assert_eq!(f32_to_f16_bits(5.96e-8), 0x0001); // smallest subnormal
        assert_eq!(f16_bits_to_f32(0x3c00), 1.0);
        assert_eq!(f16_bits_to_f32(0x0001), f32::from_bits(0x33800000));
        assert_eq!(f16_bits_to_f32(0x8001), -f32::from_bits(0x33800000));
        // Round-to-nearest-even at the halfway point: 1.0 + 2^-12 is
        // exactly between 0x3c00 and 0x3c01, so it rounds to the even one.
        let half_ulp = f32::from_bits(0x39800000); // 2^-12
        assert_eq!(f32_to_f16_bits(f16_bits_to_f32(0x3c00) + half_ulp), 0x3c00);
        // f16 subnormals survive the round trip exactly.
        for bits in [0x0001u16, 0x03ff, 0x8001, 0x83ff, 0x0400] {
            assert_eq!(f32_to_f16_bits(f16_bits_to_f32(bits)), bits);
        }
    }

    #[test]
    fn f16_error_is_bounded_for_normal_values() {
        let mut rng = Rng(4);
        for _ in 0..10_000 {
            let v = ((rng.next() % 2_000_000) as f32 / 1000.0) - 1000.0;
            let r = f16_bits_to_f32(f32_to_f16_bits(v));
            // binary16 has 11 significand bits: relative error ≤ 2⁻¹¹.
            assert!(
                (r - v).abs() <= v.abs() * (1.0 / 2048.0) + 1e-4,
                "{v} → {r}"
            );
        }
    }

    #[test]
    fn int8_error_is_bounded_by_half_a_step() {
        let mut rng = Rng(5);
        for n in [1usize, 63, 64, 65, 640] {
            let v: Vec<f32> = (0..n)
                .map(|_| ((rng.next() % 2_000_000) as f32 / 1000.0) - 1000.0)
                .collect();
            let d = round_trip(Codec::Int8, &v, None);
            for block in 0..n.div_ceil(INT8_BLOCK) {
                let lo = block * INT8_BLOCK;
                let hi = (lo + INT8_BLOCK).min(n);
                let maxabs = v[lo..hi].iter().fold(0.0f32, |m, &x| m.max(x.abs()));
                // |dequantized − original| ≤ scale/2 = maxabs/254 per block.
                let bound = maxabs / 254.0 * 1.001 + 1e-6;
                for i in lo..hi {
                    assert!((d[i] - v[i]).abs() <= bound, "block {block} idx {i}");
                }
            }
        }
    }

    #[test]
    fn int8_defines_nonfinite_and_zero_blocks() {
        let v = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 2.0, -1.0];
        let d = round_trip(Codec::Int8, &v, None);
        assert_eq!(d[0], 0.0); // NaN → 0
        assert!((d[1] - 2.0).abs() < 0.02); // +inf saturates to maxabs
        assert!((d[2] + 2.0).abs() < 0.02); // −inf saturates to −maxabs
        let zeros = round_trip(Codec::Int8, &[0.0; 70], None);
        assert!(zeros.iter().all(|&z| z == 0.0));
        // A block that is entirely non-finite has scale 0 and decodes to 0.
        let nf = round_trip(Codec::Int8, &[f32::NAN; 3], None);
        assert!(nf.iter().all(|&z| z == 0.0));
    }

    #[test]
    fn compression_ratios_are_as_documented() {
        let v: Vec<f32> = (0..4096).map(|i| (i as f32).sin()).collect();
        let raw = Codec::Raw
            .encode_block(Phase::ForwardFetch, None, &v, None)
            .len();
        let f16 = Codec::F16
            .encode_block(Phase::ForwardFetch, None, &v, None)
            .len();
        let int8 = Codec::Int8
            .encode_block(Phase::ForwardFetch, None, &v, None)
            .len();
        assert_eq!(raw - BLOCK_META_LEN, 4 * 4096);
        assert_eq!(f16 - BLOCK_META_LEN, 2 * 4096);
        assert_eq!(int8 - BLOCK_META_LEN, 4096 + 4 * (4096 / INT8_BLOCK));
    }

    #[test]
    fn corrupt_bodies_are_named_errors_not_panics() {
        let v = vec![1.0f32; 64];
        for codec in Codec::ALL {
            let enc = codec.encode_block(Phase::ForwardFetch, Some(1), &v, None);
            // Truncated body.
            let (meta, body) = parse_meta(&enc).unwrap();
            if !body.is_empty() {
                let err = codec
                    .decode_body(&meta, &body[..body.len() - 1], Some(&v))
                    .unwrap_err();
                assert!(err.contains(codec.name()) || codec == Codec::Delta, "{err}");
            }
            // Truncated meta.
            assert!(parse_meta(&enc[..BLOCK_META_LEN - 1]).is_err());
        }
        // Unknown phase code in the meta.
        let mut enc = Codec::Raw.encode_block(Phase::ForwardFetch, None, &v, None);
        enc[0] = 99;
        assert!(parse_meta(&enc).unwrap_err().contains("phase code"));
        // Unknown delta mode.
        let mut enc = Codec::Delta.encode_block(Phase::ForwardFetch, None, &v, None);
        enc[BLOCK_META_LEN] = 7;
        let (meta, body) = parse_meta(&enc).unwrap();
        assert!(Codec::Delta
            .decode_body(&meta, body, None)
            .unwrap_err()
            .contains("mode"));
    }

    #[test]
    fn codec_codes_and_names_round_trip() {
        for c in Codec::ALL {
            assert_eq!(Codec::from_code(c.code()), Some(c));
            assert_eq!(Codec::parse(c.name()), Some(c));
        }
        assert_eq!(Codec::from_code(250), None);
        assert_eq!(Codec::parse("zstd"), None);
        assert!(!Codec::Raw.is_lossy() && !Codec::Delta.is_lossy());
        assert!(Codec::F16.is_lossy() && Codec::Bf16.is_lossy() && Codec::Int8.is_lossy());
    }

    #[test]
    fn compressible_phases_are_the_three_exchange_phases() {
        assert!(phase_is_compressible(Phase::ForwardFetch));
        assert!(phase_is_compressible(Phase::BackwardRefetch));
        assert!(phase_is_compressible(Phase::GradRouting));
        assert!(!phase_is_compressible(Phase::Collective));
        assert!(!phase_is_compressible(Phase::Other));
    }
}
