//! The per-phase / per-layer observability ledger.
//!
//! SAR's cost story is told per *phase* of Algorithms 1 and 2: the
//! sequential forward fetch, the backward re-fetch (case 2 only — the
//! paper's 50% communication overhead), the error routing back to owners,
//! and the parameter/loss collectives. The [`PhaseLedger`] splits every
//! byte, message, communication microsecond, CPU microsecond and tensor-memory
//! high-water mark along those phases (and, when a layer scope is active,
//! along model layers), so a run can *verify* the paper's claims — e.g.
//! that GraphSage's backward pass fetches zero bytes, or that prefetching
//! raises the resident-block peak from 2/N to 3/N.

use std::collections::BTreeMap;

/// A phase of the distributed training loop, in the paper's terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Phase {
    /// Algorithm 1's sequential rotation fetch during the forward pass
    /// (plus the aggregation compute consuming each fetched block).
    ForwardFetch,
    /// Algorithm 2's re-fetch of remote features during the backward pass
    /// of attention-style layers (case 2) — the paper's 50% extra volume.
    BackwardRefetch,
    /// Routing error blocks back to the workers that own the features
    /// (`E_{p→q}` sends and the `E_p = Σ_q E_{q→p}` accumulation).
    GradRouting,
    /// Collectives: gradient all-reduce, loss/accuracy reductions,
    /// distributed batch-norm statistics. Classified automatically from
    /// the collective tag range.
    Collective,
    /// Anything not inside an explicit phase scope (dense layer compute,
    /// optimizer steps, evaluation).
    #[default]
    Other,
}

impl Phase {
    /// All phases, in ledger order.
    pub const ALL: [Phase; 5] = [
        Phase::ForwardFetch,
        Phase::BackwardRefetch,
        Phase::GradRouting,
        Phase::Collective,
        Phase::Other,
    ];

    /// Stable snake_case name, used as the JSON key in run reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::ForwardFetch => "forward_fetch",
            Phase::BackwardRefetch => "backward_refetch",
            Phase::GradRouting => "grad_routing",
            Phase::Collective => "collective",
            Phase::Other => "other",
        }
    }

    /// Stable numeric code, used by the binary codec that ships
    /// [`CommStats`](crate::CommStats) between worker processes.
    pub fn code(self) -> u8 {
        match self {
            Phase::ForwardFetch => 0,
            Phase::BackwardRefetch => 1,
            Phase::GradRouting => 2,
            Phase::Collective => 3,
            Phase::Other => 4,
        }
    }

    /// Inverse of [`Phase::code`].
    pub fn from_code(code: u8) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.code() == code)
    }
}

/// Accumulated measurements for one `(phase, layer)` cell of the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseEntry {
    /// Bytes sent while in this phase (self-sends included, mirroring
    /// [`CommStats::sent_bytes`](crate::CommStats::sent_bytes)).
    pub sent_bytes: u64,
    /// Bytes received from *remote* peers while in this phase.
    pub recv_bytes: u64,
    /// Bytes sent *as encoded for the wire* — frame header plus the
    /// codec-compressed payload. Equal to [`PhaseEntry::sent_bytes`]
    /// under the `raw` codec (and for self-sends, which never hit the
    /// network); smaller under any compressing codec. The logical
    /// counters above are the protocol-semantics ledger the parity
    /// digest pins; this pair is what actually crossed the network.
    pub wire_sent_bytes: u64,
    /// Bytes received from remote peers as encoded for the wire.
    pub wire_recv_bytes: u64,
    /// Messages sent.
    pub sent_messages: u64,
    /// Messages received from remote peers.
    pub recv_messages: u64,
    /// Communication time charged in this phase, µs: α–β simulated on a
    /// [`Clock::Simulated`](crate::Clock::Simulated) backend, measured
    /// wall-clock blocking time on a
    /// [`Clock::Wall`](crate::Clock::Wall) backend.
    pub comm_us: f64,
    /// Thread CPU time spent while this phase was active, µs (exclusive:
    /// a nested phase's time is charged to the nested phase only). Includes
    /// CPU burned by intra-worker pool helper threads
    /// (`sar_tensor::pool`), so with `--threads N` this can exceed
    /// [`PhaseEntry::wall_us`] — the ratio `cpu_us / wall_us` reads as the
    /// phase's parallel speedup.
    pub cpu_us: f64,
    /// Wall-clock time elapsed while this phase was active, µs (exclusive,
    /// like [`PhaseEntry::cpu_us`]). Unlike CPU time this includes time
    /// blocked on the network or on peers.
    pub wall_us: f64,
    /// Wall-clock time spent *parked* inside a blocking receive while this
    /// phase was active, µs — the slice of [`PhaseEntry::wall_us`] during
    /// which the worker had nothing to do but wait for the network. The
    /// ratio `blocked_us / wall_us` is the phase's un-overlapped fraction:
    /// a pipelined fetch that truly overlaps communication with
    /// aggregation drives it toward zero.
    pub blocked_us: f64,
    /// Highest live tensor bytes observed during any scope of this phase.
    pub peak_tensor_bytes: u64,
    /// Bytes written to the out-of-core disk tier while this phase was
    /// active (block evictions past `--mem-budget`). Zero unless tiering
    /// is enabled. Excluded from the parity digest: spill traffic is a
    /// memory-management artifact, not protocol semantics.
    pub spill_bytes: u64,
    /// Bytes faulted back from the disk tier while this phase was active.
    pub fault_bytes: u64,
    /// Wall-clock time spent blocked on disk-tier IO (spill writes and
    /// fault reads) while this phase was active, µs — the disk analogue
    /// of [`PhaseEntry::blocked_us`]. With depth-k prefetch hiding disk
    /// latency this stays near zero even under tight budgets.
    pub disk_blocked_us: f64,
}

impl PhaseEntry {
    /// Folds `other` into `self`: counters add, the peak takes the max.
    pub fn absorb(&mut self, other: &PhaseEntry) {
        self.sent_bytes += other.sent_bytes;
        self.recv_bytes += other.recv_bytes;
        self.wire_sent_bytes += other.wire_sent_bytes;
        self.wire_recv_bytes += other.wire_recv_bytes;
        self.sent_messages += other.sent_messages;
        self.recv_messages += other.recv_messages;
        self.comm_us += other.comm_us;
        self.cpu_us += other.cpu_us;
        self.wall_us += other.wall_us;
        self.blocked_us += other.blocked_us;
        self.peak_tensor_bytes = self.peak_tensor_bytes.max(other.peak_tensor_bytes);
        self.spill_bytes += other.spill_bytes;
        self.fault_bytes += other.fault_bytes;
        self.disk_blocked_us += other.disk_blocked_us;
    }
}

/// Per-phase, per-layer ledger of one worker's communication, compute and
/// memory. Lives inside [`CommStats`](crate::CommStats), so it travels
/// with the existing statistics plumbing to
/// [`WorkerOutcome`](crate::WorkerOutcome) untouched.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseLedger {
    entries: BTreeMap<(Phase, Option<u16>), PhaseEntry>,
}

impl PhaseLedger {
    /// The mutable cell for `(phase, layer)`, created zeroed on first use.
    pub fn entry_mut(&mut self, phase: Phase, layer: Option<u16>) -> &mut PhaseEntry {
        self.entries.entry((phase, layer)).or_default()
    }

    /// A copy of the `(phase, layer)` cell (zeros if never touched).
    pub fn get(&self, phase: Phase, layer: Option<u16>) -> PhaseEntry {
        self.entries
            .get(&(phase, layer))
            .copied()
            .unwrap_or_default()
    }

    /// The phase's totals across all layers (peaks take the max).
    pub fn phase_total(&self, phase: Phase) -> PhaseEntry {
        let mut total = PhaseEntry::default();
        for ((p, _), e) in &self.entries {
            if *p == phase {
                total.absorb(e);
            }
        }
        total
    }

    /// Iterates every populated `(phase, layer)` cell in ledger order.
    pub fn rows(&self) -> impl Iterator<Item = (Phase, Option<u16>, &PhaseEntry)> {
        self.entries.iter().map(|(&(p, l), e)| (p, l, e))
    }

    /// Number of populated cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no cell has been touched.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_accumulate_and_total() {
        let mut ledger = PhaseLedger::default();
        ledger.entry_mut(Phase::ForwardFetch, Some(0)).sent_bytes += 100;
        ledger.entry_mut(Phase::ForwardFetch, Some(1)).sent_bytes += 50;
        ledger
            .entry_mut(Phase::ForwardFetch, Some(0))
            .peak_tensor_bytes = 7;
        ledger
            .entry_mut(Phase::ForwardFetch, Some(1))
            .peak_tensor_bytes = 9;
        ledger.entry_mut(Phase::GradRouting, None).recv_bytes += 30;

        let total = ledger.phase_total(Phase::ForwardFetch);
        assert_eq!(total.sent_bytes, 150);
        assert_eq!(total.peak_tensor_bytes, 9); // max, not sum
        assert_eq!(ledger.phase_total(Phase::GradRouting).recv_bytes, 30);
        assert_eq!(
            ledger.phase_total(Phase::BackwardRefetch),
            PhaseEntry::default()
        );
        assert_eq!(ledger.len(), 3);
    }

    #[test]
    fn untouched_cells_read_as_zero() {
        let ledger = PhaseLedger::default();
        assert!(ledger.is_empty());
        assert_eq!(ledger.get(Phase::Collective, None), PhaseEntry::default());
    }

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "forward_fetch",
                "backward_refetch",
                "grad_routing",
                "collective",
                "other"
            ]
        );
    }
}
