//! Collective operations over the simulated cluster.
//!
//! All collectives are SPMD: every worker must call the same collectives
//! in the same order (tags are allocated from a per-worker sequence
//! counter that must stay in lockstep). This mirrors torch.distributed's
//! contract.

use crate::ctx::WorkerCtx;
use crate::message::Payload;

impl WorkerCtx {
    /// Sum-all-reduce of an `f32` buffer in place, using a bandwidth-optimal
    /// ring (reduce-scatter followed by all-gather), the same algorithm
    /// family OneCCL uses for large tensors.
    ///
    /// After the call every worker holds the elementwise sum across all
    /// workers.
    ///
    /// # Panics
    ///
    /// Panics if buffers have different lengths on different workers (the
    /// ring exchanges then misalign and panic on shape checks).
    pub fn all_reduce_sum(&self, data: &mut [f32]) {
        let n = self.world_size();
        if n == 1 {
            return;
        }
        let tag = self.next_coll_tag();
        let len = data.len();
        let right = (self.rank() + 1) % n;
        let left = (self.rank() + n - 1) % n;
        let chunk = |c: usize| -> std::ops::Range<usize> {
            let c = c % n;
            (c * len / n)..((c + 1) * len / n)
        };

        // Reduce-scatter: after n-1 steps, chunk (rank+1)%n is complete here.
        for step in 0..n - 1 {
            let send_c = chunk(self.rank() + n - step);
            self.send(right, tag, Payload::F32(data[send_c].to_vec()));
            let recv_c = chunk(self.rank() + n - step - 1);
            let incoming = self.recv(left, tag).into_f32();
            if incoming.len() != recv_c.len() {
                panic!(
                    "worker {}: ring chunk misalignment from rank {left}: got {} f32s, \
                     expected {} (peers passed different buffer lengths?)",
                    self.rank(),
                    incoming.len(),
                    recv_c.len()
                );
            }
            for (d, v) in data[recv_c].iter_mut().zip(incoming) {
                *d += v;
            }
        }
        // All-gather: circulate completed chunks.
        for step in 0..n - 1 {
            let send_c = chunk(self.rank() + 1 + n - step);
            self.send(right, tag + (1 << 32), Payload::F32(data[send_c].to_vec()));
            let recv_c = chunk(self.rank() + n - step);
            let incoming = self.recv(left, tag + (1 << 32)).into_f32();
            if incoming.len() != recv_c.len() {
                panic!(
                    "worker {}: ring chunk misalignment from rank {left}: got {} f32s, \
                     expected {} (peers passed different buffer lengths?)",
                    self.rank(),
                    incoming.len(),
                    recv_c.len()
                );
            }
            data[recv_c].copy_from_slice(&incoming);
        }
    }

    /// Sum-all-reduce of one scalar.
    pub fn all_reduce_sum_scalar(&self, x: f32) -> f32 {
        let mut buf = [x];
        self.all_reduce_sum(&mut buf);
        buf[0]
    }

    /// Max-all-reduce of one scalar.
    pub fn all_reduce_max_scalar(&self, x: f32) -> f32 {
        let gathered = self.all_gather_f32(&[x]);
        gathered
            .iter()
            .map(|v| v[0])
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Gathers each worker's buffer to every worker. Buffers may have
    /// different lengths; the result is indexed by rank.
    pub fn all_gather_f32(&self, data: &[f32]) -> Vec<Vec<f32>> {
        let n = self.world_size();
        let tag = self.next_coll_tag();
        for dst in 0..n {
            if dst != self.rank() {
                self.send(dst, tag, Payload::F32(data.to_vec()));
            }
        }
        (0..n)
            .map(|src| {
                if src == self.rank() {
                    data.to_vec()
                } else {
                    self.recv(src, tag).into_f32()
                }
            })
            .collect()
    }

    /// Gathers each worker's `u32` buffer to every worker.
    pub fn all_gather_u32(&self, data: &[u32]) -> Vec<Vec<u32>> {
        let n = self.world_size();
        let tag = self.next_coll_tag();
        for dst in 0..n {
            if dst != self.rank() {
                self.send(dst, tag, Payload::U32(data.to_vec()));
            }
        }
        (0..n)
            .map(|src| {
                if src == self.rank() {
                    data.to_vec()
                } else {
                    self.recv(src, tag).into_u32()
                }
            })
            .collect()
    }

    /// Broadcasts `root`'s buffer to all workers (overwriting theirs).
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths differ between root and receivers.
    pub fn broadcast_f32(&self, root: usize, data: &mut [f32]) {
        let n = self.world_size();
        if n == 1 {
            return;
        }
        let tag = self.next_coll_tag();
        if self.rank() == root {
            for dst in 0..n {
                if dst != root {
                    self.send(dst, tag, Payload::F32(data.to_vec()));
                }
            }
        } else {
            let incoming = self.recv(root, tag).into_f32();
            if incoming.len() != data.len() {
                panic!(
                    "worker {}: broadcast from root {root} carried {} f32s, \
                     expected {}",
                    self.rank(),
                    incoming.len(),
                    data.len()
                );
            }
            data.copy_from_slice(&incoming);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Cluster, CostModel};

    #[test]
    fn all_reduce_sum_vectors() {
        for n in [1, 2, 3, 4, 7] {
            let out = Cluster::new(n, CostModel::default()).run(move |ctx| {
                let mut data: Vec<f32> = (0..10).map(|i| (ctx.rank() * 10 + i) as f32).collect();
                ctx.all_reduce_sum(&mut data);
                data
            });
            // Expected: elementwise sum over ranks.
            let expect: Vec<f32> = (0..10)
                .map(|i| (0..n).map(|r| (r * 10 + i) as f32).sum())
                .collect();
            for o in out {
                assert_eq!(o.result, expect, "world size {n}");
            }
        }
    }

    #[test]
    fn all_reduce_handles_short_buffers() {
        // len < world: some ring chunks are empty.
        let out = Cluster::new(5, CostModel::default()).run(|ctx| {
            let mut data = vec![ctx.rank() as f32 + 1.0];
            ctx.all_reduce_sum(&mut data);
            data[0]
        });
        for o in out {
            assert_eq!(o.result, 15.0);
        }
    }

    #[test]
    fn all_gather_collects_by_rank() {
        let out = Cluster::new(3, CostModel::default())
            .run(|ctx| ctx.all_gather_f32(&vec![ctx.rank() as f32; ctx.rank() + 1]));
        for o in out {
            assert_eq!(o.result[0], vec![0.0]);
            assert_eq!(o.result[1], vec![1.0, 1.0]);
            assert_eq!(o.result[2], vec![2.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn broadcast_overwrites() {
        let out = Cluster::new(4, CostModel::default()).run(|ctx| {
            let mut data = vec![ctx.rank() as f32; 3];
            ctx.broadcast_f32(2, &mut data);
            data
        });
        for o in out {
            assert_eq!(o.result, vec![2.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn max_scalar() {
        let out = Cluster::new(4, CostModel::default())
            .run(|ctx| ctx.all_reduce_max_scalar(-(ctx.rank() as f32)));
        for o in out {
            assert_eq!(o.result, 0.0);
        }
    }

    #[test]
    fn collectives_interleave_with_p2p() {
        use crate::Payload;
        let out = Cluster::new(2, CostModel::default()).run(|ctx| {
            // Fire a p2p message first, run a collective, then receive —
            // the tag matcher must keep them apart.
            let peer = 1 - ctx.rank();
            ctx.send(peer, 7, Payload::F32(vec![ctx.rank() as f32]));
            let s = ctx.all_reduce_sum_scalar(1.0);
            let p = ctx.recv(peer, 7).into_f32();
            (s, p[0])
        });
        assert_eq!(out[0].result, (2.0, 1.0));
        assert_eq!(out[1].result, (2.0, 0.0));
    }
}
