//! Per-thread CPU time, used to measure a worker's *compute* seconds.
//!
//! Simulated workers are threads, typically oversubscribed relative to
//! physical cores (the paper had a full 36-core machine per worker). Wall
//! clocks would attribute scheduler delays and peers' work to the wrong
//! worker; the thread CPU clock counts exactly the cycles this worker
//! spent computing, and blocking `recv`s (which park the thread) are free
//! — matching the paper's model where communication is accounted
//! separately.

/// CPU time consumed by the calling thread, in seconds.
///
/// Uses `CLOCK_THREAD_CPUTIME_ID`; falls back to a process-wide monotonic
/// clock on platforms without it (never on Linux).
pub fn thread_cpu_secs() -> f64 {
    #[cfg(target_os = "linux")]
    {
        let mut ts = libc::timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: `ts` is a valid, initialized timespec on this frame and
        // `clock_gettime` writes only into it; CLOCK_THREAD_CPUTIME_ID is
        // always available on Linux, and the return code is checked.
        let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if rc == 0 {
            return ts.tv_sec as f64 + ts.tv_nsec as f64 / 1e9;
        }
    }
    // Fallback: monotonic wall clock (coarse but portable).
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// Measures the calling thread's CPU seconds spent in `f`.
pub fn measure_cpu<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = thread_cpu_secs();
    let out = f();
    (out, thread_cpu_secs() - start)
}

/// A lightweight scoped CPU timer: captures the thread CPU clock at
/// construction and reports the elapsed CPU seconds on demand. The
/// building block of the phase scopes in
/// [`WorkerCtx::phase_scope`](crate::WorkerCtx::phase_scope); also usable
/// standalone when a region's timing should not go through the ledger.
///
/// # Example
///
/// ```
/// use sar_comm::time::CpuTimer;
///
/// let timer = CpuTimer::start();
/// let _work: u64 = (0..1000u64).sum();
/// assert!(timer.elapsed_secs() >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CpuTimer {
    start: f64,
}

impl CpuTimer {
    /// Starts a timer on the calling thread's CPU clock.
    pub fn start() -> CpuTimer {
        CpuTimer {
            start: thread_cpu_secs(),
        }
    }

    /// CPU seconds this thread has spent since [`CpuTimer::start`].
    pub fn elapsed_secs(&self) -> f64 {
        thread_cpu_secs() - self.start
    }

    /// [`CpuTimer::elapsed_secs`] in microseconds, the ledger's unit.
    pub fn elapsed_us(&self) -> f64 {
        self.elapsed_secs() * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_advances_with_work() {
        let (_, secs) = measure_cpu(|| {
            let mut acc = 0u64;
            for i in 0..20_000_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(secs > 0.0, "cpu time should advance: {secs}");
    }

    #[test]
    fn sleeping_is_nearly_free() {
        let (_, secs) = measure_cpu(|| {
            std::thread::sleep(std::time::Duration::from_millis(100));
        });
        assert!(secs < 0.05, "sleep should not consume CPU time: {secs}");
    }

    #[test]
    fn monotone() {
        let a = thread_cpu_secs();
        let b = thread_cpu_secs();
        assert!(b >= a);
    }

    #[test]
    fn cpu_timer_advances_with_work() {
        let timer = CpuTimer::start();
        let mut acc = 0u64;
        for i in 0..10_000_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        assert!(acc != 1); // keep the loop alive
        assert!(timer.elapsed_secs() > 0.0);
        assert!(timer.elapsed_us() >= timer.elapsed_secs());
    }
}
