#![warn(missing_docs)]

//! Simulated distributed runtime — the torch.distributed / OneCCL
//! substitute for the SAR reproduction.
//!
//! The paper runs on a Xeon cluster connected by 200 Gb/s InfiniBand. Here
//! a [`Cluster`] runs `N` *worker threads* inside one process, connected by
//! unbounded channels. This preserves everything the paper measures:
//!
//! * **Memory** is real: each worker thread's tensor allocations are
//!   tracked by `sar-tensor`'s thread-local accountant, so per-worker peak
//!   memory is a direct measurement.
//! * **Communication time** is simulated: every message is charged to the
//!   receiving worker under an α–β [`CostModel`] (per-message latency +
//!   bytes / bandwidth), and every byte is recorded in a traffic matrix.
//!   Benchmarks report `epoch time = max over workers (measured compute +
//!   simulated communication)`, which reproduces the paper's
//!   communication-bound regimes (e.g. GAT+SAR at 128 workers) without
//!   real network hardware.
//!
//! # Example
//!
//! ```
//! use sar_comm::{Cluster, CostModel};
//!
//! let outcomes = Cluster::new(4, CostModel::default()).run(|ctx| {
//!     let total = ctx.all_reduce_sum_scalar(ctx.rank() as f32);
//!     total as u32
//! });
//! assert!(outcomes.iter().all(|o| o.result == 6)); // 0+1+2+3
//! ```

mod cluster;
mod collectives;
mod ctx;
mod message;
mod net;
mod phase;
pub mod time;

pub use cluster::{Cluster, WorkerOutcome};
pub use ctx::{LayerScope, PhaseScope, WorkerCtx};
pub use message::Payload;
pub use net::{CommStats, CostModel};
pub use phase::{Phase, PhaseEntry, PhaseLedger};
pub use time::{measure_cpu, thread_cpu_secs, CpuTimer};
