#![warn(missing_docs)]

//! Distributed runtime — the torch.distributed / OneCCL substitute for
//! the SAR reproduction.
//!
//! The paper runs on a Xeon cluster connected by 200 Gb/s InfiniBand.
//! Here the training algorithms talk to a pluggable [`Transport`] with
//! two backends:
//!
//! * **In-process channels** ([`ChannelTransport`], driven by
//!   [`Cluster`]): `N` worker threads inside one process, connected by
//!   unbounded channels. Memory is real (each worker thread's tensor
//!   allocations are tracked by `sar-tensor`'s thread-local accountant)
//!   and communication *time* is simulated: every message is charged to
//!   the receiving worker under an α–β [`CostModel`] (per-message
//!   latency plus bytes / bandwidth). Benchmarks report `epoch time =
//!   max over workers (measured compute + simulated communication)`,
//!   which reproduces the paper's communication-bound regimes (e.g.
//!   GAT+SAR at 128 workers) without real network hardware.
//! * **TCP** ([`TcpTransport`]): one OS process per rank exchanging
//!   length-prefixed, checksummed frames over per-peer sockets, with a
//!   rank-0 rendezvous that distributes the roster of (ephemeral) listen
//!   addresses. Communication time is *measured* wall-clock blocking time.
//!
//! Byte and message ledgers are identical across backends — both account
//! traffic in [`Payload::wire_len`] units (payload + frame header) — so a
//! TCP run can be validated byte-for-byte against a simulated one.
//!
//! # Example
//!
//! ```
//! use sar_comm::{Cluster, CostModel};
//!
//! let outcomes = Cluster::new(4, CostModel::default()).run(|ctx| {
//!     let total = ctx.all_reduce_sum_scalar(ctx.rank() as f32);
//!     total as u32
//! });
//! assert!(outcomes.iter().all(|o| o.result == 6)); // 0+1+2+3
//! ```

pub mod buffer;
mod cluster;
pub mod codec;
mod collectives;
mod ctx;
mod message;
mod net;
mod phase;
pub mod tcp;
pub mod time;
mod transport;
pub mod wire;

pub use cluster::{Cluster, WorkerOutcome};
pub use codec::Codec;
pub use ctx::{LayerScope, PhaseScope, WorkerCtx};
pub use message::{Message, Payload};
pub use net::{CommStats, CostModel};
pub use phase::{Phase, PhaseEntry, PhaseLedger};
pub use tcp::{TcpOpts, TcpTransport};
pub use time::{measure_cpu, thread_cpu_secs, CpuTimer};
pub use transport::{ChannelTransport, Clock, Transport, TransportError};
pub use wire::{WIRE_HEADER_LEN, WIRE_MAGIC};
