//! Error-reporting contract tests: a dead or corrupt cluster must be
//! debuggable from a single worker's log line, so every surfaced error
//! names the peer rank involved and (for integrity failures) the byte
//! sizes that disagreed — on both the channel and the TCP backend.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use sar_comm::tcp::run_tcp_threads;
use sar_comm::wire::{encode_frame, read_frame, FrameKind, WIRE_MAX_PAYLOAD};
use sar_comm::{
    Cluster, CostModel, Payload, TcpOpts, TcpTransport, Transport, TransportError, WorkerCtx,
};

/// The Display contract: `Corrupt` must name the peer rank and pass the
/// decoder's byte-size diagnostic through verbatim.
#[test]
fn corrupt_display_names_peer_rank_and_byte_sizes() {
    let e = TransportError::Corrupt {
        peer: 3,
        detail: "gradient block carried 12 f32s (48 bytes), expected 16 (64 bytes)".into(),
    };
    let msg = e.to_string();
    assert!(msg.contains("rank 3"), "must name the peer rank: {msg}");
    assert!(
        msg.contains("48 bytes") && msg.contains("64 bytes"),
        "must carry both byte sizes: {msg}"
    );
}

/// Channel backend: a receive that times out panics with a message naming
/// the waiting worker, the peer it waited on, and the tag.
#[test]
#[should_panic(expected = "worker 0 waiting on (src=1, tag=99)")]
fn channel_recv_timeout_names_worker_peer_and_tag() {
    let _ = Cluster::new(2, CostModel::default())
        .recv_timeout(Duration::from_millis(100))
        .run(|ctx| {
            if ctx.rank() == 0 {
                // Wait for a message nobody sends.
                let _ = ctx.recv(1, 99);
            }
        });
}

/// TCP backend: the same receive-timeout report, through a `WorkerCtx`
/// running over real sockets.
#[test]
#[should_panic(expected = "worker 0 waiting on (src=1, tag=7)")]
fn tcp_recv_timeout_names_worker_peer_and_tag() {
    let _ = run_tcp_threads(2, TcpOpts::default(), |t| {
        let ctx = WorkerCtx::new(
            Box::new(t),
            CostModel::default(),
            Duration::from_millis(200),
        );
        if ctx.rank() == 0 {
            // Rank 1 exits immediately; nothing ever arrives under tag 7.
            let _ = ctx.recv(1, 7);
        }
    });
}

/// Completes the rendezvous + mesh handshake as a fake rank 1, then runs
/// `frame_bytes` through the returned closure and writes the result to
/// rank 0's data socket.
fn evil_rank_1(
    rdv_addr: std::net::SocketAddr,
    make_frame: impl FnOnce() -> Vec<u8> + Send + 'static,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let my_addr = listener.local_addr().unwrap().to_string().into_bytes();
        let mut s = TcpStream::connect(rdv_addr).unwrap();
        // Hello: rank, codec (raw), address length, address.
        let mut hello = Vec::new();
        hello.extend_from_slice(&1u32.to_le_bytes());
        hello.push(0u8);
        hello.extend_from_slice(&(my_addr.len() as u32).to_le_bytes());
        hello.extend_from_slice(&my_addr);
        s.write_all(&hello).unwrap();
        // Roster: count, then per-entry length-prefixed addresses.
        let mut count = [0u8; 4];
        s.read_exact(&mut count).unwrap();
        for _ in 0..u32::from_le_bytes(count) {
            let mut len = [0u8; 4];
            s.read_exact(&mut len).unwrap();
            let mut addr = vec![0u8; u32::from_le_bytes(len) as usize];
            s.read_exact(&mut addr).unwrap();
        }
        // Rank 0 dials us (lower ranks dial higher) and says hello.
        let (mut data, _) = listener.accept().unwrap();
        let hello = read_frame(&mut data).unwrap();
        assert_eq!(hello.src, 0);
        data.write_all(&make_frame()).unwrap();
        data.flush().unwrap();
        // Hold the socket open so EOF cannot race the bad frame.
        std::thread::sleep(Duration::from_millis(300));
    })
}

/// TCP backend: a frame whose header claims an impossible payload length
/// surfaces `Corrupt` naming the peer rank, the claimed size, and the
/// frame limit — both byte sizes, straight from the decoder.
#[test]
fn tcp_oversized_frame_names_peer_rank_and_byte_sizes() {
    let rendezvous = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let rdv_addr = rendezvous.local_addr().unwrap();
    let evil = evil_rank_1(rdv_addr, || {
        let mut frame = encode_frame(FrameKind::Data, 1, 9, &Payload::Empty);
        // Overwrite the length field (bytes 20..28) with limit + 1.
        frame[20..28].copy_from_slice(&(WIRE_MAX_PAYLOAD + 1).to_le_bytes());
        frame
    });
    let t = TcpTransport::host(rendezvous, 2, TcpOpts::default()).unwrap();
    match t.recv_any(Duration::from_secs(5)) {
        Err(e @ TransportError::Corrupt { peer: 1, .. }) => {
            let msg = e.to_string();
            assert!(msg.contains("rank 1"), "must name the peer rank: {msg}");
            assert!(
                msg.contains(&(WIRE_MAX_PAYLOAD + 1).to_string())
                    && msg.contains(&WIRE_MAX_PAYLOAD.to_string()),
                "must name the claimed size and the frame limit: {msg}"
            );
        }
        other => panic!("expected a corrupt-frame rejection, got {other:?}"),
    }
    evil.join().unwrap();
}

/// TCP backend: a bit-flipped payload surfaces `Corrupt` naming the peer
/// rank and both checksums (sent vs computed).
#[test]
fn tcp_checksum_mismatch_names_peer_rank_and_checksums() {
    let rendezvous = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let rdv_addr = rendezvous.local_addr().unwrap();
    let evil = evil_rank_1(rdv_addr, || {
        let mut frame = encode_frame(FrameKind::Data, 1, 9, &Payload::F32(vec![1.0, 2.0]));
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        frame
    });
    let t = TcpTransport::host(rendezvous, 2, TcpOpts::default()).unwrap();
    match t.recv_any(Duration::from_secs(5)) {
        Err(e @ TransportError::Corrupt { peer: 1, .. }) => {
            let msg = e.to_string();
            assert!(msg.contains("rank 1"), "must name the peer rank: {msg}");
            assert!(
                msg.contains("checksum") && msg.contains("0x"),
                "must show the disagreeing checksums: {msg}"
            );
        }
        other => panic!("expected a checksum rejection, got {other:?}"),
    }
    evil.join().unwrap();
}
