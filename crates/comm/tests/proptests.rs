//! Property-based tests of the collectives: the ring all-reduce must
//! equal an elementwise sum for arbitrary buffer lengths and world sizes,
//! and traffic accounting must balance.

use proptest::prelude::*;
use sar_comm::{Cluster, CostModel, Payload, WIRE_HEADER_LEN};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ring_all_reduce_equals_sum(world in 1usize..7, len in 0usize..40, seed in 0u64..1000) {
        let out = Cluster::new(world, CostModel::default()).run(move |ctx| {
            // Deterministic pseudo-random local buffer per rank.
            let mut data: Vec<f32> = (0..len)
                .map(|i| ((seed + ctx.rank() as u64 * 31 + i as u64 * 7) % 97) as f32)
                .collect();
            ctx.all_reduce_sum(&mut data);
            data
        });
        let expect: Vec<f32> = (0..len)
            .map(|i| {
                (0..world)
                    .map(|r| ((seed + r as u64 * 31 + i as u64 * 7) % 97) as f32)
                    .sum()
            })
            .collect();
        for o in out {
            prop_assert_eq!(&o.result, &expect);
        }
    }

    #[test]
    fn broadcast_agrees_for_any_root(world in 1usize..6, root in 0usize..6, len in 1usize..20) {
        let root = root % world;
        let out = Cluster::new(world, CostModel::default()).run(move |ctx| {
            let mut data = vec![ctx.rank() as f32; len];
            ctx.broadcast_f32(root, &mut data);
            data
        });
        for o in out {
            prop_assert!(o.result.iter().all(|&v| v == root as f32));
        }
    }

    #[test]
    fn sent_and_received_bytes_balance(world in 2usize..6, len in 1usize..50) {
        let out = Cluster::new(world, CostModel::default()).run(move |ctx| {
            // Everyone sends `len` floats to everyone else and receives
            // the same amount back.
            let tag = 5;
            for dst in 0..ctx.world_size() {
                if dst != ctx.rank() {
                    ctx.send(dst, tag, Payload::F32(vec![1.0; len]));
                }
            }
            for src in 0..ctx.world_size() {
                if src != ctx.rank() {
                    let _ = ctx.recv(src, tag);
                }
            }
        });
        let total_sent: u64 = out.iter().map(|o| o.comm.total_sent()).sum();
        let total_recv: u64 = out.iter().map(|o| o.comm.recv_bytes).sum();
        prop_assert_eq!(total_sent, total_recv);
        // Each message carries `len` floats plus the framed-wire header.
        prop_assert_eq!(
            total_sent as usize,
            world * (world - 1) * (len * 4 + WIRE_HEADER_LEN)
        );
    }

    #[test]
    fn all_gather_round_trips_rank_data(world in 1usize..6, len in 0usize..20) {
        let out = Cluster::new(world, CostModel::default()).run(move |ctx| {
            ctx.all_gather_f32(&vec![ctx.rank() as f32; len])
        });
        for o in out {
            for (r, buf) in o.result.iter().enumerate() {
                prop_assert_eq!(buf.len(), len);
                prop_assert!(buf.iter().all(|&v| v == r as f32));
            }
        }
    }
}
