//! Training-protocol selection: exact SAR vs approximate exchanges.
//!
//! The paper's central claim is *exactness* — SAR computes bitwise the
//! same full-batch gradients as single-machine training. The approximate
//! protocols here deliberately give that up to trade accuracy for wire
//! volume, reproducing the two families the paper compares against in
//! related work:
//!
//! * [`Protocol::GradOnly`] — Grappa/parallel-SGD style: no remote
//!   feature exchange at all. Every worker aggregates over its local
//!   partition block only, and error routing stays local too; the sole
//!   cross-worker traffic is the (exact) parameter-gradient all-reduce.
//! * [`Protocol::Stale`] — DistGNN-style staleness: remote feature
//!   blocks are fetched on *refresh* epochs (every `r`-th epoch) and
//!   cached; in-between epochs consume the cached, stale blocks without
//!   any fetch-phase traffic. Gradient routing remains exact every
//!   epoch, so parameters still see every worker's error signal.
//!
//! Both protocols skip communication *uniformly across ranks* — every
//! worker drops the same sends and the same receives of the rotation
//! schedule — which is what keeps them deadlock-free: no rank ever waits
//! on a message its peer's protocol decided not to send. Evaluation
//! after training always runs [`Protocol::Exact`].

use std::num::NonZeroUsize;

/// Which exchange protocol training runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Protocol {
    /// The paper's exact SAR protocol: full rotation fetch + exact error
    /// routing every epoch. Bitwise identical to single-machine training.
    #[default]
    Exact,
    /// Local-subgraph training: no feature fetch, no error routing; only
    /// parameter gradients cross the network (exact all-reduce).
    GradOnly,
    /// Periodic refresh: fetch remote features every `r`-th epoch and
    /// reuse the cached blocks in between. `Stale(1)` refreshes every
    /// epoch and is bitwise identical to [`Protocol::Exact`].
    Stale(NonZeroUsize),
}

impl Protocol {
    /// Parses `exact`, `gradonly`, or `stale:<r>` (with `r ≥ 1`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted spellings when `s` is not
    /// one of them.
    pub fn parse(s: &str) -> Result<Protocol, String> {
        match s {
            "exact" => Ok(Protocol::Exact),
            "gradonly" => Ok(Protocol::GradOnly),
            _ => {
                if let Some(r) = s.strip_prefix("stale:") {
                    let r: usize = r
                        .parse()
                        .map_err(|_| format!("bad staleness period {r:?} in {s:?}"))?;
                    return NonZeroUsize::new(r)
                        .map(Protocol::Stale)
                        .ok_or_else(|| "staleness period must be ≥ 1".to_string());
                }
                Err(format!(
                    "unknown protocol {s:?}: expected exact, gradonly, or stale:<r>"
                ))
            }
        }
    }

    /// Stable textual name (`exact`, `gradonly`, `stale:<r>`) — the same
    /// spelling [`Protocol::parse`] accepts.
    pub fn name(&self) -> String {
        match self {
            Protocol::Exact => "exact".to_string(),
            Protocol::GradOnly => "gradonly".to_string(),
            Protocol::Stale(r) => format!("stale:{r}"),
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_name() {
        for p in [
            Protocol::Exact,
            Protocol::GradOnly,
            Protocol::Stale(NonZeroUsize::new(4).unwrap()),
        ] {
            assert_eq!(Protocol::parse(&p.name()), Ok(p));
        }
    }

    #[test]
    fn parse_rejects_bad_spellings() {
        for bad in ["", "Exact", "stale", "stale:", "stale:0", "stale:x", "lazy"] {
            let err = Protocol::parse(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad:?} must produce a diagnostic");
        }
    }

    #[test]
    fn display_matches_name() {
        let p = Protocol::parse("stale:7").unwrap();
        assert_eq!(p.to_string(), "stale:7");
    }
}
