//! SAR beyond GNNs: spatially-parallel 1-D convolution.
//!
//! The paper's conclusion argues the SAR idea "is generally applicable to
//! any domain-parallel training situation, where the input is partitioned
//! across multiple workers, and each worker's output depends on parts of
//! the inputs to other workers", citing spatially-parallel CNNs (Dryden
//! et al. 2019; Jin et al. 2018). This module demonstrates that claim with
//! the machinery already built for graphs:
//!
//! a length-`L` 1-D domain (sequence, scan-line) is partitioned into
//! contiguous strips; a convolution with kernel radius `r` needs an
//! `r`-element halo from each spatial neighbor. Each kernel offset `k` is
//! expressed as a *shift graph* (node `i` has a single in-edge from
//! `i + k`), so the convolution is `Σ_k (A_k h) W_k` — a sum of SAR
//! sum-aggregations, each with its own weight. The sequential fetch,
//! rematerializing backward (case 1: shifts are linear), and memory
//! guarantees all carry over unchanged.

use std::rc::Rc;
use std::sync::Arc;

use rand::Rng;
use sar_graph::CsrGraph;
use sar_nn::Linear;
use sar_partition::Partitioning;
use sar_tensor::Var;

use crate::seq_agg::sage_aggregate;
use crate::worker::Worker;
use crate::DistGraph;

/// The shift graph for offset `k` over a length-`len` domain:
/// `out[i] = x[i + k]` (zero at the boundary).
///
/// # Panics
///
/// Panics if `len == 0` or `|k| >= len`.
pub fn shift_graph(len: usize, k: isize) -> CsrGraph {
    assert!(len > 0, "domain must be non-empty");
    assert!((k.unsigned_abs()) < len, "shift exceeds domain length");
    let edges: Vec<(u32, u32)> = (0..len as isize)
        .filter_map(|i| {
            let src = i + k;
            (src >= 0 && src < len as isize).then_some((src as u32, i as u32))
        })
        .collect();
    CsrGraph::from_edges(len, &edges)
}

/// Builds the per-worker [`DistGraph`]s for every kernel offset of a
/// radius-`r` convolution over a contiguously partitioned 1-D domain.
///
/// Returns one `Vec<Arc<DistGraph>>` per offset `k ∈ [-r, r]`, each of
/// length `world` (indexed by rank).
///
/// # Panics
///
/// Panics if the partitioning does not cover `len` elements.
pub fn build_conv1d_graphs(
    len: usize,
    radius: usize,
    partitioning: &Partitioning,
) -> Vec<Vec<Arc<DistGraph>>> {
    assert_eq!(
        partitioning.assignment().len(),
        len,
        "partitioning mismatch"
    );
    (-(radius as isize)..=radius as isize)
        .map(|k| {
            DistGraph::build_all(&shift_graph(len, k), partitioning)
                .into_iter()
                .map(Arc::new)
                .collect()
        })
        .collect()
}

/// A distributed 1-D convolution layer: `out[i] = Σ_k x[i+k] W_k (+ b)`,
/// with each offset's gather running through SAR's sequential aggregation.
#[derive(Debug)]
pub struct DistConv1d {
    taps: Vec<Linear>, // one per offset, index 0 ↔ k = -radius
    radius: usize,
}

impl DistConv1d {
    /// Creates a radius-`radius` convolution mapping `in_dim → out_dim`
    /// channels (kernel size `2·radius + 1`). Only the center tap carries
    /// a bias.
    pub fn new(in_dim: usize, out_dim: usize, radius: usize, rng: &mut impl Rng) -> Self {
        let taps = (0..2 * radius + 1)
            .map(|t| Linear::new(in_dim, out_dim, t == radius, rng))
            .collect();
        DistConv1d { taps, radius }
    }

    /// Kernel radius.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Trainable parameters (per-tap weights + center bias).
    pub fn params(&self) -> Vec<Var> {
        self.taps.iter().flat_map(Linear::params).collect()
    }

    /// Applies the convolution to this worker's strip.
    ///
    /// `workers[t]` must be this rank's [`Worker`] over the offset-`t`
    /// shift graph from [`build_conv1d_graphs`]; build one per offset with
    /// [`Worker::with_shared_ctx`] so all taps share this thread's
    /// communication context while using disjoint tag spaces.
    ///
    /// # Panics
    ///
    /// Panics if `workers` does not have one entry per kernel tap or `x`
    /// has the wrong shape.
    pub fn forward(&self, workers: &[Rc<Worker>], x: &Var) -> Var {
        assert_eq!(
            workers.len(),
            self.taps.len(),
            "need one worker (offset graph) per kernel tap"
        );
        let mut acc: Option<Var> = None;
        for (w, tap) in workers.iter().zip(&self.taps) {
            // z = x W_k, then SAR-aggregate over the shift graph (each
            // node has in-degree ≤ 1, so the sum aggregation IS the shift).
            let z = tap.forward(x);
            let shifted = sage_aggregate(w, &z);
            acc = Some(match acc {
                Some(a) => a.add(&shifted),
                None => shifted,
            });
        }
        acc.expect("at least one tap")
    }
}
