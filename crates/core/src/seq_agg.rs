//! Sequential Aggregation and Rematerialization — Algorithms 1 and 2.
//!
//! Each function here executes the message-passing + aggregation part of a
//! GNN layer *outside* the autograd tape (Algorithm 1: raw kernels over
//! one fetched partition block at a time, freed immediately), and records
//! a custom [`Function`] whose backward routes errors to the owning
//! workers (Algorithm 2):
//!
//! * [`sage_aggregate`] — **case 1**: `dAgg/dz` does not depend on `z`, so
//!   the backward pass sends error blocks directly without re-fetching any
//!   remote features. SAR adds no communication over domain-parallel
//!   training.
//! * [`gat_aggregate`] — **case 2**: the attention coefficients depend on
//!   `z`, so the backward pass *re-fetches* the remote features (the 50%
//!   communication overhead the paper describes), re-computes the
//!   coefficients with the saved online-softmax statistics, and routes
//!   gradients back. With `FakMode::Fused`, coefficients are produced on
//!   the fly (fused kernels, §3.3); with `FakMode::TwoStep`, each block's
//!   coefficients are materialized and re-read (the plain-SAR baseline of
//!   Figs. 4 and 6).

use std::rc::Rc;

use sar_comm::Phase;
use sar_graph::fused::{
    attn_grad_dot, gat_fused_block_backward, gat_fused_block_backward_indexed,
    gat_fused_block_forward, gat_fused_block_forward_indexed, gat_twostep_block_backward,
    gat_twostep_block_backward_indexed, gat_twostep_block_forward,
    gat_twostep_block_forward_indexed, OnlineAttnState,
};
use sar_graph::ops;
use sar_tensor::{Function, Tensor, Var};

use crate::worker::{FetchedBlock, Worker};

// ----------------------------------------------------------------------
// Case 1: GraphSage (linear aggregation, no refetch)
// ----------------------------------------------------------------------

struct SageAggFn {
    parents: Vec<Var>, // [z]
    w: Rc<Worker>,
    // Layer this aggregation was recorded under, restored in backward so
    // error routing is ledgered against the right layer.
    layer: Option<u16>,
}

impl Function for SageAggFn {
    fn parents(&self) -> &[Var] {
        &self.parents
    }

    fn name(&self) -> &'static str {
        "sar_sage_aggregate"
    }

    fn backward(&self, grad_output: &Tensor, _output: &Tensor) -> Vec<Option<Tensor>> {
        // Case 1: the error for partition q's features is a linear map of
        // the output error — computed and shipped without refetching z.
        let w = &self.w;
        let _layer = w.ctx.layer_scope_opt(self.layer);
        let grad_z = w.exchange_grads(grad_output.cols(), |q| {
            ops::spmm_sum_backward(w.graph.block(q), grad_output)
        });
        vec![Some(grad_z)]
    }
}

/// SAR sum-aggregation for GraphSage-style layers (case 1).
///
/// Forward: Algorithm 1 — fetches each partition's projected features
/// `Z_{q→p}` one at a time, accumulates `Σ_q A_{p,q} Z_{q→p}` into a local
/// accumulator with raw kernels (no tape), and frees each block before the
/// next. Backward: Algorithm 2, case 1 — no refetch.
///
/// `z` must be this worker's `[n_local, F]` projected features. Returns
/// the *sum* aggregation; divide by the global in-degree for Eq. 2's mean.
///
/// # Panics
///
/// Panics if `z` has the wrong number of rows.
pub fn sage_aggregate(w: &Rc<Worker>, z: &Var) -> Var {
    let cols = z.value().cols();
    let mut acc = Tensor::zeros(&[w.graph.num_local(), cols]);
    {
        let _phase = w.ctx.phase_scope(Phase::ForwardFetch);
        // Round 0 aggregates straight out of the resident features through
        // the row table (fused gather+aggregate); remote blocks aggregate
        // from the wire buffer. Both paths are bitwise identical to
        // gather-then-aggregate.
        w.fetch_rounds(&z.value(), |q, fetched| match fetched {
            FetchedBlock::Local { data, rows } => {
                ops::spmm_sum_into_indexed(w.graph.block(q), data, rows, &mut acc);
            }
            FetchedBlock::Remote(block) => {
                ops::spmm_sum_into(w.graph.block(q), block, &mut acc);
            }
        });
    }
    Var::from_function(
        acc,
        SageAggFn {
            parents: vec![z.clone()],
            w: Rc::clone(w),
            layer: w.ctx.current_layer(),
        },
    )
}

// ----------------------------------------------------------------------
// Case 2: GAT (attention aggregation, refetch + recompute)
// ----------------------------------------------------------------------

/// Which attention kernel the sequential aggregation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FakMode {
    /// Fused attention kernels (§3.3): coefficients computed on the fly,
    /// never materialized — "SAR+FAK" in the paper's figures.
    Fused,
    /// DGL-style two-step kernels: each block's `[E_block, H]`
    /// coefficients are written to memory and read back — "SAR" (plain)
    /// in the paper's figures.
    TwoStep,
}

struct GatAggFn {
    parents: Vec<Var>, // [z, s_dst, a_src]
    w: Rc<Worker>,
    heads: usize,
    slope: f32,
    mode: FakMode,
    layer: Option<u16>,
    // Saved online-softmax statistics ([n_local, H] each) — the only
    // state SAR keeps to re-materialize attention in the backward pass.
    // With `--mem-budget` they live in the worker's disk tier between the
    // forward and backward passes instead of RAM.
    saved: std::cell::RefCell<RematInputs>,
}

/// Where a [`GatAggFn`]'s saved softmax statistics live between forward
/// and backward.
enum RematInputs {
    /// Held in RAM (tier disabled).
    Ram { max: Tensor, den: Tensor },
    /// Held by the worker's disk tier under remat-input ids; spilled past
    /// the budget, faulted back (bitwise identical) at backward time.
    Tiered { max_id: u64, den_id: u64 },
    /// Consumed by a backward pass.
    Taken,
}

impl GatAggFn {
    /// Takes the saved statistics, faulting from the disk tier if they
    /// were spilled. Panics if the backward pass runs twice.
    fn take_saved(&self) -> (Tensor, Tensor) {
        match self.saved.replace(RematInputs::Taken) {
            RematInputs::Ram { max, den } => (max, den),
            RematInputs::Tiered { max_id, den_id } => (
                self.w.tier_take(max_id, "remat softmax max"),
                self.w.tier_take(den_id, "remat softmax denominator"),
            ),
            RematInputs::Taken => panic!(
                "worker {}: GAT aggregation backward ran twice",
                self.w.rank()
            ),
        }
    }
}

impl Drop for GatAggFn {
    fn drop(&mut self) {
        // A recorded-but-never-run backward (e.g. an evaluation forward
        // taped under grad mode) must not leak its tier blocks.
        if let RematInputs::Tiered { max_id, den_id } = *self.saved.borrow() {
            self.w.tier_discard(max_id);
            self.w.tier_discard(den_id);
        }
    }
}

impl Function for GatAggFn {
    fn parents(&self) -> &[Var] {
        &self.parents
    }

    fn name(&self) -> &'static str {
        "sar_gat_aggregate"
    }

    fn backward(&self, grad_output: &Tensor, output: &Tensor) -> Vec<Option<Tensor>> {
        let w = &self.w;
        let _layer = w.ctx.layer_scope_opt(self.layer);
        let (z, s_dst, a_src) = (&self.parents[0], &self.parents[1], &self.parents[2]);
        let heads = self.heads;
        let hd = z.value().cols();
        let grad_dot = attn_grad_dot(grad_output, output, heads);
        let mut d_s_dst = Tensor::zeros(&[w.graph.num_local(), heads]);
        let mut d_a_src = Tensor::zeros(&[hd]);
        let grad_tag = w.next_tag();
        // Saved softmax statistics first: faulting them back (if they
        // spilled to the disk tier) is part of re-materializing the
        // attention, so ledger the disk traffic as BackwardRefetch.
        let (max, den) = {
            let _refetch = w.ctx.phase_scope(Phase::BackwardRefetch);
            self.take_saved()
        };

        // Case 2: re-fetch every partition's features (the rematerialized
        // pieces of the computational graph), push gradients per block,
        // free the block, move on. The rotation fetch is ledgered as
        // BackwardRefetch — the paper's 50% extra communication — while
        // the per-block gradient sends nest under GradRouting.
        let a_src_val = a_src.value_clone();
        {
            let _refetch = w.ctx.phase_scope(Phase::BackwardRefetch);
            let s_dst_ref = s_dst.value();
            let z_ref = z.value();
            // The local round re-materializes nothing: logits, attention
            // gradients, and the s_src fold-back all read the resident
            // features through the row table (fused gather+aggregate).
            // Gradient outputs are block-shaped either way, so the
            // routing below is identical for both paths.
            w.fetch_rounds(&z_ref, |q, z_block| {
                let block = w.graph.block(q);
                let (grads, dz_from_s, da) = match z_block {
                    FetchedBlock::Local { data, rows } => {
                        let s_src_block = ops::head_project_indexed(data, rows, &a_src_val, heads);
                        let grads = match self.mode {
                            FakMode::Fused => gat_fused_block_backward_indexed(
                                block,
                                &s_dst_ref,
                                &s_src_block,
                                data,
                                rows,
                                self.slope,
                                &max,
                                &den,
                                grad_output,
                                &grad_dot,
                                &mut d_s_dst,
                            ),
                            FakMode::TwoStep => gat_twostep_block_backward_indexed(
                                block,
                                &s_dst_ref,
                                &s_src_block,
                                data,
                                rows,
                                self.slope,
                                &max,
                                &den,
                                grad_output,
                                &grad_dot,
                                &mut d_s_dst,
                            ),
                        };
                        // Fold the s_src path back into z and a_src:
                        // s_src = head_project(z, a_src).
                        let (dz_from_s, da) = ops::head_project_backward_indexed(
                            data,
                            rows,
                            &a_src_val,
                            heads,
                            &grads.d_s_src,
                        );
                        (grads, dz_from_s, da)
                    }
                    FetchedBlock::Remote(z_block) => {
                        let s_src_block = ops::head_project(z_block, &a_src_val, heads);
                        let grads = match self.mode {
                            FakMode::Fused => gat_fused_block_backward(
                                block,
                                &s_dst_ref,
                                &s_src_block,
                                z_block,
                                self.slope,
                                &max,
                                &den,
                                grad_output,
                                &grad_dot,
                                &mut d_s_dst,
                            ),
                            FakMode::TwoStep => gat_twostep_block_backward(
                                block,
                                &s_dst_ref,
                                &s_src_block,
                                z_block,
                                self.slope,
                                &max,
                                &den,
                                grad_output,
                                &grad_dot,
                                &mut d_s_dst,
                            ),
                        };
                        let (dz_from_s, da) =
                            ops::head_project_backward(z_block, &a_src_val, heads, &grads.d_s_src);
                        (grads, dz_from_s, da)
                    }
                };
                d_a_src.add_assign(&da);
                let mut d_z_block = grads.d_x_src;
                d_z_block.add_assign(&dz_from_s);
                let _route = w.ctx.phase_scope(Phase::GradRouting);
                if q == w.rank() {
                    // Local contribution: scattered below via a loop-back
                    // send so all blocks take the same path.
                    w.ctx.send(
                        w.rank(),
                        grad_tag,
                        sar_comm::Payload::F32(d_z_block.into_data()),
                    );
                } else {
                    w.ctx
                        .send(q, grad_tag, sar_comm::Payload::F32(d_z_block.into_data()));
                }
            });
        }

        // Accumulate the error blocks routed to this worker (E_p = Σ_q
        // E_{q→p} in Algorithm 2). The partner list is the full rotation
        // under the exact and stale protocols, and collapses to this rank
        // under gradonly — matching the sends above, which only fire for
        // the blocks the refetch actually consumed.
        let mut grad_z = Tensor::zeros(&[w.graph.num_local(), hd]);
        {
            let _route = w.ctx.phase_scope(Phase::GradRouting);
            for q in w.grad_route_partners() {
                let rows = w.graph.serves_to(q);
                let data = w.ctx.recv(q, grad_tag).into_f32();
                assert_eq!(data.len(), rows.len() * hd, "grad block size mismatch");
                let block = Tensor::from_vec(&[rows.len(), hd], data);
                grad_z.scatter_add_rows(rows, &block);
            }
        }

        // "Sum θ^l.grad across all machines" (Algorithm 2): the attention
        // parameter gradient needs contributions from every worker's
        // destination edges.
        let mut buf = d_a_src.into_data();
        w.ctx.all_reduce_sum(&mut buf);
        let d_a_src = Tensor::from_vec(&[hd], buf);

        vec![Some(grad_z), Some(d_s_dst), Some(d_a_src)]
    }
}

/// SAR attention-aggregation for GAT layers (case 2).
///
/// * `z` — this worker's projected features `[n_local, H*D]`.
/// * `s_dst` — destination attention logits `[n_local, H]` (on the tape;
///   its gradient flows back through `head_project`).
/// * `a_src` — the source attention vector `[H*D]`; source logits for
///   *fetched* features are recomputed from it on the fly, so only `z`
///   rows ever cross the network.
///
/// Forward: Algorithm 1 with the incremental stable softmax of §3.4 —
/// per-block online-softmax accumulation with running-max renormalization.
/// Backward: Algorithm 2, case 2 — refetch, recompute, route.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn gat_aggregate(
    w: &Rc<Worker>,
    z: &Var,
    s_dst: &Var,
    a_src: &Var,
    heads: usize,
    slope: f32,
    mode: FakMode,
) -> Var {
    let hd = z.value().cols();
    assert_eq!(hd % heads, 0, "feature width not divisible by heads");
    let head_dim = hd / heads;
    let a_src_val = a_src.value_clone();
    let mut state = OnlineAttnState::new(w.graph.num_local(), heads, head_dim);
    {
        let _phase = w.ctx.phase_scope(Phase::ForwardFetch);
        let s_dst_ref = s_dst.value();
        // Round 0 computes source logits and aggregates straight out of
        // the resident features through the row table (fused
        // gather+aggregate); remote blocks use the materialized wire
        // buffer. Both paths are bitwise identical.
        w.fetch_rounds(&z.value(), |q, z_block| {
            let block = w.graph.block(q);
            match z_block {
                FetchedBlock::Local { data, rows } => {
                    let s_src_block = ops::head_project_indexed(data, rows, &a_src_val, heads);
                    match mode {
                        FakMode::Fused => gat_fused_block_forward_indexed(
                            block,
                            &s_dst_ref,
                            &s_src_block,
                            data,
                            rows,
                            slope,
                            &mut state,
                        ),
                        FakMode::TwoStep => gat_twostep_block_forward_indexed(
                            block,
                            &s_dst_ref,
                            &s_src_block,
                            data,
                            rows,
                            slope,
                            &mut state,
                        ),
                    }
                }
                FetchedBlock::Remote(z_block) => {
                    let s_src_block = ops::head_project(z_block, &a_src_val, heads);
                    match mode {
                        FakMode::Fused => gat_fused_block_forward(
                            block,
                            &s_dst_ref,
                            &s_src_block,
                            z_block,
                            slope,
                            &mut state,
                        ),
                        FakMode::TwoStep => gat_twostep_block_forward(
                            block,
                            &s_dst_ref,
                            &s_src_block,
                            z_block,
                            slope,
                            &mut state,
                        ),
                    }
                }
            }
        });
    }
    let (value, max, den) = state.finalize_into();
    // Under a memory budget the saved statistics go to the disk tier so
    // they can spill between forward and backward. Only worth recording
    // when a backward will actually run: with grad disabled,
    // `Var::from_function` drops the Function (and its RAM copy) anyway.
    let saved = if sar_tensor::grad_enabled() && w.tier_enabled() {
        let max_id = w.next_remat_id();
        let den_id = w.next_remat_id();
        w.tier_put(max_id, max, "remat softmax max");
        w.tier_put(den_id, den, "remat softmax denominator");
        RematInputs::Tiered { max_id, den_id }
    } else {
        RematInputs::Ram { max, den }
    };
    Var::from_function(
        value,
        GatAggFn {
            parents: vec![z.clone(), s_dst.clone(), a_src.clone()],
            w: Rc::clone(w),
            heads,
            slope,
            mode,
            layer: w.ctx.current_layer(),
            saved: std::cell::RefCell::new(saved),
        },
    )
}
