//! Distributed full-graph inference with a trained (checkpointed) model.
//!
//! Runs the forward pass only, under any execution [`Mode`](crate::Mode);
//! with SAR modes the per-worker memory bound holds exactly as in
//! training, so inference over a graph that doesn't fit one machine works
//! the same way. This is the "exact full-batch baseline" use-case the
//! paper's conclusion advertises.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sar_comm::{Cluster, CostModel};
use sar_graph::Dataset;
use sar_partition::Partitioning;
use sar_tensor::{no_grad, Tensor, Var};

use crate::model::{DistModel, ModelConfig};
use crate::shard::Shard;
use crate::worker::Worker;
use crate::DistGraph;

/// Runs distributed full-graph inference and returns the `[n, C]` logits.
///
/// * `params` — trained parameter values in
///   [`DistModel::params`] order, e.g. a
///   [`RunReport::final_params`](crate::RunReport) or a loaded checkpoint.
/// * `label_aug` — must match training: when `true`, all training nodes'
///   labels are fed as input features (the paper's inference-time
///   augmentation).
///
/// # Panics
///
/// Panics if the parameter list does not match the model configuration or
/// the partitioning does not cover the dataset.
pub fn infer(
    dataset: &Dataset,
    partitioning: &Partitioning,
    cost: CostModel,
    model_cfg: &ModelConfig,
    params: &[(Vec<usize>, Vec<f32>)],
    label_aug: bool,
) -> Tensor {
    let world = partitioning.num_parts();
    let graphs: Arc<Vec<Arc<DistGraph>>> = Arc::new(
        DistGraph::build_all(&dataset.graph, partitioning)
            .into_iter()
            .map(Arc::new)
            .collect(),
    );
    let shards = Arc::new(Shard::build_all(dataset, partitioning));
    let mut cfg = model_cfg.clone();
    cfg.in_dim = dataset.feat_dim() + if label_aug { dataset.num_classes } else { 0 };
    let cfg = Arc::new(cfg);
    let params = Arc::new(params.to_vec());
    let n = dataset.num_nodes();
    let c = dataset.num_classes;

    let outcomes = Cluster::new(world, cost).run(move |ctx| {
        let rank = ctx.rank();
        let shard = &shards[rank];
        let w = Worker::new(ctx, Arc::clone(&graphs[rank]));
        let model = DistModel::new(&cfg);
        let model_params = model.params();
        assert_eq!(
            model_params.len(),
            params.len(),
            "checkpoint does not match the model configuration"
        );
        for (p, (shape, data)) in model_params.iter().zip(params.iter()) {
            assert_eq!(&p.shape(), shape, "parameter shape mismatch");
            p.set_value(Tensor::from_vec(shape, data.clone()));
        }

        // Inference-time augmentation: every training node sees its label.
        let feats = shard.features_tensor();
        let input = if label_aug {
            let mut aug = Tensor::zeros(&[shard.num_local(), shard.num_classes]);
            for i in 0..shard.num_local() {
                if shard.train_mask[i] {
                    aug.row_mut(i)[shard.labels[i] as usize] = 1.0;
                }
            }
            Tensor::hstack(&[&feats, &aug])
        } else {
            feats
        };
        let mut rng = StdRng::seed_from_u64(0); // dropout is off in eval
        let logits = no_grad(|| model.forward(&w, &Var::constant(input), false, &mut rng));
        (shard.global_ids.clone(), logits.value_clone().into_data())
    });

    let mut logits = Tensor::zeros(&[n, c]);
    for o in &outcomes {
        let (ids, data) = &o.result;
        logits.scatter_add_rows(ids, &Tensor::from_vec(&[ids.len(), c], data.clone()));
    }
    logits
}
