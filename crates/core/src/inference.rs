//! Distributed full-graph inference with a trained (checkpointed) model.
//!
//! Runs the forward pass only, under any execution [`Mode`](crate::Mode);
//! with SAR modes the per-worker memory bound holds exactly as in
//! training, so inference over a graph that doesn't fit one machine works
//! the same way. This is the "exact full-batch baseline" use-case the
//! paper's conclusion advertises.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sar_comm::{Cluster, CostModel};
use sar_graph::Dataset;
use sar_partition::Partitioning;
use sar_tensor::{no_grad, Tensor, Var};

use crate::model::{DistModel, ModelConfig};
use crate::shard::Shard;
use crate::worker::Worker;
use crate::DistGraph;

/// Why a checkpoint + configuration pair cannot be run.
///
/// A resident server loads checkpoints over its lifetime, so a bad one
/// must surface as a value the caller can report and survive — not a
/// panic that takes the whole rotation down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferError {
    /// The checkpoint's parameter count does not match the model built
    /// from the configuration.
    ParamCount {
        /// Parameters the configured model declares.
        expected: usize,
        /// Parameters the checkpoint carries.
        got: usize,
    },
    /// Parameter `index` has the wrong shape for the configured model.
    ParamShape {
        /// Position in [`DistModel::params`] order.
        index: usize,
        /// Shape the configured model declares.
        expected: Vec<usize>,
        /// Shape the checkpoint carries.
        got: Vec<usize>,
    },
    /// The partitioning does not cover the dataset's node set.
    PartitionCoverage {
        /// Nodes in the dataset.
        nodes: usize,
        /// Nodes the partitioning assigns.
        assigned: usize,
    },
}

impl std::fmt::Display for InferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferError::ParamCount { expected, got } => write!(
                f,
                "checkpoint does not match the model configuration: \
                 model has {expected} parameters, checkpoint has {got}"
            ),
            InferError::ParamShape {
                index,
                expected,
                got,
            } => write!(
                f,
                "parameter {index}: checkpoint shape {got:?} != model shape {expected:?}"
            ),
            InferError::PartitionCoverage { nodes, assigned } => write!(
                f,
                "partitioning does not cover the dataset: \
                 {assigned} nodes assigned, dataset has {nodes}"
            ),
        }
    }
}

impl std::error::Error for InferError {}

/// Validates a raw parameter list against the model a configuration
/// builds: count first, then per-parameter shapes in
/// [`DistModel::params`] order.
///
/// Shared by [`try_infer`] and the serving tier, so every path that
/// installs checkpoint values performs the same checks *before* touching
/// any resident state.
///
/// # Errors
///
/// [`InferError::ParamCount`] or [`InferError::ParamShape`] naming the
/// first mismatching parameter.
pub fn validate_params(
    model_cfg: &ModelConfig,
    params: &[(Vec<usize>, Vec<f32>)],
) -> Result<(), InferError> {
    let model = DistModel::new(model_cfg);
    let model_params = model.params();
    if model_params.len() != params.len() {
        return Err(InferError::ParamCount {
            expected: model_params.len(),
            got: params.len(),
        });
    }
    for (i, (p, (shape, _))) in model_params.iter().zip(params.iter()).enumerate() {
        if &p.shape() != shape {
            return Err(InferError::ParamShape {
                index: i,
                expected: p.shape(),
                got: shape.clone(),
            });
        }
    }
    Ok(())
}

/// Fallible [`infer`]: validates the checkpoint against the model
/// configuration and the partitioning against the dataset *before*
/// spinning up the cluster, so a bad checkpoint comes back as a typed
/// error instead of a worker panic.
///
/// # Errors
///
/// [`InferError`] naming the first mismatch found.
pub fn try_infer(
    dataset: &Dataset,
    partitioning: &Partitioning,
    cost: CostModel,
    model_cfg: &ModelConfig,
    params: &[(Vec<usize>, Vec<f32>)],
    label_aug: bool,
) -> Result<Tensor, InferError> {
    if partitioning.assignment().len() != dataset.num_nodes() {
        return Err(InferError::PartitionCoverage {
            nodes: dataset.num_nodes(),
            assigned: partitioning.assignment().len(),
        });
    }
    let mut cfg = model_cfg.clone();
    cfg.in_dim = dataset.feat_dim() + if label_aug { dataset.num_classes } else { 0 };
    validate_params(&cfg, params)?;

    let world = partitioning.num_parts();
    let graphs: Arc<Vec<Arc<DistGraph>>> = Arc::new(
        DistGraph::build_all(&dataset.graph, partitioning)
            .into_iter()
            .map(Arc::new)
            .collect(),
    );
    let shards = Arc::new(Shard::build_all(dataset, partitioning));
    let cfg = Arc::new(cfg);
    let params = Arc::new(params.to_vec());
    let n = dataset.num_nodes();
    let c = dataset.num_classes;

    let outcomes = Cluster::new(world, cost).run(move |ctx| {
        let rank = ctx.rank();
        let shard = &shards[rank];
        let w = Worker::new(ctx, Arc::clone(&graphs[rank]));
        let model = DistModel::new(&cfg);
        // Count and shapes were validated above, before any worker ran.
        for (p, (shape, data)) in model.params().iter().zip(params.iter()) {
            p.set_value(Tensor::from_vec(shape, data.clone()));
        }

        // Inference-time augmentation: every training node sees its label.
        let feats = shard.features_tensor();
        let input = if label_aug {
            let mut aug = Tensor::zeros(&[shard.num_local(), shard.num_classes]);
            for i in 0..shard.num_local() {
                if shard.train_mask[i] {
                    aug.row_mut(i)[shard.labels[i] as usize] = 1.0;
                }
            }
            Tensor::hstack(&[&feats, &aug])
        } else {
            feats
        };
        let mut rng = StdRng::seed_from_u64(0); // dropout is off in eval
        let logits = no_grad(|| model.forward(&w, &Var::constant(input), false, &mut rng));
        (shard.global_ids.clone(), logits.value_clone().into_data())
    });

    let mut logits = Tensor::zeros(&[n, c]);
    for o in &outcomes {
        let (ids, data) = &o.result;
        logits.scatter_add_rows(ids, &Tensor::from_vec(&[ids.len(), c], data.clone()));
    }
    Ok(logits)
}

/// Runs distributed full-graph inference and returns the `[n, C]` logits.
///
/// * `params` — trained parameter values in
///   [`DistModel::params`] order, e.g. a
///   [`RunReport::final_params`](crate::RunReport) or a loaded checkpoint.
/// * `label_aug` — must match training: when `true`, all training nodes'
///   labels are fed as input features (the paper's inference-time
///   augmentation).
///
/// # Panics
///
/// Panics if the parameter list does not match the model configuration or
/// the partitioning does not cover the dataset. Long-lived callers use
/// [`try_infer`], which reports the same conditions as an [`InferError`].
pub fn infer(
    dataset: &Dataset,
    partitioning: &Partitioning,
    cost: CostModel,
    model_cfg: &ModelConfig,
    params: &[(Vec<usize>, Vec<f32>)],
    label_aug: bool,
) -> Tensor {
    try_infer(dataset, partitioning, cost, model_cfg, params, label_aug)
        .unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Arch, Mode};
    use sar_graph::datasets;
    use sar_partition::random;

    fn cfg() -> ModelConfig {
        ModelConfig {
            arch: Arch::GraphSage { hidden: 8 },
            mode: Mode::Sar,
            layers: 2,
            in_dim: 0, // set from the dataset by try_infer
            num_classes: 0,
            dropout: 0.0,
            batch_norm: false,
            jumping_knowledge: false,
            seed: 0,
        }
    }

    fn raw_params(cfg: &ModelConfig) -> Vec<(Vec<usize>, Vec<f32>)> {
        DistModel::new(cfg)
            .params()
            .iter()
            .map(|p| (p.shape(), p.value().data().to_vec()))
            .collect()
    }

    #[test]
    fn bad_param_count_is_a_typed_error() {
        let d = datasets::products_like(60, 0);
        let p = random(&d.graph, 2, 0);
        let mut c = cfg();
        c.num_classes = d.num_classes;
        let mut resolved = c.clone();
        resolved.in_dim = d.feat_dim();
        let mut params = raw_params(&resolved);
        params.pop();
        match try_infer(&d, &p, CostModel::default(), &c, &params, false) {
            Err(InferError::ParamCount { expected, got }) => {
                assert_eq!(got, expected - 1);
            }
            other => panic!("expected ParamCount, got {other:?}"),
        }
    }

    #[test]
    fn bad_param_shape_names_the_index() {
        let d = datasets::products_like(60, 1);
        let p = random(&d.graph, 2, 1);
        let mut c = cfg();
        c.num_classes = d.num_classes;
        let mut resolved = c.clone();
        resolved.in_dim = d.feat_dim();
        let mut params = raw_params(&resolved);
        params[1] = (vec![3, 3], vec![0.0; 9]);
        match try_infer(&d, &p, CostModel::default(), &c, &params, false) {
            Err(InferError::ParamShape { index, .. }) => assert_eq!(index, 1),
            other => panic!("expected ParamShape, got {other:?}"),
        }
    }

    #[test]
    fn partition_coverage_is_a_typed_error() {
        let d = datasets::products_like(60, 2);
        let small = datasets::products_like(40, 2);
        let p = random(&small.graph, 2, 2);
        let mut c = cfg();
        c.num_classes = d.num_classes;
        let mut resolved = c.clone();
        resolved.in_dim = d.feat_dim();
        let params = raw_params(&resolved);
        match try_infer(&d, &p, CostModel::default(), &c, &params, false) {
            Err(InferError::PartitionCoverage { nodes, assigned }) => {
                assert_eq!((nodes, assigned), (60, 40));
            }
            other => panic!("expected PartitionCoverage, got {other:?}"),
        }
    }
}
