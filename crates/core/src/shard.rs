//! Per-worker slices of a dataset's features, labels and masks.

use sar_graph::Dataset;
use sar_partition::Partitioning;
use sar_tensor::Tensor;

/// Worker-local slice of a [`Dataset`], in local node order (ascending
/// global id). Feature data is stored as a raw buffer so shards can be
/// built centrally and moved into worker threads, where each worker wraps
/// it in a [`Tensor`] registered with *its own* memory tracker.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Raw `[n_local × feat_dim]` features, row-major.
    pub features: Vec<f32>,
    /// Feature dimensionality.
    pub feat_dim: usize,
    /// Class label per local node.
    pub labels: Vec<u32>,
    /// Training mask per local node.
    pub train_mask: Vec<bool>,
    /// Validation mask per local node.
    pub val_mask: Vec<bool>,
    /// Test mask per local node.
    pub test_mask: Vec<bool>,
    /// Global ids of the local nodes.
    pub global_ids: Vec<u32>,
    /// Number of classes.
    pub num_classes: usize,
    /// Global number of training nodes (the full-batch loss normalizer).
    pub global_train_count: usize,
}

impl Shard {
    /// Builds every worker's shard from a dataset and partitioning.
    ///
    /// # Panics
    ///
    /// Panics if the partitioning does not cover the dataset.
    pub fn build_all(dataset: &Dataset, partitioning: &Partitioning) -> Vec<Shard> {
        let n = dataset.num_nodes();
        assert_eq!(partitioning.assignment().len(), n, "partitioning mismatch");
        let global_train_count = dataset.train_mask.iter().filter(|&&m| m).count();
        let d = dataset.feat_dim();
        partitioning
            .part_members()
            .into_iter()
            .map(|members| {
                let mut features = Vec::with_capacity(members.len() * d);
                let mut labels = Vec::with_capacity(members.len());
                let mut train_mask = Vec::with_capacity(members.len());
                let mut val_mask = Vec::with_capacity(members.len());
                let mut test_mask = Vec::with_capacity(members.len());
                for &g in &members {
                    let g = g as usize;
                    features.extend_from_slice(dataset.features.row(g));
                    labels.push(dataset.labels[g]);
                    train_mask.push(dataset.train_mask[g]);
                    val_mask.push(dataset.val_mask[g]);
                    test_mask.push(dataset.test_mask[g]);
                }
                Shard {
                    features,
                    feat_dim: d,
                    labels,
                    train_mask,
                    val_mask,
                    test_mask,
                    global_ids: members,
                    num_classes: dataset.num_classes,
                    global_train_count,
                }
            })
            .collect()
    }

    /// Number of local nodes.
    pub fn num_local(&self) -> usize {
        self.labels.len()
    }

    /// The features as a tensor registered on the calling thread.
    pub fn features_tensor(&self) -> Tensor {
        Tensor::from_vec(&[self.num_local(), self.feat_dim], self.features.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sar_graph::datasets;
    use sar_partition::random;

    #[test]
    fn shards_partition_the_dataset() {
        let d = datasets::products_like(300, 0);
        let p = random(&d.graph, 4, 1);
        let shards = Shard::build_all(&d, &p);
        assert_eq!(shards.len(), 4);
        let total: usize = shards.iter().map(Shard::num_local).sum();
        assert_eq!(total, 300);
        // Every shard agrees on the global train count.
        let t = datasets::Dataset::mask_count(&d.train_mask);
        assert!(shards.iter().all(|s| s.global_train_count == t));
    }

    #[test]
    fn shard_rows_match_dataset_rows() {
        let d = datasets::products_like(200, 2);
        let p = random(&d.graph, 3, 3);
        let shards = Shard::build_all(&d, &p);
        for s in &shards {
            let feats = s.features_tensor();
            for (li, &g) in s.global_ids.iter().enumerate() {
                assert_eq!(feats.row(li), d.features.row(g as usize));
                assert_eq!(s.labels[li], d.labels[g as usize]);
                assert_eq!(s.train_mask[li], d.train_mask[g as usize]);
            }
        }
    }
}
