//! Distributed batch normalization (§3.4 of the paper).
//!
//! The node-feature matrix is partitioned across workers, so batch
//! statistics must be *global*: the forward pass all-reduces each worker's
//! per-column sum, squared sum and row count to obtain the exact full-batch
//! mean and variance, and the backward pass all-reduces the two gradient
//! summary statistics so the input gradient is exactly the single-machine
//! gradient. Only `O(F)` summary data crosses the network — the
//! "communicating only summary statistics and their gradients" design the
//! paper describes.

use std::rc::Rc;

use sar_tensor::{Function, Tensor, Var};

use crate::worker::Worker;

struct DistBnFn {
    parents: Vec<Var>, // [x]
    w: Rc<Worker>,
    inv_std: Tensor, // [F], global
    n_global: f32,
}

impl Function for DistBnFn {
    fn parents(&self) -> &[Var] {
        &self.parents
    }

    fn name(&self) -> &'static str {
        "distributed_batchnorm"
    }

    fn backward(&self, grad_output: &Tensor, output: &Tensor) -> Vec<Option<Tensor>> {
        // y = (x − μ) / σ with global μ, σ over N total rows:
        // dx_i = (1/σ) (g_i − (1/N) Σ g − y_i (1/N) Σ (g ⊙ y)),
        // where both sums run over ALL workers' rows.
        let f = grad_output.cols();
        let mut buf = Vec::with_capacity(2 * f);
        buf.extend_from_slice(grad_output.sum_axis0().data());
        buf.extend_from_slice(grad_output.mul(output).sum_axis0().data());
        self.w.ctx.all_reduce_sum(&mut buf);
        let mean_g = Tensor::from_vec(&[f], buf[..f].to_vec()).scale(1.0 / self.n_global);
        let mean_gy = Tensor::from_vec(&[f], buf[f..].to_vec()).scale(1.0 / self.n_global);

        let centered = grad_output
            .add_row_broadcast(&mean_g.scale(-1.0))
            .sub(&output.mul_row_broadcast(&mean_gy));
        let dx = centered.mul_row_broadcast(&self.inv_std);
        vec![Some(dx)]
    }
}

/// Distributed batch normalization layer: global batch statistics, exact
/// full-batch gradients, learnable `gamma`/`beta`.
///
/// Statistics are always computed from the current full batch — in
/// full-batch GNN training the "batch" is the entire (fixed) node set, so
/// batch statistics and running statistics coincide at convergence.
#[derive(Debug)]
pub struct DistBatchNorm {
    gamma: Var,
    beta: Var,
    eps: f32,
}

impl DistBatchNorm {
    /// Creates a distributed batch-norm layer over `dim` features.
    pub fn new(dim: usize) -> Self {
        DistBatchNorm {
            gamma: Var::parameter(Tensor::ones(&[dim])),
            beta: Var::parameter(Tensor::zeros(&[dim])),
            eps: 1e-5,
        }
    }

    /// Normalizes this worker's `[n_local, F]` rows with global statistics.
    ///
    /// All workers must call this collectively (it all-reduces).
    ///
    /// # Panics
    ///
    /// Panics if `x` width differs from the layer dimension.
    pub fn forward(&self, w: &Rc<Worker>, x: &Var) -> Var {
        let f = x.value().cols();
        assert_eq!(f, self.gamma.value().numel(), "feature width mismatch");
        // Global sum, squared sum and row count in one all-reduce.
        let mut buf = Vec::with_capacity(2 * f + 1);
        {
            let xv = x.value();
            buf.extend_from_slice(xv.sum_axis0().data());
            buf.extend_from_slice(xv.mul(&xv).sum_axis0().data());
            buf.push(xv.rows() as f32);
        }
        w.ctx.all_reduce_sum(&mut buf);
        let n_global = buf[2 * f].max(1.0);
        let mean = Tensor::from_vec(&[f], buf[..f].to_vec()).scale(1.0 / n_global);
        let sq_mean = Tensor::from_vec(&[f], buf[f..2 * f].to_vec()).scale(1.0 / n_global);
        let var = sq_mean.zip_map(&mean, |sq, m| (sq - m * m).max(0.0));
        let eps = self.eps;
        let inv_std = var.map(|v| 1.0 / (v + eps).sqrt());

        let value = {
            let xv = x.value();
            xv.add_row_broadcast(&mean.scale(-1.0))
                .mul_row_broadcast(&inv_std)
        };
        let x_hat = Var::from_function(
            value,
            DistBnFn {
                parents: vec![x.clone()],
                w: Rc::clone(w),
                inv_std,
                n_global,
            },
        );
        x_hat.mul_row(&self.gamma).add_bias(&self.beta)
    }

    /// Trainable parameters (`gamma`, `beta`).
    pub fn params(&self) -> Vec<Var> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}
