//! Distributed Correct & Smooth.
//!
//! The paper implements C&S "within the same framework as SAR since C&S
//! involves iterative propagation of messages throughout the graph that is
//! similar to a GNN layer" — here each propagation step reuses the
//! sequential per-partition fetch of [`Worker::fetch_rounds`], so C&S
//! inherits SAR's memory behaviour. C&S has no trainable parameters and no
//! backward pass.

use std::rc::Rc;

use sar_graph::ops;
use sar_nn::CsConfig;
use sar_tensor::Tensor;

use crate::worker::{FetchedBlock, Worker};

/// One distributed step of symmetric-normalized propagation
/// `D^{-1/2} A D^{-1/2} X` over this worker's rows.
///
/// `inv_sqrt_deg_local` must be `deg^{-1/2}` of the local nodes (global
/// degrees). Collective: all workers must call in lockstep.
///
/// # Panics
///
/// Panics if shapes disagree with the shard.
pub fn dist_propagate_sym(w: &Rc<Worker>, x: &Tensor, inv_sqrt_deg_local: &Tensor) -> Tensor {
    let scaled = x.mul_col_broadcast(inv_sqrt_deg_local);
    let mut acc = Tensor::zeros(&[w.graph.num_local(), x.cols()]);
    w.fetch_rounds(&scaled, |q, fetched| match fetched {
        FetchedBlock::Local { data, rows } => {
            ops::spmm_sum_into_indexed(w.graph.block(q), data, rows, &mut acc);
        }
        FetchedBlock::Remote(block) => {
            ops::spmm_sum_into(w.graph.block(q), block, &mut acc);
        }
    });
    acc.mul_col_broadcast(inv_sqrt_deg_local)
}

/// `deg^{-1/2}` of this worker's local nodes.
pub fn local_inv_sqrt_degrees(w: &Worker) -> Tensor {
    let d: Vec<f32> = w
        .graph
        .global_in_degree()
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    Tensor::from_vec(&[w.graph.num_local()], d)
}

/// Distributed Correct & Smooth over sharded predictions.
///
/// `probs` are this worker's `[n_local, C]` softmax outputs; `labels` and
/// `train_mask` are local. Returns the smoothed local scores. Collective.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn dist_correct_and_smooth(
    w: &Rc<Worker>,
    probs: &Tensor,
    labels: &[u32],
    train_mask: &[bool],
    cfg: &CsConfig,
) -> Tensor {
    let n = probs.rows();
    let c = probs.cols();
    assert_eq!(labels.len(), n, "labels length mismatch");
    assert_eq!(train_mask.len(), n, "mask length mismatch");
    let inv_sqrt = local_inv_sqrt_degrees(w);

    // Correct: propagate the training residual.
    let mut e0 = Tensor::zeros(&[n, c]);
    for i in 0..n {
        if train_mask[i] {
            let y = labels[i] as usize;
            let row = e0.row_mut(i);
            for (j, r) in row.iter_mut().enumerate() {
                *r = (if j == y { 1.0 } else { 0.0 }) - probs.at(&[i, j]);
            }
        }
    }
    let mut e = e0.clone();
    for _ in 0..cfg.iters_correct {
        let prop = dist_propagate_sym(w, &e, &inv_sqrt);
        e = e0
            .scale(1.0 - cfg.alpha_correct)
            .add(&prop.scale(cfg.alpha_correct));
    }
    let corrected = probs.add(&e.scale(cfg.correction_scale));

    // Smooth: propagate with training labels clamped.
    let mut g0 = corrected;
    for i in 0..n {
        if train_mask[i] {
            let y = labels[i] as usize;
            let row = g0.row_mut(i);
            for (j, r) in row.iter_mut().enumerate() {
                *r = if j == y { 1.0 } else { 0.0 };
            }
        }
    }
    let mut g = g0.clone();
    for _ in 0..cfg.iters_smooth {
        let prop = dist_propagate_sym(w, &g, &inv_sqrt);
        g = g0
            .scale(1.0 - cfg.alpha_smooth)
            .add(&prop.scale(cfg.alpha_smooth));
    }
    g
}
