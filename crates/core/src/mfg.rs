//! Message-flow-graph (MFG) slicing: per-layer bipartite restrictions of a
//! [`DistGraph`] to the K-hop neighborhood of a query set.
//!
//! Full-batch training computes every layer over every local node. A
//! serving request for a handful of nodes only needs the query rows at the
//! last layer, their in-neighbors at the layer below, and so on — the
//! query set's message-flow graph. This module computes the *local* piece
//! of that restriction for one worker: given the destination rows a layer
//! must produce, [`slice_layer`] extracts, per peer block `G_{p,q}`, the
//! referenced source columns and a compacted bipartite sub-CSR over them.
//!
//! Column compaction is **monotone** (referenced columns keep their
//! relative order), and every aggregation kernel in `sar-graph`
//! accumulates per destination row in ascending-column order, so running
//! the standard kernels over these slices is bitwise identical to the
//! corresponding rows of a full-graph forward — the invariant the serve
//! parity tests pin down.
//!
//! The *distributed* part of MFG construction — exchanging per-peer row
//! requests so each worker learns which rows it must serve — lives in the
//! serving tier (`sar-serve`); this module is pure and comm-free.

use sar_comm::WIRE_HEADER_LEN;
use sar_graph::CsrGraph;

use crate::DistGraph;

/// One layer's local MFG restriction for one worker.
///
/// All row/column lists are ascending; `blocks[q]` is bipartite with
/// `req_cols[q].len()` columns and `dst_rows.len()` rows, edges renumbered
/// through both compactions.
#[derive(Debug, Clone)]
pub struct LayerSlice {
    /// Local rows this worker computes at this layer, ascending.
    pub dst_rows: Vec<u32>,
    /// Per peer `q`: referenced compact columns of `block(q)`, ascending.
    /// Because compact columns follow `needed_from(q)` order (sorted
    /// `q`-local rows), ascending columns are ascending `q`-local rows.
    pub req_cols: Vec<Vec<u32>>,
    /// Per peer `q`: the same columns as `q`-local row indices
    /// (`needed_from(q)[c]`) — the request list shipped to `q`, and the
    /// gather order `q` serves them back in.
    pub req_rows: Vec<Vec<u32>>,
    /// Per peer `q`: the restricted bipartite block.
    pub blocks: Vec<CsrGraph>,
}

impl LayerSlice {
    /// Bytes this worker receives fetching the slice's remote rows over a
    /// `cols`-wide feature tensor: the MFG analogue of
    /// [`DistGraph::predicted_fetch_bytes`]. Peers with an empty request
    /// still cost one framed (empty) message, mirroring the rotation.
    pub fn predicted_fetch_bytes(&self, rank: usize, cols: usize) -> u64 {
        let remote_rows: usize = self
            .req_rows
            .iter()
            .enumerate()
            .filter(|&(q, _)| q != rank)
            .map(|(_, r)| r.len())
            .sum();
        (remote_rows * cols * 4 + (self.req_rows.len() - 1) * WIRE_HEADER_LEN) as u64
    }
}

/// Restricts one layer of `g` to the given destination rows.
///
/// `dst_rows` must be ascending, distinct, and in `0..g.num_local()`.
/// For each peer `q` the result keeps exactly the edges of `block(q)`
/// that land in `dst_rows`, with source columns compacted to the
/// referenced set (ascending, order-preserving).
///
/// # Panics
///
/// Panics if a destination row is out of range.
pub fn slice_layer(g: &DistGraph, dst_rows: &[u32]) -> LayerSlice {
    debug_assert!(dst_rows.windows(2).all(|w| w[0] < w[1]));
    let world = g.world();
    let mut req_cols = Vec::with_capacity(world);
    let mut req_rows = Vec::with_capacity(world);
    let mut blocks = Vec::with_capacity(world);
    for q in 0..world {
        let block = g.block(q);
        let ncols = block.num_cols();
        let mut used = vec![false; ncols];
        for &d in dst_rows {
            for &c in block.neighbors(d as usize) {
                used[c as usize] = true;
            }
        }
        // Monotone compaction: referenced columns in ascending order.
        let mut colmap = vec![u32::MAX; ncols];
        let mut cols = Vec::new();
        for (c, &u) in used.iter().enumerate() {
            if u {
                colmap[c] = cols.len() as u32;
                cols.push(c as u32);
            }
        }
        let needed = g.needed_from(q);
        let rows: Vec<u32> = cols.iter().map(|&c| needed[c as usize]).collect();
        let mut edges = Vec::new();
        for (di, &d) in dst_rows.iter().enumerate() {
            for &c in block.neighbors(d as usize) {
                edges.push((colmap[c as usize], di as u32));
            }
        }
        blocks.push(CsrGraph::from_edges_bipartite(
            cols.len(),
            dst_rows.len(),
            &edges,
        ));
        req_cols.push(cols);
        req_rows.push(rows);
    }
    LayerSlice {
        dst_rows: dst_rows.to_vec(),
        req_cols,
        req_rows,
        blocks,
    }
}

/// The local rows whose *previous-layer* activations this worker needs to
/// run `slice`: the slice's destination rows (residual / attention-dst
/// paths read them directly), the local block's source rows, and every row
/// a peer has requested (`serve_rows[q]`, from the distributed exchange).
/// Returned ascending and distinct — the next (shallower) layer's
/// activation row set `H_{i-1}`.
pub fn expand_inputs(g: &DistGraph, slice: &LayerSlice, serve_rows: &[Vec<u32>]) -> Vec<u32> {
    let mut rows: Vec<u32> = slice.dst_rows.clone();
    rows.extend_from_slice(&slice.req_rows[g.rank()]);
    for served in serve_rows {
        rows.extend_from_slice(served);
    }
    rows.sort_unstable();
    rows.dedup();
    rows
}

/// Dense-position map for an ascending activation row set: `pos[local] =
/// index of `local` in `rows`, or `u32::MAX` when absent. Used to gather
/// sub-matrices out of the packed `[rows.len(), F]` activation tensor.
pub fn position_map(num_local: usize, rows: &[u32]) -> Vec<u32> {
    let mut pos = vec![u32::MAX; num_local];
    for (i, &r) in rows.iter().enumerate() {
        pos[r as usize] = i as u32;
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sar_graph::generators::erdos_renyi;
    use sar_graph::ops;
    use sar_partition::random;
    use sar_tensor::{init, Tensor};

    fn setup(seed: u64) -> (sar_graph::CsrGraph, Vec<DistGraph>) {
        let g = erdos_renyi(80, 400, &mut StdRng::seed_from_u64(seed)).symmetrize();
        let p = random(&g, 3, seed);
        let d = DistGraph::build_all(&g, &p);
        (g, d)
    }

    #[test]
    fn full_row_slice_reproduces_the_blocks() {
        let (_, shards) = setup(0);
        for s in &shards {
            let all: Vec<u32> = (0..s.num_local() as u32).collect();
            let slice = slice_layer(s, &all);
            for q in 0..s.world() {
                assert_eq!(slice.req_rows[q], s.needed_from(q));
                assert_eq!(slice.blocks[q].num_edges(), s.block(q).num_edges());
            }
        }
    }

    #[test]
    fn sliced_aggregation_matches_full_rows_bitwise() {
        let (_, shards) = setup(1);
        let f = 6;
        for s in &shards {
            let n_needed: usize = (0..s.world()).map(|q| s.needed_from(q).len()).sum();
            let mut rng = StdRng::seed_from_u64(7);
            // One source matrix per peer block, in needed_from order —
            // stand-ins for the fetched feature payloads.
            let mut feats = Vec::new();
            for q in 0..s.world() {
                feats.push(init::randn(&[s.needed_from(q).len(), f], 1.0, &mut rng));
            }
            let _ = n_needed;
            // Full aggregation over every local row.
            let mut full = Tensor::zeros(&[s.num_local(), f]);
            for (q, fq) in feats.iter().enumerate() {
                ops::spmm_sum_into(s.block(q), fq, &mut full);
            }
            // Sliced aggregation over a scattered subset.
            let dst: Vec<u32> = (0..s.num_local() as u32).step_by(3).collect();
            let slice = slice_layer(s, &dst);
            let mut sub = Tensor::zeros(&[dst.len(), f]);
            for (q, fq) in feats.iter().enumerate() {
                let cols: &[u32] = &slice.req_cols[q];
                let gathered = fq.gather_rows(cols);
                ops::spmm_sum_into(&slice.blocks[q], &gathered, &mut sub);
            }
            for (i, &d) in dst.iter().enumerate() {
                for j in 0..f {
                    assert_eq!(
                        sub.row(i)[j].to_bits(),
                        full.row(d as usize)[j].to_bits(),
                        "row {d} col {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn expand_inputs_unions_and_sorts() {
        let (_, shards) = setup(2);
        let s = &shards[0];
        let dst: Vec<u32> = vec![0, 2];
        let slice = slice_layer(s, &dst);
        let serve = vec![vec![1u32, 5], vec![2u32]];
        let rows = expand_inputs(s, &slice, &serve);
        assert!(rows.windows(2).all(|w| w[0] < w[1]));
        for d in &dst {
            assert!(rows.binary_search(d).is_ok());
        }
        assert!(rows.binary_search(&5).is_ok());
        let pos = position_map(s.num_local(), &rows);
        for (i, &r) in rows.iter().enumerate() {
            assert_eq!(pos[r as usize], i as u32);
        }
    }

    #[test]
    fn predicted_fetch_bytes_counts_remote_rows_and_headers() {
        let (_, shards) = setup(3);
        let s = &shards[1];
        let dst: Vec<u32> = (0..s.num_local() as u32 / 2).collect();
        let slice = slice_layer(s, &dst);
        let remote: usize = (0..s.world())
            .filter(|&q| q != s.rank())
            .map(|q| slice.req_rows[q].len())
            .sum();
        assert_eq!(
            slice.predicted_fetch_bytes(s.rank(), 10),
            (remote * 40 + 2 * WIRE_HEADER_LEN) as u64
        );
    }
}
