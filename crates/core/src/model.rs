//! The distributed GNN models the paper trains: 3-layer GraphSage and
//! 3-layer GAT, each runnable under three execution modes.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sar_nn::graph_autograd::{
    edge_softmax, gather_dst, gather_src, head_project, mean_heads, spmm_multihead, spmm_sum,
};
use sar_nn::Linear;
use sar_tensor::{init, Tensor, Var};

use crate::dist_bn::DistBatchNorm;
use crate::domain_parallel::halo_fetch;
use crate::seq_agg::{gat_aggregate, sage_aggregate, FakMode};
use crate::worker::Worker;

/// Model architecture (matching §4.2: 3-layer GraphSage with hidden 256,
/// or 3-layer GAT with hidden 128 and 4 heads; GCN is an extension beyond
/// the paper's two models, exercising the same case-1 SAR path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// GraphSage (Eq. 2).
    GraphSage {
        /// Hidden feature size.
        hidden: usize,
    },
    /// GAT (Eq. 3).
    Gat {
        /// Hidden feature size per attention head.
        head_dim: usize,
        /// Number of attention heads.
        heads: usize,
    },
    /// GCN (Kipf & Welling): `h' = σ(D^{-1/2} A D^{-1/2} h W)`. Like
    /// GraphSage, its aggregation is linear in `z`, so SAR's backward pass
    /// needs no refetch (case 1).
    Gcn {
        /// Hidden feature size.
        hidden: usize,
    },
}

/// How the message-passing step of each layer executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Vanilla domain-parallel training: all boundary features fetched at
    /// once and kept on the tape (Fig. 1a).
    DomainParallel,
    /// Sequential aggregation and rematerialization with DGL-style
    /// two-step attention kernels ("SAR" in the figures).
    Sar,
    /// SAR with fused attention kernels ("SAR+FAK"). Identical to
    /// [`Mode::Sar`] for GraphSage, whose aggregation has no
    /// per-edge intermediates.
    SarFused,
}

/// Distributed model hyperparameters.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Architecture.
    pub arch: Arch,
    /// Execution mode of the aggregation step.
    pub mode: Mode,
    /// Number of GNN layers.
    pub layers: usize,
    /// Input feature dimension (including label-augmentation channels).
    pub in_dim: usize,
    /// Number of output classes.
    pub num_classes: usize,
    /// Dropout probability between layers.
    pub dropout: f32,
    /// Whether to apply distributed batch normalization between layers.
    pub batch_norm: bool,
    /// Jumping-knowledge skip connections (Xu et al. 2018): classify from
    /// the concatenation of every layer's output instead of the last
    /// layer's alone. Demonstrates SAR on the "more complex topologies
    /// that make use of skip connections" that §2 notes prior full-batch
    /// systems cannot handle.
    pub jumping_knowledge: bool,
    /// Parameter-initialization seed — **identical on every worker**, so
    /// replicated parameters start in sync without a broadcast.
    pub seed: u64,
}

impl ModelConfig {
    /// The paper's GraphSage configuration (3 layers, hidden 256, BN +
    /// dropout).
    pub fn paper_graphsage(in_dim: usize, num_classes: usize, mode: Mode) -> Self {
        ModelConfig {
            arch: Arch::GraphSage { hidden: 256 },
            mode,
            layers: 3,
            in_dim,
            num_classes,
            dropout: 0.3,
            batch_norm: true,
            jumping_knowledge: false,
            seed: 0,
        }
    }

    /// The paper's GAT configuration (3 layers, hidden 128 per head, 4
    /// heads, BN + dropout).
    pub fn paper_gat(in_dim: usize, num_classes: usize, mode: Mode) -> Self {
        ModelConfig {
            arch: Arch::Gat {
                head_dim: 128,
                heads: 4,
            },
            mode,
            layers: 3,
            in_dim,
            num_classes,
            dropout: 0.3,
            batch_norm: true,
            jumping_knowledge: false,
            seed: 0,
        }
    }
}

enum DistLayer {
    Sage {
        lin_neigh: Linear,
        lin_res: Linear,
        activation: bool,
    },
    Gcn {
        lin: Linear,
        activation: bool,
    },
    Gat {
        lin: Linear,
        a_dst: Var,
        a_src: Var,
        heads: usize,
        slope: f32,
        concat: bool,
        activation: bool,
    },
}

impl DistLayer {
    fn params(&self) -> Vec<Var> {
        match self {
            DistLayer::Sage {
                lin_neigh, lin_res, ..
            } => {
                let mut p = lin_neigh.params();
                p.extend(lin_res.params());
                p
            }
            DistLayer::Gcn { lin, .. } => lin.params(),
            DistLayer::Gat {
                lin, a_dst, a_src, ..
            } => {
                let mut p = lin.params();
                p.push(a_dst.clone());
                p.push(a_src.clone());
                p
            }
        }
    }

    fn forward(&self, w: &Rc<Worker>, h: &Var, mode: Mode) -> Var {
        match self {
            DistLayer::Sage {
                lin_neigh,
                lin_res,
                activation,
            } => {
                let z = lin_neigh.forward(h);
                let inv_deg = Var::constant(Tensor::from_vec(
                    &[w.graph.num_local()],
                    w.graph.inv_in_degree(),
                ));
                let agg_sum = match mode {
                    Mode::DomainParallel => {
                        let halo = halo_fetch(w, &z);
                        spmm_sum(w.graph.halo_graph(), &halo)
                    }
                    Mode::Sar | Mode::SarFused => sage_aggregate(w, &z),
                };
                let out = agg_sum.mul_col(&inv_deg).add(&lin_res.forward(h));
                if *activation {
                    out.relu()
                } else {
                    out
                }
            }
            DistLayer::Gcn { lin, activation } => {
                // Symmetric normalization D^{-1/2} A D^{-1/2} with global
                // degrees, split around the (linear) aggregation.
                let inv_sqrt: Vec<f32> = w
                    .graph
                    .global_in_degree()
                    .iter()
                    .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
                    .collect();
                let inv_sqrt = Var::constant(Tensor::from_vec(&[w.graph.num_local()], inv_sqrt));
                let z = lin.forward(h).mul_col(&inv_sqrt);
                let agg = match mode {
                    Mode::DomainParallel => {
                        let halo = halo_fetch(w, &z);
                        spmm_sum(w.graph.halo_graph(), &halo)
                    }
                    Mode::Sar | Mode::SarFused => sage_aggregate(w, &z),
                };
                let out = agg.mul_col(&inv_sqrt);
                if *activation {
                    out.relu()
                } else {
                    out
                }
            }
            DistLayer::Gat {
                lin,
                a_dst,
                a_src,
                heads,
                slope,
                concat,
                activation,
            } => {
                let z = lin.forward(h);
                let s_dst = head_project(&z, a_dst, *heads);
                let out = match mode {
                    Mode::DomainParallel => {
                        // Vanilla DGL-style pipeline over the halo graph:
                        // every [E, H] intermediate is materialized and
                        // kept on the tape, as in Fig. 1a.
                        let hg = w.graph.halo_graph();
                        let halo = halo_fetch(w, &z);
                        let s_src = head_project(&halo, a_src, *heads);
                        let scores = gather_dst(hg, &s_dst)
                            .add(&gather_src(hg, &s_src))
                            .leaky_relu(*slope);
                        let alpha = edge_softmax(hg, &scores);
                        spmm_multihead(hg, &alpha, &halo)
                    }
                    Mode::Sar => {
                        gat_aggregate(w, &z, &s_dst, a_src, *heads, *slope, FakMode::TwoStep)
                    }
                    Mode::SarFused => {
                        gat_aggregate(w, &z, &s_dst, a_src, *heads, *slope, FakMode::Fused)
                    }
                };
                let out = if *concat {
                    out
                } else {
                    mean_heads(&out, *heads)
                };
                if *activation {
                    out.relu()
                } else {
                    out
                }
            }
        }
    }
}

/// A distributed multi-layer GNN replicated across workers.
///
/// Every worker constructs the model with the same seed, so parameters
/// are bit-identical replicas; gradients are summed with an all-reduce
/// after each backward pass and optimizer steps stay in lockstep.
pub struct DistModel {
    cfg: ModelConfig,
    layers: Vec<DistLayer>,
    bns: Vec<DistBatchNorm>,
    /// Final classifier over the concatenated layer outputs when
    /// jumping-knowledge is enabled.
    jk_classifier: Option<Linear>,
}

impl DistModel {
    /// Builds the model from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`.
    pub fn new(cfg: &ModelConfig) -> Self {
        assert!(cfg.layers > 0, "model needs at least one layer");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut layers = Vec::with_capacity(cfg.layers);
        let mut bns = Vec::new();
        let jk = cfg.jumping_knowledge;
        let mut jk_width = 0usize;
        for l in 0..cfg.layers {
            // With jumping knowledge, every layer keeps the hidden width
            // and a separate classifier maps the concatenation to classes.
            let last = !jk && l == cfg.layers - 1;
            match cfg.arch {
                Arch::GraphSage { hidden } | Arch::Gcn { hidden } => {
                    let in_dim = if l == 0 { cfg.in_dim } else { hidden };
                    let out_dim = if last { cfg.num_classes } else { hidden };
                    if matches!(cfg.arch, Arch::GraphSage { .. }) {
                        layers.push(DistLayer::Sage {
                            lin_neigh: Linear::new(in_dim, out_dim, false, &mut rng),
                            lin_res: Linear::new(in_dim, out_dim, true, &mut rng),
                            activation: !last,
                        });
                    } else {
                        layers.push(DistLayer::Gcn {
                            lin: Linear::new(in_dim, out_dim, false, &mut rng),
                            activation: !last,
                        });
                    }
                    jk_width += out_dim;
                    if !last && cfg.batch_norm {
                        bns.push(DistBatchNorm::new(out_dim));
                    }
                }
                Arch::Gat { head_dim, heads } => {
                    let in_dim = if l == 0 { cfg.in_dim } else { heads * head_dim };
                    // The final layer predicts classes with averaged heads.
                    let d = if last { cfg.num_classes } else { head_dim };
                    let width = heads * d;
                    let std = (2.0 / d as f32).sqrt();
                    layers.push(DistLayer::Gat {
                        lin: Linear::new(in_dim, width, false, &mut rng),
                        a_dst: Var::parameter(init::randn(&[width], std, &mut rng)),
                        a_src: Var::parameter(init::randn(&[width], std, &mut rng)),
                        heads,
                        slope: 0.2,
                        concat: !last,
                        activation: !last,
                    });
                    jk_width += if last { cfg.num_classes } else { width };
                    if !last && cfg.batch_norm {
                        bns.push(DistBatchNorm::new(width));
                    }
                }
            }
        }
        let jk_classifier = jk.then(|| Linear::new(jk_width, cfg.num_classes, true, &mut rng));
        DistModel {
            cfg: cfg.clone(),
            layers,
            bns,
            jk_classifier,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// All trainable parameters, in a deterministic order shared by every
    /// worker (required for the flat gradient all-reduce).
    pub fn params(&self) -> Vec<Var> {
        let mut p: Vec<Var> = self.layers.iter().flat_map(DistLayer::params).collect();
        for bn in &self.bns {
            p.extend(bn.params());
        }
        if let Some(c) = &self.jk_classifier {
            p.extend(c.params());
        }
        p
    }

    /// Runs the model on this worker's local features `x`
    /// (`[n_local, in_dim]`), returning local logits
    /// (`[n_local, num_classes]`).
    ///
    /// Collective: every worker must call `forward` in lockstep.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong shape.
    pub fn forward(&self, w: &Rc<Worker>, x: &Var, training: bool, rng: &mut impl Rng) -> Var {
        let mut h = x.clone();
        let mut jk_outputs = Vec::new();
        for (l, layer) in self.layers.iter().enumerate() {
            // Attribute this layer's traffic/CPU to layer `l` in the
            // observability ledger; aggregation Functions recorded here
            // capture the layer and restore it during backward.
            let _layer_scope = w.ctx.layer_scope(l as u16);
            h = layer.forward(w, &h, self.cfg.mode);
            if self.cfg.jumping_knowledge {
                jk_outputs.push(h.clone());
            }
            if l + 1 < self.layers.len() {
                if self.cfg.batch_norm {
                    h = self.bns[l].forward(w, &h);
                }
                if self.cfg.dropout > 0.0 {
                    h = h.dropout(self.cfg.dropout, training, rng);
                }
            }
        }
        match &self.jk_classifier {
            Some(classifier) => classifier.forward(&sar_tensor::hstack(&jk_outputs)),
            None => h,
        }
    }
}
