//! Pure schedule planning for SAR's rotation exchanges.
//!
//! [`Worker::fetch_rounds`](crate::Worker::fetch_rounds) and
//! [`Worker::exchange_grads`](crate::Worker::exchange_grads) execute the
//! step sequences produced here; the `sar-check` protocol verifier
//! replays the same sequences symbolically for every rank at once and
//! proves send/recv matching, deadlock-freedom, and the `(K+2)/N`
//! residency bound. Keeping the planning *pure* (no tensors, no
//! transport, no `Worker` state) is the point: the schedule we verify is
//! byte-for-byte the schedule we run.
//!
//! Terminology follows the paper (Algorithms 1–2): worker `p` of `N`
//! processes remote partitions in the fixed rotation order
//! `p, p+1, …, p+N−1 (mod N)`. In round `r` it *serves* partition
//! `(p − r) mod N` (sends the rows that partition needs) and *fetches*
//! from partition `(p + r) mod N`. Round 0 is the local block — a gather
//! with no communication. With pipeline depth `k`, serves and fetches run
//! up to `k` rounds ahead of consumption, so at most `k + 1` fetched
//! blocks are resident besides the local partition — the `(k+2)/N`
//! memory bound (2/N at depth 0, the paper's 3/N at depth 1).

/// The partition worker `p` of `n` serves in round `r` of the rotation.
#[inline]
#[must_use]
pub fn serve_dst(p: usize, r: usize, n: usize) -> usize {
    (p + n - r % n) % n
}

/// The partition worker `p` of `n` fetches from in round `r`.
#[inline]
#[must_use]
pub fn fetch_src(p: usize, r: usize, n: usize) -> usize {
    (p + r) % n
}

/// One step of the pipelined rotation exchange (Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchStep {
    /// Gather the local block (round 0) and stage it. No communication.
    GatherLocal,
    /// Non-blocking serve: send the rows partition `dst` needs from this
    /// worker (round `round` of the rotation).
    Serve {
        /// Rotation round (1-based; round 0 never serves).
        round: usize,
        /// Destination partition.
        dst: usize,
    },
    /// Blocking fetch: receive the block of rows this worker needs from
    /// partition `src`, and stage it behind any blocks already staged.
    Fetch {
        /// Rotation round (1-based; round 0 never fetches).
        round: usize,
        /// Source partition.
        src: usize,
    },
    /// Consume the oldest staged block — it must be partition `q`'s —
    /// then release (recycle) it.
    Consume {
        /// Partition whose block is consumed; blocks are always consumed
        /// in rotation order `p, p+1, …`, regardless of arrival order.
        q: usize,
    },
}

/// The depth-`k` pipelined fetch schedule of worker `p` in a world of
/// `n`: round 0's local gather, then every round's serve/fetch issued up
/// to `k` rounds ahead of its consumption.
///
/// Properties the `sar-check` protocol verifier proves over the full
/// `(n, k)` sweep, and that [`Worker::fetch_rounds`](crate::Worker::fetch_rounds)
/// inherits by construction:
///
/// * every partition `q` is consumed exactly once, in rotation order;
/// * serve `r` of worker `p` matches fetch `r` of worker
///   `serve_dst(p, r, n)` — pairwise, with equal tags;
/// * at most `min(k, n−1) + 1` staged blocks are ever resident.
///
/// # Panics
///
/// Panics if `n == 0` or `p >= n` (a planning-time programming error).
#[must_use]
pub fn fetch_steps(n: usize, p: usize, k: usize) -> Vec<FetchStep> {
    assert!(n > 0 && p < n, "rank {p} out of range for world {n}");
    let mut steps = Vec::with_capacity(3 * n + 1);
    // Round 0: the local block, staged like any other so consumption is
    // uniform.
    steps.push(FetchStep::GatherLocal);
    // Fill: issue the first `k` rounds' serves and fetches before
    // consuming anything.
    let fill = k.min(n - 1);
    for r in 1..=fill {
        steps.push(FetchStep::Serve {
            round: r,
            dst: serve_dst(p, r, n),
        });
        steps.push(FetchStep::Fetch {
            round: r,
            src: fetch_src(p, r, n),
        });
    }
    steps.push(FetchStep::Consume { q: p });
    // Steady state: round `r`'s serve and fetch are issued while round
    // `r − k` is the oldest staged block; it is consumed immediately
    // after, keeping exactly `k` blocks staged.
    for r in (fill + 1)..n {
        steps.push(FetchStep::Serve {
            round: r,
            dst: serve_dst(p, r, n),
        });
        steps.push(FetchStep::Fetch {
            round: r,
            src: fetch_src(p, r, n),
        });
        steps.push(FetchStep::Consume {
            q: fetch_src(p, r - fill, n),
        });
    }
    // Drain the last `fill` staged blocks.
    for r in (n - fill)..n {
        steps.push(FetchStep::Consume {
            q: fetch_src(p, r, n),
        });
    }
    steps
}

/// One step of the gradient-routing exchange (Algorithm 2:
/// `send error E_{p→q} to worker q`, then `E_p = Σ_q E_{q→p}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradStep {
    /// Scatter-add the local gradient block (no communication).
    AccumulateLocal,
    /// Non-blocking send of the gradient block for the rows fetched from
    /// partition `dst` during the forward pass.
    Send {
        /// Peer the error block is routed to.
        dst: usize,
    },
    /// Blocking receive of the error block partition `src` routed here,
    /// scatter-added over the rows served to `src`.
    Recv {
        /// Peer whose error block is accumulated.
        src: usize,
    },
}

/// The gradient-routing schedule of worker `p` in a world of `n`: the
/// local contribution, then *all* sends (non-blocking), then receives in
/// the fixed rank order `(p + n − r) mod n` so the floating-point
/// accumulation order — and therefore the result — is independent of
/// arrival order.
///
/// Send-before-receive is what makes the exchange deadlock-free: no
/// worker's send waits on any other worker's progress.
///
/// # Panics
///
/// Panics if `n == 0` or `p >= n` (a planning-time programming error).
#[must_use]
pub fn grad_steps(n: usize, p: usize) -> Vec<GradStep> {
    assert!(n > 0 && p < n, "rank {p} out of range for world {n}");
    let mut steps = Vec::with_capacity(2 * n - 1);
    steps.push(GradStep::AccumulateLocal);
    for r in 1..n {
        steps.push(GradStep::Send { dst: (p + r) % n });
    }
    for r in 1..n {
        steps.push(GradStep::Recv {
            src: (p + n - r) % n,
        });
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_indices_are_inverse() {
        for n in 1..9 {
            for p in 0..n {
                for r in 0..n {
                    // Worker p fetches from q in round r ⇔ q serves p in
                    // round r.
                    let q = fetch_src(p, r, n);
                    assert_eq!(serve_dst(q, r, n), p);
                }
            }
        }
    }

    #[test]
    fn depth_zero_is_strictly_sequential() {
        let steps = fetch_steps(3, 1, 0);
        use FetchStep::*;
        assert_eq!(
            steps,
            vec![
                GatherLocal,
                Consume { q: 1 },
                Serve { round: 1, dst: 0 },
                Fetch { round: 1, src: 2 },
                Consume { q: 2 },
                Serve { round: 2, dst: 2 },
                Fetch { round: 2, src: 0 },
                Consume { q: 0 },
            ]
        );
    }

    #[test]
    fn every_partition_consumed_once_in_rotation_order() {
        for n in 1..8 {
            for p in 0..n {
                for k in 0..4 {
                    let consumed: Vec<usize> = fetch_steps(n, p, k)
                        .iter()
                        .filter_map(|s| match s {
                            FetchStep::Consume { q } => Some(*q),
                            _ => None,
                        })
                        .collect();
                    let expect: Vec<usize> = (0..n).map(|r| (p + r) % n).collect();
                    assert_eq!(consumed, expect, "n={n} p={p} k={k}");
                }
            }
        }
    }

    #[test]
    fn staged_blocks_never_exceed_depth_plus_one() {
        for n in 1..8 {
            for p in 0..n {
                for k in 0..4 {
                    let mut staged = 0usize;
                    let mut peak = 0usize;
                    for s in fetch_steps(n, p, k) {
                        match s {
                            FetchStep::GatherLocal | FetchStep::Fetch { .. } => {
                                staged += 1;
                                peak = peak.max(staged);
                            }
                            FetchStep::Consume { .. } => staged -= 1,
                            FetchStep::Serve { .. } => {}
                        }
                    }
                    assert_eq!(staged, 0);
                    assert_eq!(peak, k.min(n - 1) + 1, "n={n} p={p} k={k}");
                }
            }
        }
    }

    #[test]
    fn grad_plan_sends_all_before_receiving() {
        for n in 1..8 {
            for p in 0..n {
                let steps = grad_steps(n, p);
                assert_eq!(steps[0], GradStep::AccumulateLocal);
                assert_eq!(steps.len(), 2 * n - 1);
                let first_recv = steps
                    .iter()
                    .position(|s| matches!(s, GradStep::Recv { .. }))
                    .unwrap_or(steps.len());
                let last_send = steps
                    .iter()
                    .rposition(|s| matches!(s, GradStep::Send { .. }))
                    .unwrap_or(0);
                assert!(last_send < first_recv || n == 1);
            }
        }
    }
}
