//! Full-batch distributed training loop (the experimental harness of §4).
//!
//! Implements the paper's training recipe: 100 epochs with a decaying
//! learning rate, Adam, distributed batch normalization and dropout
//! between layers, the label-augmentation / masked-label-prediction scheme
//! of Shi et al. 2020, and optional Correct & Smooth post-processing —
//! all running under any [`Mode`](crate::Mode) (domain-parallel, SAR,
//! SAR+FAK) so the same harness regenerates every figure.

use std::rc::Rc;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sar_comm::{thread_cpu_secs, Cluster, Codec, CommStats, CostModel, WorkerCtx};
use sar_graph::Dataset;
use sar_nn::loss::{correct_count, cross_entropy_masked};
use sar_nn::{Adam, CsConfig, LrSchedule};
use sar_partition::Partitioning;
use sar_tensor::{MemoryTracker, Tensor, Var};

use crate::dist_cs::dist_correct_and_smooth;
use crate::model::{DistModel, ModelConfig};
use crate::protocol::Protocol;
use crate::shard::Shard;
use crate::worker::Worker;
use crate::DistGraph;

/// Training-run hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Model configuration. `in_dim` is overwritten by the trainer to
    /// `feat_dim (+ num_classes with label augmentation)`.
    pub model: ModelConfig,
    /// Number of epochs.
    pub epochs: usize,
    /// Base learning rate.
    pub lr: f32,
    /// Learning-rate schedule (the paper decays the rate over training).
    pub schedule: LrSchedule,
    /// Enable the label-augmentation / masked-label-prediction scheme.
    pub label_aug: bool,
    /// Fraction of training nodes whose label is fed as input each epoch.
    pub aug_frac: f64,
    /// Run Correct & Smooth after training.
    pub cs: Option<CsConfig>,
    /// Pipeline depth of the sequential fetch (§3.4): `k` staged blocks ⇒
    /// `(k+2)/N` memory. `0` is the strictly sequential 2/N path, `1` the
    /// paper's 3/N prefetch. Results are bitwise identical at every depth.
    pub prefetch_depth: usize,
    /// Seed for label augmentation and dropout.
    pub seed: u64,
    /// Intra-worker kernel threads (`sar_tensor::pool`). `0` and `1` both
    /// mean single-threaded; results are bitwise identical across thread
    /// counts (see DESIGN.md §8).
    pub threads: usize,
    /// Exchange protocol: the paper's exact SAR, or an approximate
    /// variant that trades accuracy for wire volume (see [`Protocol`]).
    /// Final evaluation always runs exact.
    pub protocol: Protocol,
    /// Wire codec for compressible point-to-point payloads (fetch,
    /// refetch, gradient routing). [`Codec::Raw`] is lossless and leaves
    /// results bitwise identical; lossy codecs reduce wire bytes at some
    /// accuracy cost. Logical byte ledgers are unaffected either way.
    pub codec: Codec,
    /// Resident-tensor budget in bytes for the disk tier (`--mem-budget`).
    /// `0` disables spilling. When set, cached stale-protocol blocks and
    /// GAT rematerialization inputs past the budget spill to an
    /// mmap-backed block store and fault back on demand; results are
    /// bitwise identical at every budget (DESIGN.md §14).
    pub mem_budget: u64,
}

impl TrainConfig {
    /// The paper's recipe around a given model: 100 epochs, Adam with
    /// step-decayed learning rate, label augmentation, C&S.
    pub fn paper_recipe(model: ModelConfig) -> Self {
        TrainConfig {
            model,
            epochs: 100,
            lr: 0.01,
            schedule: LrSchedule::StepDecay {
                every: 30,
                gamma: 0.5,
            },
            label_aug: true,
            aug_frac: 0.5,
            cs: Some(CsConfig::default()),
            prefetch_depth: 0,
            seed: 0,
            threads: 1,
            protocol: Protocol::Exact,
            codec: Codec::Raw,
            mem_budget: 0,
        }
    }
}

/// Per-epoch measurements from one worker.
#[derive(Debug, Clone, Copy)]
pub struct EpochRecord {
    /// Global full-batch training loss.
    pub loss: f32,
    /// CPU seconds this worker spent computing during the epoch.
    pub compute_secs: f64,
    /// Simulated communication seconds charged this epoch.
    pub comm_secs: f64,
    /// Bytes this worker sent this epoch.
    pub sent_bytes: u64,
}

/// One worker's results.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Per-epoch measurements.
    pub epochs: Vec<EpochRecord>,
    /// Validation accuracy (global).
    pub val_acc: f64,
    /// Test accuracy (global).
    pub test_acc: f64,
    /// Test accuracy after Correct & Smooth (global), if enabled.
    pub test_acc_cs: Option<f64>,
    /// Peak live tensor bytes during steady-state training (measured from
    /// the start of the second epoch, excluding setup).
    pub steady_peak_bytes: usize,
    /// Final evaluation logits for this worker's nodes (row-major).
    pub logits: Vec<f32>,
    /// Global ids aligned with `logits` rows.
    pub global_ids: Vec<u32>,
    /// Trained parameter values (shape, data), populated on rank 0 only —
    /// replicas are identical, so one copy checkpoints the model.
    pub params: Option<Vec<(Vec<usize>, Vec<f32>)>>,
}

/// Aggregated results of a distributed training run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Number of workers.
    pub world: usize,
    /// Modeled epoch time: `max_p compute + max_p comm`, per epoch.
    pub epoch_times: Vec<f64>,
    /// The compute component of `epoch_times` (max over workers).
    pub epoch_compute: Vec<f64>,
    /// The simulated-communication component of `epoch_times`.
    pub epoch_comm: Vec<f64>,
    /// Global training loss per epoch.
    pub losses: Vec<f32>,
    /// Validation accuracy.
    pub val_acc: f64,
    /// Test accuracy.
    pub test_acc: f64,
    /// Test accuracy after C&S, if run.
    pub test_acc_cs: Option<f64>,
    /// Per-worker steady-state peak tensor bytes.
    pub peak_bytes: Vec<usize>,
    /// Total bytes sent across the cluster over the whole run.
    pub total_sent_bytes: u64,
    /// Per-worker communication statistics for the whole run, including
    /// the per-phase / per-layer observability ledger
    /// ([`CommStats::ledger`]). Indexed by rank.
    pub worker_comm: Vec<CommStats>,
    /// Full-graph logits `[n, C]` reassembled from all workers.
    pub logits: Tensor,
    /// Trained parameter values (shape, data) in [`DistModel::params`]
    /// order, for checkpointing with
    /// [`checkpoint::save_raw_params`](crate::checkpoint::save_raw_params).
    pub final_params: Vec<(Vec<usize>, Vec<f32>)>,
}

impl RunReport {
    /// Mean modeled epoch time over the steady-state epochs (skips the
    /// first epoch, which includes cache warm-up).
    pub fn avg_epoch_time(&self) -> f64 {
        let steady = &self.epoch_times[self.epoch_times.len().min(1)..];
        if steady.is_empty() {
            return self.epoch_times.iter().sum::<f64>() / self.epoch_times.len().max(1) as f64;
        }
        steady.iter().sum::<f64>() / steady.len() as f64
    }

    /// Largest per-worker steady-state peak, in bytes.
    pub fn max_peak_bytes(&self) -> usize {
        self.peak_bytes.iter().copied().max().unwrap_or(0)
    }
}

/// SplitMix64 — deterministic per-(seed, epoch, node) coin flips for the
/// label-augmentation mask, identical on every worker without
/// communication.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn is_augmented(seed: u64, epoch: u64, global_id: u32, frac: f64) -> bool {
    let h = splitmix64(seed ^ splitmix64(epoch) ^ (global_id as u64));
    (h as f64 / u64::MAX as f64) < frac
}

/// Builds the input tensor: raw features, optionally concatenated with
/// one-hot label channels for the augmented nodes.
fn build_input(shard: &Shard, label_aug: bool, aug_mask: Option<&[bool]>) -> Tensor {
    let n = shard.num_local();
    let feats = shard.features_tensor();
    if !label_aug {
        return feats;
    }
    let c = shard.num_classes;
    let mut aug = Tensor::zeros(&[n, c]);
    if let Some(mask) = aug_mask {
        for (i, &augmented) in mask.iter().enumerate().take(n) {
            if augmented {
                aug.row_mut(i)[shard.labels[i] as usize] = 1.0;
            }
        }
    }
    Tensor::hstack(&[&feats, &aug])
}

/// Sums every parameter's gradient across workers with one flat
/// all-reduce, writing the result back so all replicas step identically.
fn all_reduce_grads(w: &Worker, params: &[Var]) {
    let mut buf: Vec<f32> = Vec::new();
    let mut shapes = Vec::with_capacity(params.len());
    for p in params {
        let shape = p.shape();
        match p.grad() {
            Some(g) => buf.extend_from_slice(g.data()),
            None => buf.extend(std::iter::repeat_n(0.0, shape.iter().product())),
        }
        shapes.push(shape);
    }
    w.ctx.all_reduce_sum(&mut buf);
    let mut off = 0;
    for (p, shape) in params.iter().zip(shapes) {
        let len: usize = shape.iter().product();
        let g = Tensor::from_vec(&shape, buf[off..off + len].to_vec());
        p.zero_grad();
        p.accumulate_grad(&g);
        off += len;
    }
}

/// The per-worker SPMD training program.
///
/// Exposed so integration tests, benchmarks and the multi-process
/// launcher can compose it with any [`Transport`](sar_comm::Transport)
/// backend; most callers should use [`train`]. Takes the context as an
/// `Rc` so the caller can keep a clone and read (or ship) the accumulated
/// statistics after training.
pub fn run_worker(
    ctx: Rc<WorkerCtx>,
    graph: Arc<DistGraph>,
    shard: &Shard,
    cfg: &TrainConfig,
) -> WorkerReport {
    // Size this worker's kernel thread pool. `run_worker` executes on the
    // worker's own thread under every backend (sim threads and TCP
    // processes alike), so the pool lands where the kernels run.
    sar_tensor::pool::set_threads(cfg.threads.max(1));
    let w = Worker::from_shared(ctx, graph, cfg.prefetch_depth);
    w.ctx.set_codec(cfg.codec);
    w.set_protocol(cfg.protocol);
    if cfg.mem_budget > 0 {
        w.set_mem_budget(cfg.mem_budget);
    }
    let mut model_cfg = cfg.model.clone();
    model_cfg.in_dim = shard.feat_dim + if cfg.label_aug { shard.num_classes } else { 0 };
    let model = DistModel::new(&model_cfg);
    let params = model.params();
    let mut opt = Adam::new(params.clone(), cfg.lr).with_schedule(cfg.schedule);
    let mut dropout_rng =
        StdRng::seed_from_u64(cfg.seed ^ (w.rank() as u64).wrapping_mul(0x9e3779b97f4a7c15));

    let mut epochs = Vec::with_capacity(cfg.epochs);
    let mut steady_peak = 0usize;
    for epoch in 0..cfg.epochs {
        // Epoch boundary for the staleness protocol: refresh epochs fetch
        // remote blocks fresh and repopulate the cache; in-between epochs
        // replay it with zero fetch-phase traffic. Other protocols always
        // run fresh.
        let refresh = match cfg.protocol {
            Protocol::Stale(r) => epoch % r.get() == 0,
            _ => true,
        };
        w.begin_epoch(refresh);
        if epoch == 1 {
            // Exclude setup + first-epoch allocator warm-up from the
            // steady-state peak-memory measurement.
            MemoryTracker::reset_peak();
        }
        // Start (epoch 0) or settle (later epochs) the per-phase CPU
        // attribution so the epoch's ledger delta is self-contained.
        w.ctx.flush_phase_timing();
        let cpu0 = thread_cpu_secs();
        let comm0 = w.ctx.stats();

        // Label augmentation: feed a deterministic random subset of the
        // training labels as input, predict the rest (Shi et al. 2020).
        let (aug_mask, predict_mask): (Option<Vec<bool>>, Vec<bool>) = if cfg.label_aug {
            let aug: Vec<bool> = (0..shard.num_local())
                .map(|i| {
                    shard.train_mask[i]
                        && is_augmented(cfg.seed, epoch as u64, shard.global_ids[i], cfg.aug_frac)
                })
                .collect();
            let predict: Vec<bool> = (0..shard.num_local())
                .map(|i| shard.train_mask[i] && !aug[i])
                .collect();
            (Some(aug), predict)
        } else {
            (None, shard.train_mask.clone())
        };
        let local_predict = predict_mask.iter().filter(|&&m| m).count();
        let global_predict = w.ctx.all_reduce_sum_scalar(local_predict as f32).max(1.0);

        let x = Var::constant(build_input(shard, cfg.label_aug, aug_mask.as_deref()));
        let logits = model.forward(&w, &x, true, &mut dropout_rng);
        let loss =
            cross_entropy_masked(&logits, &shard.labels, &predict_mask, Some(global_predict));
        opt.zero_grad();
        loss.backward();
        all_reduce_grads(&w, &params);
        opt.step();
        opt.advance_epoch();

        let global_loss = w.ctx.all_reduce_sum_scalar(loss.value().item());
        w.ctx.flush_phase_timing();
        let comm1 = w.ctx.stats();
        epochs.push(EpochRecord {
            loss: global_loss,
            compute_secs: thread_cpu_secs() - cpu0,
            comm_secs: (comm1.comm_us - comm0.comm_us) / 1e6,
            sent_bytes: comm1.total_sent() - comm0.total_sent(),
        });
        steady_peak = steady_peak.max(MemoryTracker::stats().peak_bytes);
    }
    if cfg.epochs <= 1 {
        steady_peak = steady_peak.max(MemoryTracker::stats().peak_bytes);
    }

    // ---- Final evaluation: augment ALL training nodes (paper: "at
    // inference time, we augment all training nodes with the ground truth
    // labels"). Evaluation always runs the exact protocol — approximate
    // exchanges trade training fidelity for wire volume, but reported
    // accuracies measure the model on the true full graph.
    w.set_protocol(Protocol::Exact);
    let eval_aug = cfg.label_aug.then(|| shard.train_mask.clone());
    let x = Var::constant(build_input(shard, cfg.label_aug, eval_aug.as_deref()));
    let logits = sar_tensor::no_grad(|| model.forward(&w, &x, false, &mut dropout_rng));
    let logits_t = logits.value_clone();

    let global_acc = |mask: &[bool]| -> f64 {
        let (c, t) = correct_count(&logits_t, &shard.labels, mask);
        let mut buf = [c as f32, t as f32];
        w.ctx.all_reduce_sum(&mut buf);
        if buf[1] > 0.0 {
            (buf[0] / buf[1]) as f64
        } else {
            0.0
        }
    };
    let val_acc = global_acc(&shard.val_mask);
    let test_acc = global_acc(&shard.test_mask);

    let test_acc_cs = cfg.cs.as_ref().map(|cs_cfg| {
        let probs = logits_t.softmax_rows();
        let smoothed =
            dist_correct_and_smooth(&w, &probs, &shard.labels, &shard.train_mask, cs_cfg);
        let (c, t) = correct_count(&smoothed, &shard.labels, &shard.test_mask);
        let mut buf = [c as f32, t as f32];
        w.ctx.all_reduce_sum(&mut buf);
        if buf[1] > 0.0 {
            (buf[0] / buf[1]) as f64
        } else {
            0.0
        }
    });

    // Settle trailing CPU attribution so the shared statistics the cluster
    // collects after this closure returns carry a complete ledger.
    w.ctx.flush_phase_timing();
    let params_out = (w.rank() == 0).then(|| {
        params
            .iter()
            .map(|p| (p.shape(), p.value().data().to_vec()))
            .collect()
    });
    WorkerReport {
        epochs,
        val_acc,
        test_acc,
        test_acc_cs,
        steady_peak_bytes: steady_peak,
        logits: logits_t.into_data(),
        global_ids: shard.global_ids.clone(),
        params: params_out,
    }
}

/// Trains a model on `dataset` partitioned by `partitioning`, simulating
/// the cluster with the given network cost model, and aggregates the
/// workers' measurements into a [`RunReport`].
///
/// # Panics
///
/// Panics if the partitioning does not cover the dataset.
pub fn train(
    dataset: &Dataset,
    partitioning: &Partitioning,
    cost: CostModel,
    cfg: &TrainConfig,
) -> RunReport {
    let world = partitioning.num_parts();
    let graphs: Vec<Arc<DistGraph>> = DistGraph::build_all(&dataset.graph, partitioning)
        .into_iter()
        .map(Arc::new)
        .collect();
    let shards = Arc::new(Shard::build_all(dataset, partitioning));
    let graphs = Arc::new(graphs);
    let cfg_arc = Arc::new(cfg.clone());
    let num_classes = dataset.num_classes;
    let n = dataset.num_nodes();

    let outcomes = Cluster::new(world, cost).run(move |ctx| {
        let rank = ctx.rank();
        run_worker(
            Rc::new(ctx),
            Arc::clone(&graphs[rank]),
            &shards[rank],
            &cfg_arc,
        )
    });

    // Aggregate.
    let epochs = outcomes[0].result.epochs.len();
    let mut epoch_times = Vec::with_capacity(epochs);
    let mut epoch_compute = Vec::with_capacity(epochs);
    let mut epoch_comm = Vec::with_capacity(epochs);
    let mut losses = Vec::with_capacity(epochs);
    for e in 0..epochs {
        let max_compute = outcomes
            .iter()
            .map(|o| o.result.epochs[e].compute_secs)
            .fold(0.0, f64::max);
        let max_comm = outcomes
            .iter()
            .map(|o| o.result.epochs[e].comm_secs)
            .fold(0.0, f64::max);
        epoch_times.push(max_compute + max_comm);
        epoch_compute.push(max_compute);
        epoch_comm.push(max_comm);
        // Every worker reports the same global loss; take rank 0's.
        losses.push(outcomes[0].result.epochs[e].loss);
    }
    let mut logits = Tensor::zeros(&[n, num_classes]);
    for o in &outcomes {
        let block = Tensor::from_vec(
            &[o.result.global_ids.len(), num_classes],
            o.result.logits.clone(),
        );
        logits.scatter_add_rows(&o.result.global_ids, &block);
    }

    let final_params = outcomes[0]
        .result
        .params
        .clone()
        .expect("rank 0 reports parameters");
    RunReport {
        world,
        epoch_times,
        epoch_compute,
        epoch_comm,
        losses,
        val_acc: outcomes[0].result.val_acc,
        test_acc: outcomes[0].result.test_acc,
        test_acc_cs: outcomes[0].result.test_acc_cs,
        peak_bytes: outcomes
            .iter()
            .map(|o| o.result.steady_peak_bytes)
            .collect(),
        total_sent_bytes: outcomes.iter().map(|o| o.comm.total_sent()).sum(),
        worker_comm: outcomes.iter().map(|o| o.comm.clone()).collect(),
        logits,
        final_params,
    }
}
