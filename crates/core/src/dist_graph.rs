//! Partition-local graph structures: the per-worker view SAR operates on.
//!
//! For worker `p`, SAR needs the sub-blocks `G_{p,q}` (edges from partition
//! `q` into partition `p`, §3.2 of the paper), the list of `q`-local node
//! indices whose features `p` must fetch (`needed_from`), and the inverse
//! lists of `p`-local nodes each peer will fetch (`serves_to`). All of it
//! is derived once, centrally, by [`DistGraph::build_all`] before the
//! cluster starts — mirroring the paper's METIS preprocessing step.

use std::sync::Arc;

use sar_comm::WIRE_HEADER_LEN;
use sar_graph::CsrGraph;
use sar_partition::Partitioning;

/// Worker `p`'s partition-local view of the distributed graph.
///
/// Column spaces of the blocks are *compacted*: block `q` has one column
/// per distinct `q`-node that `p` needs, in the order of
/// [`needed_from`](DistGraph::needed_from). This makes a fetched feature
/// payload directly usable as the block's source-feature matrix.
#[derive(Debug, Clone)]
pub struct DistGraph {
    rank: usize,
    world: usize,
    local_nodes: Vec<u32>,
    blocks: Vec<CsrGraph>,
    needed_from: Vec<Vec<u32>>,
    serves_to: Vec<Vec<u32>>,
    // Machine-word copies of `needed_from` / `serves_to`, widened once at
    // build time. The rotation exchange gathers against these tables every
    // layer × epoch × peer; caching the `usize` form keeps the per-round
    // gather a straight indexed copy with no per-element conversion.
    needed_tables: Vec<Arc<[usize]>>,
    serve_tables: Vec<Arc<[usize]>>,
    global_in_degree: Vec<f32>,
    halo_graph: Arc<CsrGraph>,
    halo_offsets: Vec<usize>,
}

impl DistGraph {
    /// Builds every worker's [`DistGraph`] from the full graph and a
    /// partitioning.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from the node count.
    pub fn build_all(graph: &CsrGraph, partitioning: &Partitioning) -> Vec<DistGraph> {
        let n = graph.num_nodes();
        assert_eq!(
            partitioning.assignment().len(),
            n,
            "partitioning does not cover the graph"
        );
        let world = partitioning.num_parts();

        // Global id -> (owner, local index).
        let members = partitioning.part_members();
        let mut owner = vec![0u32; n];
        let mut local_idx = vec![0u32; n];
        for (p, nodes) in members.iter().enumerate() {
            for (li, &g) in nodes.iter().enumerate() {
                owner[g as usize] = p as u32;
                local_idx[g as usize] = li as u32;
            }
        }

        // Bucket edges by (dst_part, src_part), in local coordinates.
        let mut buckets: Vec<Vec<Vec<(u32, u32)>>> = vec![vec![Vec::new(); world]; world];
        for (s, d) in graph.iter_edges() {
            let p = owner[d as usize] as usize;
            let q = owner[s as usize] as usize;
            buckets[p][q].push((local_idx[s as usize], local_idx[d as usize]));
        }

        // needed_from[p][q]: sorted distinct q-local sources feeding p.
        let mut needed_from: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); world]; world];
        for p in 0..world {
            for q in 0..world {
                let mut srcs: Vec<u32> = buckets[p][q].iter().map(|&(s, _)| s).collect();
                srcs.sort_unstable();
                srcs.dedup();
                needed_from[p][q] = srcs;
            }
        }

        (0..world)
            .map(|p| {
                let n_local = members[p].len();
                let mut blocks = Vec::with_capacity(world);
                let mut halo_edges: Vec<(u32, u32)> = Vec::new();
                let mut halo_offsets = Vec::with_capacity(world);
                let mut halo_cols = 0usize;
                for q in 0..world {
                    let needed = &needed_from[p][q];
                    // Compact block columns: position within `needed`.
                    let edges: Vec<(u32, u32)> = buckets[p][q]
                        .iter()
                        .map(|&(s, d)| {
                            let col = needed
                                .binary_search(&s)
                                .expect("needed list covers sources")
                                as u32;
                            (col, d)
                        })
                        .collect();
                    halo_offsets.push(halo_cols);
                    for &(c, d) in &edges {
                        halo_edges.push((halo_cols as u32 + c, d));
                    }
                    halo_cols += needed.len();
                    blocks.push(CsrGraph::from_edges_bipartite(
                        needed.len(),
                        n_local,
                        &edges,
                    ));
                }
                let halo_graph = Arc::new(CsrGraph::from_edges_bipartite(
                    halo_cols,
                    n_local,
                    &halo_edges,
                ));
                let serves_to: Vec<Vec<u32>> =
                    (0..world).map(|q| needed_from[q][p].clone()).collect();
                let widen =
                    |rows: &[u32]| -> Arc<[usize]> { rows.iter().map(|&r| r as usize).collect() };
                let needed_tables = needed_from[p].iter().map(|r| widen(r)).collect();
                let serve_tables = serves_to.iter().map(|r| widen(r)).collect();
                let global_in_degree = members[p]
                    .iter()
                    .map(|&g| graph.in_degree(g as usize) as f32)
                    .collect();
                DistGraph {
                    rank: p,
                    world,
                    local_nodes: members[p].clone(),
                    blocks,
                    needed_from: needed_from[p].clone(),
                    serves_to,
                    needed_tables,
                    serve_tables,
                    global_in_degree,
                    halo_graph,
                    halo_offsets,
                }
            })
            .collect()
    }

    /// This shard's worker rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of partitions.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Number of nodes owned by this worker.
    pub fn num_local(&self) -> usize {
        self.local_nodes.len()
    }

    /// Global ids of the nodes owned by this worker, ascending.
    pub fn local_nodes(&self) -> &[u32] {
        &self.local_nodes
    }

    /// The bipartite block `G_{p,q}`: edges from partition `q` into this
    /// partition, with compacted source columns.
    pub fn block(&self, q: usize) -> &CsrGraph {
        &self.blocks[q]
    }

    /// `q`-local indices of the nodes this worker fetches from `q`.
    pub fn needed_from(&self, q: usize) -> &[u32] {
        &self.needed_from[q]
    }

    /// This worker's local indices that worker `q` fetches.
    pub fn serves_to(&self, q: usize) -> &[u32] {
        &self.serves_to[q]
    }

    /// Cached machine-word form of [`needed_from`](DistGraph::needed_from):
    /// the row-index table driving the round-0 local gather, precomputed so
    /// hot gather loops index directly instead of widening `u32` indices
    /// every layer × epoch.
    pub fn needed_table(&self, q: usize) -> &[usize] {
        &self.needed_tables[q]
    }

    /// Cached machine-word form of [`serves_to`](DistGraph::serves_to):
    /// the row-index table driving the serve-side gather to peer `q`.
    pub fn serve_table(&self, q: usize) -> &[usize] {
        &self.serve_tables[q]
    }

    /// In-degree of each local node in the *full* graph — the `|N(i)|`
    /// normalizer of Eq. 2 (block-local degrees would be wrong).
    pub fn global_in_degree(&self) -> &[f32] {
        &self.global_in_degree
    }

    /// `1 / |N(i)|` per local node (0 for isolated nodes), for mean
    /// aggregation.
    pub fn inv_in_degree(&self) -> Vec<f32> {
        self.global_in_degree
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
            .collect()
    }

    /// The concatenated halo graph used by domain-parallel training: all
    /// blocks side by side, columns ordered by partition then by
    /// `needed_from` position.
    pub fn halo_graph(&self) -> &Arc<CsrGraph> {
        &self.halo_graph
    }

    /// Column offset of partition `q`'s section in the halo graph.
    pub fn halo_offset(&self, q: usize) -> usize {
        self.halo_offsets[q]
    }

    /// Total number of halo (fetched + local-referenced) columns.
    pub fn halo_width(&self) -> usize {
        self.halo_graph.num_cols()
    }

    /// Total features this worker fetches from remote peers per layer (in
    /// node rows) — the per-layer communication volume driver.
    pub fn remote_fetch_rows(&self) -> usize {
        (0..self.world)
            .filter(|&q| q != self.rank)
            .map(|q| self.needed_from[q].len())
            .sum()
    }

    /// Total rows this worker serves to remote peers per rotation — the
    /// dual of [`DistGraph::remote_fetch_rows`] (equal for undirected
    /// graphs, where `needed_from` and `serves_to` are transposes).
    pub fn remote_serve_rows(&self) -> usize {
        (0..self.world)
            .filter(|&q| q != self.rank)
            .map(|q| self.serves_to[q].len())
            .sum()
    }

    /// Bytes this worker *receives* during one Algorithm-1 rotation over a
    /// `[n_local, cols]` feature tensor: 4-byte floats plus one framed
    /// wire header per remote peer (the rotation exchanges exactly one
    /// message per peer). The observability ledger's `ForwardFetch` (and,
    /// for attention layers, each `BackwardRefetch`) received volume must
    /// match this exactly, on *both* transport backends — the cross-check
    /// wired into `crates/core/tests/observability.rs`.
    pub fn predicted_fetch_bytes(&self, cols: usize) -> u64 {
        (self.remote_fetch_rows() * cols * 4 + (self.world - 1) * WIRE_HEADER_LEN) as u64
    }

    /// Bytes this worker *receives* while peers route error blocks back
    /// over a `[n_local, cols]` gradient (Algorithm 2's `E_p = Σ_q
    /// E_{q→p}` step): one row per served node, one message (and wire
    /// header) per remote peer.
    pub fn predicted_grad_route_bytes(&self, cols: usize) -> u64 {
        (self.remote_serve_rows() * cols * 4 + (self.world - 1) * WIRE_HEADER_LEN) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sar_graph::generators::erdos_renyi;
    use sar_graph::ops;
    use sar_partition::{random, Partitioning};
    use sar_tensor::{init, Tensor};

    fn setup(n: usize, m: usize, k: usize, seed: u64) -> (CsrGraph, Partitioning, Vec<DistGraph>) {
        let g = erdos_renyi(n, m, &mut StdRng::seed_from_u64(seed)).symmetrize();
        let p = random(&g, k, seed);
        let d = DistGraph::build_all(&g, &p);
        (g, p, d)
    }

    #[test]
    fn shards_cover_all_nodes_and_edges() {
        let (g, _, shards) = setup(100, 600, 4, 0);
        let total_nodes: usize = shards.iter().map(DistGraph::num_local).sum();
        assert_eq!(total_nodes, 100);
        let total_edges: usize = shards
            .iter()
            .flat_map(|s| (0..4).map(move |q| s.block(q).num_edges()))
            .sum();
        assert_eq!(total_edges, g.num_edges());
    }

    #[test]
    fn needed_and_serves_are_duals() {
        let (_, _, shards) = setup(80, 500, 3, 1);
        for p in 0..3 {
            for q in 0..3 {
                assert_eq!(
                    shards[p].needed_from(q),
                    shards[q].serves_to(p),
                    "needed_from[{p}][{q}] must equal serves_to[{q}][{p}]"
                );
            }
        }
    }

    #[test]
    fn blockwise_spmm_equals_full_spmm() {
        // The core identity of SAR's forward pass: summing per-block
        // aggregations over gathered features equals full-graph SpMM.
        let (g, part, shards) = setup(60, 400, 3, 2);
        let f = 5;
        let x = init::randn(&[60, f], 1.0, &mut StdRng::seed_from_u64(3));
        let full = ops::spmm_sum(&g, &x);

        for (p, shard) in shards.iter().enumerate() {
            let mut acc = Tensor::zeros(&[shard.num_local(), f]);
            for (q, owner) in shards.iter().enumerate() {
                // Worker q's local features:
                let z_q = x.gather_rows(owner.local_nodes());
                // Fetch = gather the needed rows.
                let fetched = z_q.gather_rows(shard.needed_from(q));
                ops::spmm_sum_into(shard.block(q), &fetched, &mut acc);
            }
            // Compare with the full result restricted to p's nodes.
            let expect = full.gather_rows(shard.local_nodes());
            assert!(
                acc.allclose(&expect, 1e-4),
                "worker {p} aggregation mismatch"
            );
            assert_eq!(part.part_of(shard.local_nodes()[0] as usize), p);
        }
    }

    #[test]
    fn halo_graph_matches_blocks() {
        let (_, _, shards) = setup(50, 300, 4, 4);
        for shard in &shards {
            let total: usize = (0..4).map(|q| shard.needed_from(q).len()).sum();
            assert_eq!(shard.halo_width(), total);
            let block_edges: usize = (0..4).map(|q| shard.block(q).num_edges()).sum();
            assert_eq!(shard.halo_graph().num_edges(), block_edges);
            // Offsets are cumulative sums.
            let mut off = 0;
            for q in 0..4 {
                assert_eq!(shard.halo_offset(q), off);
                off += shard.needed_from(q).len();
            }
        }
    }

    #[test]
    fn halo_spmm_equals_full_spmm() {
        let (g, _, shards) = setup(60, 400, 3, 5);
        let f = 4;
        let x = init::randn(&[60, f], 1.0, &mut StdRng::seed_from_u64(6));
        let full = ops::spmm_sum(&g, &x);
        for shard in &shards {
            // Build the halo feature matrix.
            let mut parts = Vec::new();
            for (q, owner) in shards.iter().enumerate() {
                let z_q = x.gather_rows(owner.local_nodes());
                parts.push(z_q.gather_rows(shard.needed_from(q)));
            }
            let refs: Vec<&Tensor> = parts.iter().collect();
            let halo = Tensor::vstack(&refs);
            let agg = ops::spmm_sum(shard.halo_graph(), &halo);
            let expect = full.gather_rows(shard.local_nodes());
            assert!(agg.allclose(&expect, 1e-4));
        }
    }

    #[test]
    fn global_degrees_match_full_graph() {
        let (g, _, shards) = setup(40, 200, 2, 7);
        for shard in &shards {
            for (li, &gid) in shard.local_nodes().iter().enumerate() {
                assert_eq!(
                    shard.global_in_degree()[li],
                    g.in_degree(gid as usize) as f32
                );
            }
        }
    }

    #[test]
    fn single_partition_has_empty_remote_sets() {
        let (g, _, shards) = setup(30, 150, 1, 8);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].remote_fetch_rows(), 0);
        assert_eq!(shards[0].block(0).num_edges(), g.num_edges());
    }
}
