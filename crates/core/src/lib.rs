#![warn(missing_docs)]

//! Sequential Aggregation and Rematerialization (SAR) — the paper's core
//! contribution.
//!
//! This crate implements distributed full-batch GNN training exactly as
//! described in the paper:
//!
//! * [`DistGraph`] — per-worker partition blocks `G_{p,q}` with the fetch
//!   (`needed_from`) and serve (`serves_to`) index sets (§3.2).
//! * [`Worker`] — the per-worker runtime handle; its
//!   [`fetch_rounds`](Worker::fetch_rounds) implements the sequential
//!   one-partition-at-a-time exchange with optional prefetching (2/N vs
//!   3/N memory, §3.4).
//! * [`seq_agg`] — Algorithms 1 and 2: [`sage_aggregate`] (case 1: no
//!   refetch) and [`gat_aggregate`] (case 2: refetch + recompute, with
//!   fused or two-step attention kernels).
//! * [`domain_parallel`] — the vanilla baseline that keeps all fetched
//!   boundary features and per-edge intermediates on the tape (Fig. 1a).
//! * [`DistBatchNorm`] — distributed batch normalization via summary
//!   statistics (§3.4).
//! * [`dist_cs`] — distributed Correct & Smooth.
//! * [`DistModel`] / [`trainer`] — the paper's 3-layer GraphSage and GAT
//!   models and the full training recipe (label augmentation, Adam,
//!   decaying learning rate), runnable under every execution [`Mode`].
//!
//! The paper's central exactness claim — "the results of training are
//! exactly the same regardless of the number of machines" — is verified by
//! this workspace's integration tests, which compare losses and logits of
//! SAR runs at N ∈ {1, 2, 4, 8} against single-machine training.

pub mod checkpoint;
mod dist_bn;
pub mod dist_cs;
mod dist_graph;
pub mod domain_parallel;
pub mod inference;
pub mod mfg;
mod model;
pub mod plan;
mod protocol;
pub mod seq_agg;
mod shard;
pub mod spatial;
pub mod trainer;
mod worker;

pub use dist_bn::DistBatchNorm;
pub use dist_graph::DistGraph;
pub use inference::{infer, try_infer, validate_params, InferError};
pub use model::{Arch, DistModel, Mode, ModelConfig};
pub use protocol::Protocol;
pub use seq_agg::{gat_aggregate, sage_aggregate, FakMode};
pub use shard::Shard;
pub use trainer::{run_worker, train, EpochRecord, RunReport, TrainConfig, WorkerReport};
pub use worker::{FetchedBlock, Worker};
