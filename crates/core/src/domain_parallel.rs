//! Vanilla domain-parallel training — the baseline SAR is compared against
//! (Fig. 1a of the paper).
//!
//! Domain-parallel training fetches **all** boundary features at the start
//! of a layer and keeps them alive on the autograd tape until the backward
//! pass, together with every per-edge intermediate (for GAT, the `[E, H]`
//! attention coefficients). The result is the memory blow-up of Fig. 1a:
//! by the end of the forward pass a worker stores a substantial portion of
//! the whole graph as part of its output's computational graph.

use std::rc::Rc;

use sar_comm::{Payload, Phase};
use sar_tensor::{Function, Tensor, Var};

use crate::worker::Worker;

struct HaloFetchFn {
    parents: Vec<Var>, // [z]
    w: Rc<Worker>,
    layer: Option<u16>,
}

impl Function for HaloFetchFn {
    fn parents(&self) -> &[Var] {
        &self.parents
    }

    fn name(&self) -> &'static str {
        "domain_parallel_halo_fetch"
    }

    fn backward(&self, grad_output: &Tensor, _output: &Tensor) -> Vec<Option<Tensor>> {
        // Slice the halo gradient per partition section and route each
        // slice back to the owner; accumulate what peers route to us.
        let w = &self.w;
        let _layer = w.ctx.layer_scope_opt(self.layer);
        let cols = grad_output.cols();
        let grad_z = w.exchange_grads(cols, |q| {
            let start = w.graph.halo_offset(q);
            let len = w.graph.needed_from(q).len();
            grad_output.slice_rows(start..start + len)
        });
        vec![Some(grad_z)]
    }
}

/// Fetches the full halo of `z` in one shot and returns it as a tape
/// variable (`[halo_width, F]`, sections ordered by partition as in
/// [`DistGraph::halo_graph`](crate::DistGraph::halo_graph)).
///
/// Unlike SAR's [`fetch_rounds`](crate::Worker::fetch_rounds), the fetched
/// features become part of the computational graph and stay resident until
/// the backward pass completes.
///
/// # Panics
///
/// Panics if `z` does not have one row per local node.
pub fn halo_fetch(w: &Rc<Worker>, z: &Var) -> Var {
    let n = w.world();
    let p = w.rank();
    let cols = z.value().cols();
    assert_eq!(
        z.value().rows(),
        w.graph.num_local(),
        "z rows != local nodes"
    );
    let tag = w.next_tag();
    let phase = w.ctx.phase_scope(Phase::ForwardFetch);

    // Send every peer its rows, then assemble the halo in partition order.
    {
        let zv = z.value();
        for r in 1..n {
            let q = (p + r) % n;
            let block = zv.gather_rows(w.graph.serves_to(q));
            w.ctx.send(q, tag, Payload::F32(block.into_data()));
        }
    }
    let mut sections: Vec<Tensor> = Vec::with_capacity(n);
    for q in 0..n {
        if q == p {
            sections.push(z.value().gather_rows(w.graph.needed_from(p)));
        } else {
            let rows = w.graph.needed_from(q).len();
            let data = w.ctx.recv(q, tag).into_f32();
            assert_eq!(data.len(), rows * cols, "halo block size mismatch");
            sections.push(Tensor::from_vec(&[rows, cols], data));
        }
    }
    let refs: Vec<&Tensor> = sections.iter().collect();
    let halo = Tensor::vstack(&refs);
    drop(sections);
    drop(phase);

    Var::from_function(
        halo,
        HaloFetchFn {
            parents: vec![z.clone()],
            w: Rc::clone(w),
            layer: w.ctx.current_layer(),
        },
    )
}
