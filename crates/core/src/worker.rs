//! The per-worker handle tying together communication, the local graph
//! shard, and the rotation-schedule feature exchange at the heart of SAR.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

use sar_comm::{Payload, Phase, WorkerCtx};
use sar_tensor::Tensor;

use crate::dist_graph::DistGraph;

/// Tags below the collective range, reserved for SAR's point-to-point
/// exchanges.
const P2P_TAG_BASE: u64 = 1 << 40;

/// A worker's handle during distributed training: the communication
/// context, this worker's shard, and a tag allocator.
///
/// `Worker` is shared via `Rc` so autograd [`Function`](sar_tensor::Function)s
/// recorded during the forward pass can communicate during the backward
/// pass — the mechanism behind Algorithm 2.
pub struct Worker {
    /// Communication context.
    pub ctx: Rc<WorkerCtx>,
    /// This worker's partition-local graph view.
    pub graph: Arc<DistGraph>,
    /// Whether sequential fetches prefetch the next partition (§3.4):
    /// memory scales as 3/N instead of 2/N but communication can overlap
    /// computation.
    pub prefetch: bool,
    tags: Cell<u64>,
}

impl Worker {
    /// Wraps a communication context and shard into a shared handle.
    pub fn new(ctx: WorkerCtx, graph: Arc<DistGraph>) -> Rc<Worker> {
        Worker::from_shared(Rc::new(ctx), graph, false)
    }

    /// Like [`Worker::new`] with prefetching enabled.
    pub fn with_prefetch(ctx: WorkerCtx, graph: Arc<DistGraph>) -> Rc<Worker> {
        Worker::from_shared(Rc::new(ctx), graph, true)
    }

    /// Builds a worker over an already-shared communication context. The
    /// caller keeps its `Rc` clone, e.g. to read the context's statistics
    /// (or gather them over the transport) after training consumed the
    /// worker.
    pub fn from_shared(ctx: Rc<WorkerCtx>, graph: Arc<DistGraph>, prefetch: bool) -> Rc<Worker> {
        Rc::new(Worker {
            ctx,
            graph,
            prefetch,
            tags: Cell::new(0),
        })
    }

    /// Wraps an *already shared* communication context with another graph
    /// view. Used when one worker thread operates over several distributed
    /// structures at once (e.g. the per-offset shift graphs of
    /// [`spatial::DistConv1d`](crate::spatial::DistConv1d)); tag spaces
    /// start at distinct bases per view so their exchanges cannot collide.
    ///
    /// `view_index` must be assigned identically on every rank.
    pub fn with_shared_ctx(
        ctx: Rc<WorkerCtx>,
        graph: Arc<DistGraph>,
        view_index: u64,
    ) -> Rc<Worker> {
        Rc::new(Worker {
            ctx,
            graph,
            prefetch: false,
            // Disjoint tag sub-spaces per view (2^20 tags each).
            tags: Cell::new(view_index << 20),
        })
    }

    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.ctx.rank()
    }

    /// Cluster size.
    pub fn world(&self) -> usize {
        self.ctx.world_size()
    }

    /// Allocates the next point-to-point tag. Relies on SPMD execution:
    /// all workers allocate tags in the same order.
    pub fn next_tag(&self) -> u64 {
        let t = self.tags.get();
        self.tags.set(t + 1);
        P2P_TAG_BASE + t
    }

    /// Serves rows of `data` to worker `dst` under `tag`: gathers the rows
    /// `dst` needs from this worker and ships them as a raw payload
    /// (detached from this thread's memory tracker).
    fn serve(&self, data: &Tensor, dst: usize, tag: u64) {
        let rows = self.graph.serves_to(dst);
        let block = data.gather_rows(rows);
        self.ctx.send(dst, tag, Payload::F32(block.into_data()));
    }

    /// Receives a feature block from worker `src`: `needed_from(src)` rows
    /// of width `cols`. The received bytes are registered with *this*
    /// worker's memory tracker — fetched partitions count against this
    /// worker's peak, as in the paper's accounting.
    fn receive_block(&self, src: usize, tag: u64, cols: usize) -> Tensor {
        let data = self.ctx.recv(src, tag).into_f32();
        let rows = self.graph.needed_from(src).len();
        assert_eq!(
            data.len(),
            rows * cols,
            "fetched block from {src} has wrong size"
        );
        Tensor::from_vec(&[rows, cols], data)
    }

    /// The sequential rotation exchange of Algorithm 1: fetches each
    /// partition's needed rows of `data` one at a time, invoking
    /// `consume(q, fetched)` per partition, and frees each fetched block
    /// before the next arrives (or one round later with prefetching).
    ///
    /// Round `r`: this worker serves partition `(p − r) mod N` and fetches
    /// from partition `(p + r) mod N`; round 0 is the local block (gather,
    /// no communication). With `prefetch`, round `r + 1` is received
    /// before round `r` is consumed, so at most **two** remote blocks are
    /// live (plus the local partition ⇒ the paper's 3/N bound); without
    /// it, at most one (⇒ 2/N).
    ///
    /// `data` must have one row per local node.
    ///
    /// # Panics
    ///
    /// Panics if `data` has the wrong number of rows.
    pub fn fetch_rounds(&self, data: &Tensor, mut consume: impl FnMut(usize, &Tensor)) {
        let n = self.world();
        let p = self.rank();
        assert_eq!(
            data.rows(),
            self.graph.num_local(),
            "data rows != local nodes"
        );
        let cols = data.cols();
        let tag = self.next_tag();
        // Ledger the rotation exchange as a forward fetch unless the
        // caller already declared a phase (the GAT backward pass runs this
        // same loop under BackwardRefetch).
        let _phase = (self.ctx.current_phase() == Phase::Other)
            .then(|| self.ctx.phase_scope(Phase::ForwardFetch));

        // Round 0: local gather, no communication.
        let local = data.gather_rows(self.graph.needed_from(p));

        if !self.prefetch {
            consume(p, &local);
            drop(local);
            for r in 1..n {
                let serve_dst = (p + n - r) % n;
                let fetch_src = (p + r) % n;
                self.serve(data, serve_dst, tag);
                let fetched = self.receive_block(fetch_src, tag, cols);
                consume(fetch_src, &fetched);
                // `fetched` dropped here: at most one remote partition
                // resident at a time.
            }
        } else {
            // Prefetch depth 1: issue round r+1's serve before consuming
            // round r, and hold the next block while the current one is
            // being aggregated.
            let mut current: (usize, Tensor) = (p, local);
            for r in 1..n {
                let serve_dst = (p + n - r) % n;
                self.serve(data, serve_dst, tag);
                let next = ((p + r) % n, self.receive_block((p + r) % n, tag, cols));
                consume(current.0, &current.1);
                current = next;
            }
            consume(current.0, &current.1);
        }
    }

    /// Scatter-style gradient return: sends one gradient block per peer
    /// (rows aligned with `needed_from(q)`), then accumulates the blocks
    /// received from all peers (rows aligned with `serves_to(q)`) into a
    /// `[num_local, cols]` tensor. This is the error-routing step of
    /// Algorithm 2 (`send error E_{p→q} to worker q`, then
    /// `E_p = Σ_q E_{q→p}`).
    ///
    /// `make_block(q)` must return the gradient for the rows fetched from
    /// `q` during the forward pass.
    pub fn exchange_grads(
        &self,
        cols: usize,
        mut make_block: impl FnMut(usize) -> Tensor,
    ) -> Tensor {
        let n = self.world();
        let p = self.rank();
        let tag = self.next_tag();
        let _phase = self.ctx.phase_scope(Phase::GradRouting);
        let mut grad = Tensor::zeros(&[self.graph.num_local(), cols]);

        // Local contribution first (no communication).
        let local_block = make_block(p);
        grad.scatter_add_rows(self.graph.needed_from(p), &local_block);
        drop(local_block);

        // Send to every peer, then receive from every peer. Sends are
        // non-blocking (unbounded channels), so this cannot deadlock.
        for r in 1..n {
            let q = (p + r) % n;
            let block = make_block(q);
            assert_eq!(block.rows(), self.graph.needed_from(q).len());
            self.ctx.send(q, tag, Payload::F32(block.into_data()));
        }
        for r in 1..n {
            let q = (p + n - r) % n;
            let rows = self.graph.serves_to(q);
            let data = self.ctx.recv(q, tag).into_f32();
            assert_eq!(data.len(), rows.len() * cols, "grad block size mismatch");
            let block = Tensor::from_vec(&[rows.len(), cols], data);
            grad.scatter_add_rows(rows, &block);
        }
        grad
    }
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field("rank", &self.rank())
            .field("world", &self.world())
            .field("prefetch", &self.prefetch)
            .finish()
    }
}
