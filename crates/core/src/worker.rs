//! The per-worker handle tying together communication, the local graph
//! shard, and the rotation-schedule feature exchange at the heart of SAR.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

use sar_comm::{buffer, Payload, Phase, TransportError, WorkerCtx};
use sar_tensor::tier::TieredStore;
use sar_tensor::Tensor;

use crate::dist_graph::DistGraph;
use crate::plan::{self, FetchStep, GradStep};
use crate::protocol::Protocol;

/// Tags below the collective range, reserved for SAR's point-to-point
/// exchanges.
const P2P_TAG_BASE: u64 = 1 << 40;

/// One partition block handed to the [`Worker::fetch_rounds`] consumer.
///
/// Remote rounds deliver the materialized block received from the wire.
/// The round-0 local block is *not* materialized: the consumer gets the
/// worker's resident feature tensor plus the row table selecting the
/// block's compacted columns, and reads through it with the fused
/// gather+aggregate kernels (`ops::spmm_sum_into_indexed`,
/// `ops::head_project_indexed`, `fused::gat_fused_block_forward_indexed`,
/// …) — the gathered copy earlier revisions staged through the buffer
/// pool never exists, so round 0 contributes zero staged bytes to the
/// fetch-phase watermark.
pub enum FetchedBlock<'a> {
    /// Round 0: the local features, viewed through `rows` (one entry per
    /// block column, each an index into `data`).
    Local {
        /// The worker's resident `[n_local, F]` feature tensor.
        data: &'a Tensor,
        /// Row table selecting the block's compacted columns from `data`.
        rows: &'a [u32],
    },
    /// A remote partition's rows, received and bounds-checked.
    Remote(&'a Tensor),
}

impl FetchedBlock<'_> {
    /// Number of rows in the block (its compacted column count).
    pub fn rows(&self) -> usize {
        match self {
            FetchedBlock::Local { rows, .. } => rows.len(),
            FetchedBlock::Remote(t) => t.rows(),
        }
    }

    /// Feature width of the block.
    pub fn cols(&self) -> usize {
        match self {
            FetchedBlock::Local { data, .. } => data.cols(),
            FetchedBlock::Remote(t) => t.cols(),
        }
    }

    /// Materializes the block as an owned tensor: gathers the local
    /// round's rows, copies a remote block into a pooled buffer. For cold
    /// paths and tests — hot paths consume `Local` in place via the
    /// `*_indexed` kernels.
    pub fn to_tensor(&self) -> Tensor {
        match self {
            FetchedBlock::Local { data, rows } => data.gather_rows(rows),
            FetchedBlock::Remote(t) => {
                // A pooled buffer instead of `Tensor::clone`: steady-state
                // callers stop allocating once the pool is primed.
                let mut buf = buffer::take_f32(t.data().len());
                buf.copy_from_slice(t.data());
                Tensor::from_vec(t.shape(), buf)
            }
        }
    }
}

/// A worker's handle during distributed training: the communication
/// context, this worker's shard, and a tag allocator.
///
/// `Worker` is shared via `Rc` so autograd [`Function`](sar_tensor::Function)s
/// recorded during the forward pass can communicate during the backward
/// pass — the mechanism behind Algorithm 2.
pub struct Worker {
    /// Communication context.
    pub ctx: Rc<WorkerCtx>,
    /// This worker's partition-local graph view.
    pub graph: Arc<DistGraph>,
    /// Pipeline depth `k` of the rotation exchange (§3.4 of the paper):
    /// up to `k` fetched blocks are staged ahead of the one being
    /// aggregated, so communication for later rounds overlaps the current
    /// round's compute. Memory scales as `(k+2)/N` blocks (the local
    /// partition plus the block being consumed plus `k` staged). Depth 0
    /// is the strictly sequential `2/N` path; depth 1 is the paper's
    /// single-block prefetch (`3/N`).
    pub prefetch_depth: usize,
    tags: Cell<u64>,
    /// Exchange protocol (exact by default; see [`Protocol`]).
    protocol: Cell<Protocol>,
    /// Whether the current epoch refreshes remote blocks (always true
    /// outside [`Protocol::Stale`]).
    epoch_fresh: Cell<bool>,
    /// Within-epoch index of the next [`Worker::fetch_rounds`] call —
    /// the key into `stale_cache` (every epoch runs the same SPMD call
    /// sequence, so the index identifies the exchange).
    fetch_call: Cell<usize>,
    /// Per-fetch-call cache of the remote blocks received on the last
    /// refresh epoch, in rotation order `p+1, p+2, …` (the local block is
    /// never cached — it is always read fresh from the resident tensor).
    /// With the disk tier enabled the blocks live in `tier` instead and
    /// each slot only records its round count.
    stale_cache: RefCell<Vec<StaleSlot>>,
    /// The out-of-core disk tier (`--mem-budget`): cached stale blocks
    /// and rematerialization inputs past the budget spill here and fault
    /// back through the same depth-k staging as network prefetches.
    /// `None` (the default) keeps every path byte-identical to the
    /// tier-less code.
    tier: RefCell<Option<TieredStore>>,
    /// Allocator for rematerialization-input block ids in the tier.
    remat_ids: Cell<u64>,
}

/// One fetch call's worth of cached stale-protocol remote blocks.
enum StaleSlot {
    /// Blocks held in RAM (tier disabled), rotation order `p+1, p+2, …`.
    Ram(Vec<Tensor>),
    /// Blocks held by the worker's [`TieredStore`] under
    /// [`stale_block_id`] keys; the slot records only the round count.
    Tiered {
        /// Number of remote rounds cached (`world − 1`).
        rounds: usize,
    },
}

/// Tier key of the stale-cache block fetched in `round` of fetch call
/// `call`. Bit 63 namespaces stale blocks away from remat-input ids.
fn stale_block_id(call: usize, round: usize) -> u64 {
    (1 << 63) | ((call as u64) << 24) | round as u64
}

impl Worker {
    /// Wraps a communication context and shard into a shared handle
    /// (pipeline depth 0 — the strictly sequential exchange).
    pub fn new(ctx: WorkerCtx, graph: Arc<DistGraph>) -> Rc<Worker> {
        Worker::from_shared(Rc::new(ctx), graph, 0)
    }

    /// Like [`Worker::new`] with the paper's single-block prefetch
    /// (pipeline depth 1).
    pub fn with_prefetch(ctx: WorkerCtx, graph: Arc<DistGraph>) -> Rc<Worker> {
        Worker::from_shared(Rc::new(ctx), graph, 1)
    }

    /// Like [`Worker::new`] with an arbitrary pipeline depth.
    pub fn with_prefetch_depth(
        ctx: WorkerCtx,
        graph: Arc<DistGraph>,
        prefetch_depth: usize,
    ) -> Rc<Worker> {
        Worker::from_shared(Rc::new(ctx), graph, prefetch_depth)
    }

    /// Builds a worker over an already-shared communication context. The
    /// caller keeps its `Rc` clone, e.g. to read the context's statistics
    /// (or gather them over the transport) after training consumed the
    /// worker.
    pub fn from_shared(
        ctx: Rc<WorkerCtx>,
        graph: Arc<DistGraph>,
        prefetch_depth: usize,
    ) -> Rc<Worker> {
        Rc::new(Worker {
            ctx,
            graph,
            prefetch_depth,
            tags: Cell::new(0),
            protocol: Cell::new(Protocol::Exact),
            epoch_fresh: Cell::new(true),
            fetch_call: Cell::new(0),
            stale_cache: RefCell::new(Vec::new()),
            tier: RefCell::new(None),
            remat_ids: Cell::new(0),
        })
    }

    /// Wraps an *already shared* communication context with another graph
    /// view. Used when one worker thread operates over several distributed
    /// structures at once (e.g. the per-offset shift graphs of
    /// [`spatial::DistConv1d`](crate::spatial::DistConv1d)); tag spaces
    /// start at distinct bases per view so their exchanges cannot collide.
    ///
    /// `view_index` must be assigned identically on every rank.
    pub fn with_shared_ctx(
        ctx: Rc<WorkerCtx>,
        graph: Arc<DistGraph>,
        view_index: u64,
    ) -> Rc<Worker> {
        Rc::new(Worker {
            ctx,
            graph,
            prefetch_depth: 0,
            // Disjoint tag sub-spaces per view (2^20 tags each).
            tags: Cell::new(view_index << 20),
            protocol: Cell::new(Protocol::Exact),
            epoch_fresh: Cell::new(true),
            fetch_call: Cell::new(0),
            stale_cache: RefCell::new(Vec::new()),
            tier: RefCell::new(None),
            remat_ids: Cell::new(0),
        })
    }

    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.ctx.rank()
    }

    /// Cluster size.
    pub fn world(&self) -> usize {
        self.ctx.world_size()
    }

    /// Allocates the next point-to-point tag. Relies on SPMD execution:
    /// all workers allocate tags in the same order.
    pub fn next_tag(&self) -> u64 {
        let t = self.tags.get();
        self.tags.set(t + 1);
        P2P_TAG_BASE + t
    }

    /// The exchange protocol this worker currently runs under.
    pub fn protocol(&self) -> Protocol {
        self.protocol.get()
    }

    /// Enables the out-of-core disk tier with a resident-byte budget
    /// (`--mem-budget`). Cached stale-protocol blocks and
    /// rematerialization inputs past the budget spill to an mmap-backed
    /// temp file and fault back through the depth-k staging pipeline;
    /// results are bitwise identical at any budget. `0` disables tiering
    /// and drops any spilled state.
    ///
    /// # Panics
    ///
    /// Panics (naming this rank) if the spill arena cannot be created —
    /// a setup-time environment failure, not a training-path error.
    pub fn set_mem_budget(&self, budget_bytes: u64) {
        if budget_bytes == 0 {
            *self.tier.borrow_mut() = None;
            return;
        }
        match TieredStore::new(budget_bytes) {
            Ok(store) => *self.tier.borrow_mut() = Some(store),
            Err(e) => panic!(
                "worker {}: creating spill tier (budget {budget_bytes} bytes): {e}",
                self.rank()
            ),
        }
    }

    /// Whether the disk tier is active.
    pub fn tier_enabled(&self) -> bool {
        self.tier.borrow().is_some()
    }

    /// Inserts a block into the tier (spilling coldest past the budget).
    ///
    /// # Panics
    ///
    /// Panics (naming this rank) if the tier is disabled or spill IO
    /// fails.
    pub(crate) fn tier_put(&self, id: u64, t: Tensor, what: &str) {
        let mut tier = self.tier.borrow_mut();
        let Some(store) = tier.as_mut() else {
            panic!(
                "worker {}: tier_put({what}) with the disk tier disabled",
                self.rank()
            );
        };
        if let Err(e) = store.put(id, t) {
            panic!("worker {}: spilling {what}: {e}", self.rank());
        }
    }

    /// Removes a block from the tier, faulting from disk if spilled.
    ///
    /// # Panics
    ///
    /// Panics (naming this rank) if the tier is disabled, the id is
    /// absent, or fault IO fails.
    pub(crate) fn tier_take(&self, id: u64, what: &str) -> Tensor {
        let mut tier = self.tier.borrow_mut();
        let Some(store) = tier.as_mut() else {
            panic!(
                "worker {}: tier_take({what}) with the disk tier disabled",
                self.rank()
            );
        };
        match store.take(id) {
            Ok(t) => t,
            Err(e) => panic!("worker {}: faulting {what}: {e}", self.rank()),
        }
    }

    /// Quietly removes a block from the tier if present (cleanup paths:
    /// a recorded-but-never-run backward, slot overwrite). IO errors are
    /// ignored — the block is being discarded anyway.
    pub(crate) fn tier_discard(&self, id: u64) {
        if let Some(store) = self.tier.borrow_mut().as_mut() {
            if store.contains(id) {
                let _ = store.take(id);
            }
        }
    }

    /// Allocates a fresh rematerialization-input block id.
    pub(crate) fn next_remat_id(&self) -> u64 {
        let id = self.remat_ids.get();
        self.remat_ids.set(id + 1);
        id
    }

    /// Drops every block the tier holds (stale cache invalidation). No-op
    /// when the tier is disabled.
    ///
    /// # Panics
    ///
    /// Panics (naming this rank) on tier IO failure.
    fn tier_clear(&self) {
        if let Some(store) = self.tier.borrow_mut().as_mut() {
            if let Err(e) = store.clear() {
                panic!("worker {}: clearing spill tier: {e}", self.rank());
            }
        }
    }

    /// Switches the exchange protocol. Must be invoked identically on
    /// every rank (SPMD) — a rank skipping sends its peer still expects
    /// would deadlock the rotation. Clears any cached stale blocks and
    /// resets the epoch state, so the next exchange starts fresh.
    pub fn set_protocol(&self, protocol: Protocol) {
        self.protocol.set(protocol);
        self.epoch_fresh.set(true);
        self.fetch_call.set(0);
        self.stale_cache.borrow_mut().clear();
        // Tiered stale blocks are invalidated with the cache. No remat
        // state is live at a protocol switch (it exists only between one
        // forward and its backward), so a full clear is safe.
        self.tier_clear();
    }

    /// Declares an epoch boundary for the staleness protocol: resets the
    /// within-epoch fetch-call counter, and — when `refresh` is true —
    /// drops the cached remote blocks so this epoch's exchanges fetch
    /// fresh data and repopulate the cache. Under [`Protocol::Stale`] the
    /// trainer passes `refresh = (epoch % r == 0)`; other protocols
    /// ignore staleness and any `refresh` value is fine.
    pub fn begin_epoch(&self, refresh: bool) {
        self.fetch_call.set(0);
        self.epoch_fresh.set(refresh);
        if refresh {
            self.stale_cache.borrow_mut().clear();
            self.tier_clear();
        }
    }

    /// The ranks this worker exchanges gradient blocks with during error
    /// routing, in receive order `p, p−1, …` — every rank under the exact
    /// and stale protocols (error routing stays exact under staleness),
    /// only this rank under [`Protocol::GradOnly`]. Callers that hand-roll
    /// a routing loop (the GAT backward pass) iterate this instead of
    /// `0..world()` so approximate protocols never wait on a gradient
    /// block no peer will send.
    pub fn grad_route_partners(&self) -> Vec<usize> {
        let n = self.world();
        let p = self.rank();
        match self.protocol.get() {
            Protocol::GradOnly => vec![p],
            Protocol::Exact | Protocol::Stale(_) => (0..n).map(|r| (p + n - r) % n).collect(),
        }
    }

    /// Gathers `rows` of `data` into a pooled buffer — the shared gather
    /// kernel of the serve path and the round-0 local block. The
    /// destination comes from the process-wide buffer pool, so
    /// steady-state rounds stop allocating once the pool is primed.
    fn gather_pooled(data: &Tensor, rows: &[usize], cols: usize) -> Vec<f32> {
        let src = data.data();
        let mut buf = buffer::take_f32(rows.len() * cols);
        for (out, &r) in buf.chunks_exact_mut(cols).zip(rows) {
            out.copy_from_slice(&src[r * cols..(r + 1) * cols]);
        }
        buf
    }

    /// Serves rows of `data` to worker `dst` under `tag`: gathers the rows
    /// `dst` needs from this worker into a pooled buffer and hands it to
    /// the transport's non-blocking send path (on TCP the frame encode and
    /// socket write run on the destination's writer thread, which recycles
    /// the buffer afterwards). The staging buffer is never registered with
    /// this worker's memory tracker — egress in flight is not resident
    /// state under the paper's accounting.
    // Helper of fetch_rounds, which opens the ForwardFetch/BackwardRefetch
    // scope before any serve.
    // sar-check: allow(phase-scope)
    fn serve(&self, data: &Tensor, dst: usize, tag: u64) {
        let buf = Worker::gather_pooled(data, self.graph.serve_table(dst), data.cols());
        self.ctx.send_nowait(dst, tag, Payload::F32(buf));
    }

    /// Fallible block receive: `needed_from(src)` rows of width `cols`
    /// from worker `src`. The received bytes are registered with *this*
    /// worker's memory tracker — fetched partitions count against this
    /// worker's peak, as in the paper's accounting.
    ///
    /// # Errors
    ///
    /// Whatever [`WorkerCtx::try_recv`] reports (timeout, disconnect, …),
    /// plus [`TransportError::Corrupt`] naming `src` if the block arrives
    /// with the wrong dtype or element count — a malformed peer frame
    /// becomes a clean nonzero exit instead of a process-poisoning panic.
    // Helper of fetch_rounds, which opens the ForwardFetch/BackwardRefetch
    // scope before any receive.
    // sar-check: allow(phase-scope)
    pub fn try_receive_block(
        &self,
        src: usize,
        tag: u64,
        cols: usize,
    ) -> Result<Tensor, TransportError> {
        let data = self.ctx.try_recv(src, tag)?.try_into_f32()?;
        let rows = self.graph.needed_from(src).len();
        if data.len() != rows * cols {
            return Err(TransportError::Corrupt {
                peer: src,
                detail: format!(
                    "fetched block has {} f32 elements, expected {rows} rows × {cols} cols = {}",
                    data.len(),
                    rows * cols
                ),
            });
        }
        Ok(Tensor::from_vec(&[rows, cols], data))
    }

    /// Panicking wrapper over [`Worker::try_receive_block`], naming the
    /// offending rank.
    fn receive_block(&self, src: usize, tag: u64, cols: usize) -> Tensor {
        self.try_receive_block(src, tag, cols).unwrap_or_else(|e| {
            panic!("worker {} fetching block from rank {src}: {e}", self.rank())
        })
    }

    /// The sequential rotation exchange of Algorithm 1, pipelined to depth
    /// `k = prefetch_depth`: fetches each partition's needed rows of
    /// `data`, invoking `consume(q, block)` per partition in the fixed
    /// rank order `p, p+1, …` regardless of arrival order — out-of-order
    /// frames are staged by the communication context and blocks are
    /// accumulated deterministically, so results are bitwise identical at
    /// every depth, thread count, and transport.
    ///
    /// The step sequence — which round serves which peer, how far serves
    /// and fetches run ahead of consumption, and the consumption order —
    /// comes verbatim from [`plan::fetch_steps`], the pure schedule the
    /// `sar-check` protocol verifier proves matched, deadlock-free, and
    /// within the `(k+2)/N` residency bound for every `(N, k)` it sweeps.
    /// This function only binds the plan to tensors and the transport.
    ///
    /// Round `r`: this worker serves partition `(p − r) mod N` and fetches
    /// from partition `(p + r) mod N`; round 0 is the local block,
    /// delivered as [`FetchedBlock::Local`] — no communication and no
    /// gathered copy, the consumer reads the resident features through the
    /// row table via the fused gather+aggregate kernels. Serves are issued
    /// eagerly on the non-blocking send path, and up to `k` fetched blocks
    /// are staged ahead of the one being consumed, so at most `k + 1`
    /// remote blocks are live alongside the local partition ⇒ the
    /// `(k+2)/N` memory bound (2/N at depth 0, the paper's 3/N at
    /// depth 1).
    ///
    /// `data` must have one row per local node.
    ///
    /// # Panics
    ///
    /// Panics if `data` has the wrong number of rows, or if a peer dies or
    /// sends a malformed block mid-exchange.
    pub fn fetch_rounds(&self, data: &Tensor, mut consume: impl FnMut(usize, FetchedBlock<'_>)) {
        let n = self.world();
        let p = self.rank();
        if data.rows() != self.graph.num_local() {
            panic!(
                "worker {p}: fetch_rounds data has {} rows, expected {} local nodes",
                data.rows(),
                self.graph.num_local()
            );
        }
        let cols = data.cols();
        // Tags are allocated unconditionally — approximate protocols skip
        // messages, not tags, so the SPMD tag streams stay aligned across
        // protocol phases (e.g. a stale epoch followed by a refresh).
        let tag = self.next_tag();
        // Ledger the rotation exchange as a forward fetch unless the
        // caller already declared a phase (the GAT backward pass runs this
        // same loop under BackwardRefetch).
        let _phase = (self.ctx.current_phase() == Phase::Other)
            .then(|| self.ctx.phase_scope(Phase::ForwardFetch));

        match self.protocol.get() {
            // Local-subgraph training: the rotation collapses to round 0.
            // Every rank skips the same serves and fetches, so no peer
            // waits on a message that will never come.
            Protocol::GradOnly => {
                consume(
                    p,
                    FetchedBlock::Local {
                        data,
                        rows: self.graph.needed_from(p),
                    },
                );
                return;
            }
            // Stale epoch: zero fetch-phase traffic. The local block is
            // read fresh from the resident tensor; remote blocks replay
            // from the refresh epoch's cache in rotation order — from RAM,
            // or faulted from the disk tier through the same depth-k
            // staging as a network fetch.
            Protocol::Stale(_) if !self.epoch_fresh.get() => {
                let call = self.fetch_call.get();
                self.fetch_call.set(call + 1);
                let tiered = {
                    let cache = self.stale_cache.borrow();
                    match cache.get(call) {
                        Some(StaleSlot::Ram(_)) => false,
                        Some(StaleSlot::Tiered { .. }) => true,
                        None => panic!(
                            "worker {p}: stale epoch fetch call #{call} has no cached \
                             refresh-epoch blocks ({} cached calls) — the SPMD call \
                             sequence diverged from the refresh epoch",
                            cache.len()
                        ),
                    }
                };
                if tiered {
                    self.replay_tiered(call, data, &mut consume);
                    return;
                }
                let cache = self.stale_cache.borrow();
                let Some(StaleSlot::Ram(blocks)) = cache.get(call) else {
                    panic!("worker {p}: stale cache slot #{call} changed kind mid-replay");
                };
                for r in 0..n {
                    let q = (p + r) % n;
                    if r == 0 {
                        consume(
                            q,
                            FetchedBlock::Local {
                                data,
                                rows: self.graph.needed_from(p),
                            },
                        );
                    } else {
                        consume(q, FetchedBlock::Remote(&blocks[r - 1]));
                    }
                }
                return;
            }
            Protocol::Exact | Protocol::Stale(_) => {}
        }
        // Refresh epochs keep each remote block after consumption instead
        // of recycling it, repopulating the cache slot for this call.
        // With the disk tier active, kept blocks go straight into the
        // tiered store (spilling past the budget) instead of RAM.
        let record = matches!(self.protocol.get(), Protocol::Stale(_));
        let tiered = record && self.tier_enabled();
        let call = self.fetch_call.get();
        let mut recorded: Vec<Tensor> = Vec::new();
        if tiered {
            // Re-recording over an existing tiered slot (e.g. a refresh
            // epoch revisiting a call index): drop the old tier blocks
            // before the walk puts new ones under the same ids.
            let old_rounds = match self.stale_cache.borrow().get(call) {
                Some(StaleSlot::Tiered { rounds }) => *rounds,
                _ => 0,
            };
            for r in 1..=old_rounds {
                self.tier_discard(stale_block_id(call, r));
            }
        }

        // Staged blocks, oldest first; the plan bounds the queue to
        // `min(k, n-1) + 1` entries. The local round stages no tensor —
        // `None` marks it and consumption reads `data` in place through
        // the row table. Remote blocks land in pooled buffers and are
        // recycled after consumption, so allocations are reused across
        // rounds, layers and epochs.
        let mut staged: VecDeque<(usize, Option<Tensor>)> = VecDeque::new();
        for step in plan::fetch_steps(n, p, self.prefetch_depth) {
            match step {
                FetchStep::GatherLocal => staged.push_back((p, None)),
                FetchStep::Serve { dst, .. } => self.serve(data, dst, tag),
                FetchStep::Fetch { src, .. } => {
                    staged.push_back((src, Some(self.receive_block(src, tag, cols))));
                }
                FetchStep::Consume { q } => {
                    let (staged_q, block) = staged.pop_front().unwrap_or_else(|| {
                        panic!("worker {p}: pipeline underrun consuming partition {q}")
                    });
                    debug_assert_eq!(staged_q, q, "plan consumption order diverged");
                    match block {
                        None => consume(
                            q,
                            FetchedBlock::Local {
                                data,
                                rows: self.graph.needed_from(p),
                            },
                        ),
                        Some(block) => {
                            consume(q, FetchedBlock::Remote(&block));
                            if tiered {
                                let round = (q + n - p) % n;
                                self.tier_put(
                                    stale_block_id(call, round),
                                    block,
                                    "stale cache block",
                                );
                            } else if record {
                                recorded.push(block);
                            } else {
                                buffer::recycle_f32(block.into_data());
                            }
                        }
                    }
                }
            }
        }
        if record {
            self.fetch_call.set(call + 1);
            let slot = if tiered {
                StaleSlot::Tiered { rounds: n - 1 }
            } else {
                StaleSlot::Ram(recorded)
            };
            let mut cache = self.stale_cache.borrow_mut();
            if call < cache.len() {
                cache[call] = slot;
            } else {
                cache.push(slot);
            }
        }
    }

    /// Replays fetch call `call` of a stale epoch out of the disk tier,
    /// walking the *same* depth-k schedule as a network exchange
    /// ([`plan::fetch_steps`]) with `Fetch` reinterpreted as a disk fault
    /// and `Serve` as a no-op: up to `k` faulted blocks are staged ahead
    /// of the one being consumed, so `--prefetch-depth` hides disk
    /// latency exactly as it hides network latency, and at most
    /// `min(k, n−1) + 1` staged blocks join the local partition in RAM —
    /// the (K+2)-blocks-in-RAM bound with the remainder on disk that
    /// `sar-check` proves over the full `(N, K)` sweep.
    ///
    /// Consumed blocks return to the tiered store for the next stale
    /// epoch; consumption order is the same fixed rotation as every other
    /// path, so results stay bitwise identical to the untiered replay.
    fn replay_tiered(
        &self,
        call: usize,
        data: &Tensor,
        consume: &mut impl FnMut(usize, FetchedBlock<'_>),
    ) {
        let n = self.world();
        let p = self.rank();
        let mut staged: VecDeque<(usize, Option<Tensor>)> = VecDeque::new();
        for step in plan::fetch_steps(n, p, self.prefetch_depth) {
            match step {
                FetchStep::GatherLocal => staged.push_back((p, None)),
                // A stale epoch is communication-free: nothing to serve.
                FetchStep::Serve { .. } => {}
                FetchStep::Fetch { round, src } => {
                    let block = self.tier_take(stale_block_id(call, round), "stale cache block");
                    staged.push_back((src, Some(block)));
                }
                FetchStep::Consume { q } => {
                    let (staged_q, block) = staged.pop_front().unwrap_or_else(|| {
                        panic!("worker {p}: pipeline underrun replaying partition {q}")
                    });
                    debug_assert_eq!(staged_q, q, "plan consumption order diverged");
                    match block {
                        None => consume(
                            q,
                            FetchedBlock::Local {
                                data,
                                rows: self.graph.needed_from(p),
                            },
                        ),
                        Some(block) => {
                            consume(q, FetchedBlock::Remote(&block));
                            // Back to the store for the next stale epoch.
                            let round = (q + n - p) % n;
                            self.tier_put(stale_block_id(call, round), block, "stale cache block");
                        }
                    }
                }
            }
        }
    }

    /// Scatter-style gradient return: sends one gradient block per peer
    /// (rows aligned with `needed_from(q)`), then accumulates the blocks
    /// received from all peers (rows aligned with `serves_to(q)`) into a
    /// `[num_local, cols]` tensor. This is the error-routing step of
    /// Algorithm 2 (`send error E_{p→q} to worker q`, then
    /// `E_p = Σ_q E_{q→p}`).
    ///
    /// The step sequence comes from [`plan::grad_steps`] — the same pure
    /// schedule the `sar-check` protocol verifier proves matched and
    /// deadlock-free: all sends go out on the non-blocking path before any
    /// receive, so peers' error blocks are in flight while this worker is
    /// still scattering — but accumulation runs in the fixed rank order
    /// `q = (p + n − r) mod N`, so the floating-point sum is bitwise
    /// identical at every pipeline depth and transport.
    ///
    /// `make_block(q)` must return the gradient for the rows fetched from
    /// `q` during the forward pass.
    pub fn exchange_grads(
        &self,
        cols: usize,
        mut make_block: impl FnMut(usize) -> Tensor,
    ) -> Tensor {
        let n = self.world();
        let p = self.rank();
        // Allocated even when gradonly skips the exchange — see
        // fetch_rounds on tag-stream alignment.
        let tag = self.next_tag();
        let _phase = self.ctx.phase_scope(Phase::GradRouting);
        let mut grad = Tensor::zeros(&[self.graph.num_local(), cols]);

        if self.protocol.get() == Protocol::GradOnly {
            // Local-subgraph training: only this worker's own error block
            // is accumulated; nothing is routed. Uniform across ranks, so
            // no peer blocks on a missing gradient block.
            let block = make_block(p);
            grad.scatter_add_rows(self.graph.needed_from(p), &block);
            buffer::recycle_f32(block.into_data());
            return grad;
        }

        for step in plan::grad_steps(n, p) {
            match step {
                GradStep::AccumulateLocal => {
                    // Local contribution (no communication).
                    let block = make_block(p);
                    grad.scatter_add_rows(self.graph.needed_from(p), &block);
                    buffer::recycle_f32(block.into_data());
                }
                GradStep::Send { dst } => {
                    let block = make_block(dst);
                    if block.rows() != self.graph.needed_from(dst).len() {
                        panic!(
                            "worker {p}: gradient block for rank {dst} has {} rows, \
                             expected {}",
                            block.rows(),
                            self.graph.needed_from(dst).len()
                        );
                    }
                    self.ctx
                        .send_nowait(dst, tag, Payload::F32(block.into_data()));
                }
                GradStep::Recv { src } => {
                    let rows = self.graph.serves_to(src);
                    let data = self
                        .ctx
                        .try_recv(src, tag)
                        .and_then(Payload::try_into_f32)
                        .and_then(|data| {
                            if data.len() == rows.len() * cols {
                                Ok(data)
                            } else {
                                Err(TransportError::Corrupt {
                                    peer: src,
                                    detail: format!(
                                        "gradient block has {} f32 elements, \
                                         expected {} rows × {cols} cols",
                                        data.len(),
                                        rows.len()
                                    ),
                                })
                            }
                        })
                        .unwrap_or_else(|e| {
                            panic!("worker {p} routing gradients from rank {src}: {e}")
                        });
                    let block = Tensor::from_vec(&[rows.len(), cols], data);
                    grad.scatter_add_rows(rows, &block);
                    buffer::recycle_f32(block.into_data());
                }
            }
        }
        grad
    }
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field("rank", &self.rank())
            .field("world", &self.world())
            .field("prefetch_depth", &self.prefetch_depth)
            .finish()
    }
}
