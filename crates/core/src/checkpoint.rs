//! Model checkpointing: save and restore the trainable parameters of a
//! [`DistModel`](crate::DistModel).
//!
//! Parameters are replicated across workers and
//! [`DistModel::params`](crate::DistModel::params) enumerates them in a
//! deterministic order, so a checkpoint taken on any worker restores the
//! whole replicated model — write from rank 0, load on every worker.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use sar_tensor::{Tensor, Var};

const MAGIC: &[u8; 4] = b"SARM";

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes the parameter list (shapes + values) to `writer`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_params<W: Write>(params: &[Var], writer: W) -> io::Result<()> {
    let raw: Vec<(Vec<usize>, Vec<f32>)> = params
        .iter()
        .map(|p| (p.shape(), p.value().data().to_vec()))
        .collect();
    save_raw_params(&raw, writer)
}

/// Writes raw `(shape, data)` parameter pairs — the representation a
/// [`RunReport`](crate::RunReport) carries in `final_params` — in the same
/// format as [`save_params`].
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_raw_params<W: Write>(params: &[(Vec<usize>, Vec<f32>)], writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&(params.len() as u64).to_le_bytes())?;
    for (shape, data) in params {
        w.write_all(&(shape.len() as u64).to_le_bytes())?;
        for &d in shape {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &v in data {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Restores parameter values written by [`save_params`] into `params`.
///
/// # Errors
///
/// Returns an error if the checkpoint does not match the parameter list
/// (count or shapes) or on I/O failure — `params` values are untouched on
/// error detection before the first mismatching entry, partially restored
/// after it; treat a failed load as fatal.
pub fn load_params<R: Read>(params: &[Var], reader: R) -> io::Result<()> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad_data("not a SAR model checkpoint"));
    }
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let count = u64::from_le_bytes(u64buf) as usize;
    if count != params.len() {
        return Err(bad_data(format!(
            "checkpoint has {count} parameters, model has {}",
            params.len()
        )));
    }
    for (i, p) in params.iter().enumerate() {
        r.read_exact(&mut u64buf)?;
        let rank = u64::from_le_bytes(u64buf) as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            r.read_exact(&mut u64buf)?;
            shape.push(u64::from_le_bytes(u64buf) as usize);
        }
        if shape != p.shape() {
            return Err(bad_data(format!(
                "parameter {i}: checkpoint shape {shape:?} != model shape {:?}",
                p.shape()
            )));
        }
        let numel: usize = shape.iter().product();
        let mut data = Vec::with_capacity(numel);
        let mut f32buf = [0u8; 4];
        for _ in 0..numel {
            r.read_exact(&mut f32buf)?;
            data.push(f32::from_le_bytes(f32buf));
        }
        p.set_value(Tensor::from_vec(&shape, data));
    }
    Ok(())
}

/// Convenience: saves parameters to a file path.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_params_file(params: &[Var], path: impl AsRef<Path>) -> io::Result<()> {
    save_params(params, std::fs::File::create(path)?)
}

/// Convenience: loads parameters from a file path.
///
/// # Errors
///
/// Returns any underlying I/O error or format error.
pub fn load_params_file(params: &[Var], path: impl AsRef<Path>) -> io::Result<()> {
    load_params(params, std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Arch, DistModel, Mode, ModelConfig};

    fn model(seed: u64) -> DistModel {
        DistModel::new(&ModelConfig {
            arch: Arch::Gat {
                head_dim: 3,
                heads: 2,
            },
            mode: Mode::Sar,
            layers: 2,
            in_dim: 7,
            num_classes: 4,
            dropout: 0.0,
            batch_norm: true,
            jumping_knowledge: false,
            seed,
        })
    }

    #[test]
    fn round_trip_restores_exact_values() {
        let a = model(1);
        let b = model(2); // different init
        let mut buf = Vec::new();
        save_params(&a.params(), &mut buf).unwrap();
        load_params(&b.params(), &buf[..]).unwrap();
        for (pa, pb) in a.params().iter().zip(b.params()) {
            assert_eq!(*pa.value(), *pb.value());
        }
    }

    #[test]
    fn rejects_wrong_magic_and_mismatched_models() {
        let a = model(1);
        assert!(load_params(&a.params(), &b"BOGUS..."[..]).is_err());
        // A model with different shapes cannot load this checkpoint.
        let mut buf = Vec::new();
        save_params(&a.params(), &mut buf).unwrap();
        let other = DistModel::new(&ModelConfig {
            arch: Arch::GraphSage { hidden: 5 },
            mode: Mode::Sar,
            layers: 2,
            in_dim: 7,
            num_classes: 4,
            dropout: 0.0,
            batch_norm: false,
            jumping_knowledge: false,
            seed: 0,
        });
        assert!(load_params(&other.params(), &buf[..]).is_err());
    }

    fn raw(m: &DistModel) -> Vec<(Vec<usize>, Vec<f32>)> {
        m.params()
            .iter()
            .map(|p| (p.shape(), p.value().data().to_vec()))
            .collect()
    }

    #[test]
    fn raw_params_round_trip_is_bitwise() {
        let a = model(5);
        let mut buf = Vec::new();
        save_raw_params(&raw(&a), &mut buf).unwrap();
        let b = model(6);
        load_params(&b.params(), &buf[..]).unwrap();
        for (pa, pb) in a.params().iter().zip(b.params()) {
            let (va, vb) = (pa.value(), pb.value());
            assert_eq!(va.shape(), vb.shape());
            for (x, y) in va.data().iter().zip(vb.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn truncated_checkpoint_is_an_error_not_a_panic() {
        let a = model(7);
        let mut buf = Vec::new();
        save_params(&a.params(), &mut buf).unwrap();
        // Cut the stream at several depths: inside the header, inside a
        // shape, and inside a parameter's data.
        for cut in [2, 10, 40, buf.len() - 3] {
            let b = model(8);
            let err =
                load_params(&b.params(), &buf[..cut]).expect_err("truncated checkpoint must fail");
            assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "cut={cut}");
        }
    }

    #[test]
    fn bad_magic_is_named_invalid_data() {
        let a = model(9);
        let mut buf = Vec::new();
        save_params(&a.params(), &mut buf).unwrap();
        buf[0] = b'X';
        let err = load_params(&a.params(), &buf[..]).expect_err("bad magic must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("not a SAR model checkpoint"),
            "error should name the format: {err}"
        );
    }

    #[test]
    fn wrong_parameter_count_is_named_invalid_data() {
        let a = model(10);
        let mut buf = Vec::new();
        save_params(&a.params()[..3], &mut buf).unwrap();
        let err = load_params(&a.params(), &buf[..]).expect_err("count mismatch must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("checkpoint has 3 parameters"),
            "error should name both counts: {err}"
        );
    }

    #[test]
    fn file_round_trip() {
        let a = model(3);
        let path = std::env::temp_dir().join("sar_checkpoint_test.bin");
        save_params_file(&a.params(), &path).unwrap();
        let b = model(4);
        load_params_file(&b.params(), &path).unwrap();
        assert_eq!(*a.params()[0].value(), *b.params()[0].value());
        let _ = std::fs::remove_file(&path);
    }
}
