//! Tests of the extension features beyond the paper's two models: the GCN
//! architecture (another case-1 aggregation) and jumping-knowledge skip
//! connections (§2 notes prior full-batch systems are "specific to linear
//! GNN topologies" — SAR, and this reproduction, are not).

use sar_comm::CostModel;
use sar_core::{train, Arch, Mode, ModelConfig, TrainConfig};
use sar_graph::datasets;
use sar_nn::LrSchedule;
use sar_partition::multilevel;

fn cfg(arch: Arch, mode: Mode, classes: usize, jk: bool) -> TrainConfig {
    TrainConfig {
        model: ModelConfig {
            arch,
            mode,
            layers: 2,
            in_dim: 0,
            num_classes: classes,
            dropout: 0.0,
            batch_norm: true,
            jumping_knowledge: jk,
            seed: 0,
        },
        epochs: 6,
        lr: 0.02,
        schedule: LrSchedule::Constant,
        label_aug: false,
        aug_frac: 0.0,
        cs: None,
        prefetch_depth: 0,
        seed: 0,
        threads: 1,
        protocol: Default::default(),
        codec: Default::default(),
        mem_budget: 0,
    }
}

#[test]
fn gcn_trains_and_is_exact_across_worker_counts() {
    let d = datasets::products_like(350, 0);
    let c = cfg(Arch::Gcn { hidden: 16 }, Mode::Sar, d.num_classes, false);
    let single = train(&d, &multilevel(&d.graph, 1, 0), CostModel::default(), &c);
    let multi = train(&d, &multilevel(&d.graph, 4, 0), CostModel::default(), &c);
    for (e, (a, b)) in single.losses.iter().zip(&multi.losses).enumerate() {
        assert!(
            (a - b).abs() < 3e-3 * (1.0 + a.abs()),
            "epoch {e}: GCN loss {a} vs {b}"
        );
    }
    assert!(
        single.losses.last().unwrap() < &single.losses[0],
        "GCN must learn"
    );
}

#[test]
fn gcn_modes_agree() {
    let d = datasets::products_like(300, 1);
    let p = multilevel(&d.graph, 3, 1);
    let dp = train(
        &d,
        &p,
        CostModel::default(),
        &cfg(
            Arch::Gcn { hidden: 12 },
            Mode::DomainParallel,
            d.num_classes,
            false,
        ),
    );
    let sar = train(
        &d,
        &p,
        CostModel::default(),
        &cfg(Arch::Gcn { hidden: 12 }, Mode::Sar, d.num_classes, false),
    );
    assert!(
        dp.logits.allclose(&sar.logits, 5e-2),
        "GCN domain-parallel and SAR diverged"
    );
}

#[test]
fn jumping_knowledge_is_exact_across_worker_counts() {
    // Skip connections create a non-linear tape topology: every layer's
    // output feeds both the next layer and the final classifier. SAR must
    // route gradients through all of it exactly.
    let d = datasets::products_like(350, 2);
    let c = cfg(
        Arch::GraphSage { hidden: 16 },
        Mode::Sar,
        d.num_classes,
        true,
    );
    let single = train(&d, &multilevel(&d.graph, 1, 2), CostModel::default(), &c);
    let multi = train(&d, &multilevel(&d.graph, 3, 2), CostModel::default(), &c);
    for (e, (a, b)) in single.losses.iter().zip(&multi.losses).enumerate() {
        assert!(
            (a - b).abs() < 3e-3 * (1.0 + a.abs()),
            "epoch {e}: JK loss {a} vs {b}"
        );
    }
}

#[test]
fn jumping_knowledge_gat_trains_under_fused_sar() {
    let d = datasets::products_like(300, 3);
    let c = cfg(
        Arch::Gat {
            head_dim: 4,
            heads: 2,
        },
        Mode::SarFused,
        d.num_classes,
        true,
    );
    let run = train(&d, &multilevel(&d.graph, 2, 3), CostModel::default(), &c);
    assert!(run.losses.iter().all(|l| l.is_finite()));
    assert!(
        run.losses.last().unwrap() < &run.losses[0],
        "JK-GAT must learn: {:?}",
        run.losses
    );
    assert_eq!(run.logits.cols(), d.num_classes);
}

#[test]
fn jk_output_width_is_num_classes() {
    let d = datasets::products_like(200, 4);
    for jk in [false, true] {
        let c = cfg(Arch::Gcn { hidden: 8 }, Mode::Sar, d.num_classes, jk);
        let run = train(&d, &multilevel(&d.graph, 2, 4), CostModel::default(), &c);
        assert_eq!(run.logits.shape(), &[200, d.num_classes], "jk={jk}");
    }
}

#[test]
fn checkpoint_then_infer_reproduces_training_logits() {
    use sar_core::{checkpoint, inference};
    let d = datasets::products_like(300, 7);
    let part = multilevel(&d.graph, 3, 7);
    let mut c = cfg(
        Arch::GraphSage { hidden: 12 },
        Mode::Sar,
        d.num_classes,
        false,
    );
    c.label_aug = true;
    c.aug_frac = 0.5;
    let run = train(&d, &part, CostModel::default(), &c);

    // Round-trip the trained parameters through the binary checkpoint.
    let mut buf = Vec::new();
    checkpoint::save_raw_params(&run.final_params, &mut buf).unwrap();
    let model_cfg = {
        let mut m = c.model.clone();
        m.in_dim = d.feat_dim() + d.num_classes;
        m
    };
    let model = sar_core::DistModel::new(&model_cfg);
    checkpoint::load_params(&model.params(), &buf[..]).unwrap();
    let restored: Vec<(Vec<usize>, Vec<f32>)> = model
        .params()
        .iter()
        .map(|p| (p.shape(), p.value().data().to_vec()))
        .collect();

    // Inference with restored params — on a *different* partitioning —
    // must reproduce the training-time evaluation logits.
    let other_part = multilevel(&d.graph, 2, 99);
    let logits = inference::infer(
        &d,
        &other_part,
        CostModel::default(),
        &c.model,
        &restored,
        true,
    );
    assert!(
        logits.allclose(&run.logits, 1e-3),
        "restored inference diverged from training-time logits"
    );
}

#[test]
fn spatial_conv1d_matches_single_machine_reference() {
    // The conclusion's generality claim: SAR drives a spatially-parallel
    // 1-D convolution. Compare against a dense single-machine reference,
    // forward and backward, on 3 workers with contiguous strips.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sar_comm::Cluster;
    use sar_core::spatial::{build_conv1d_graphs, shift_graph, DistConv1d};
    use sar_core::Worker;
    use sar_graph::ops;
    use sar_partition::{range, Partitioning};
    use sar_tensor::{init, Tensor, Var};
    use std::rc::Rc;
    use std::sync::Arc;

    let len = 30usize;
    let (cin, cout, radius) = (3usize, 2usize, 1usize);
    let x = init::randn(&[len, cin], 1.0, &mut StdRng::seed_from_u64(0));
    let grad_out = init::randn(&[len, cout], 1.0, &mut StdRng::seed_from_u64(1));

    // Single-machine reference via shift graphs on the full domain.
    let conv_ref = DistConv1d::new(cin, cout, radius, &mut StdRng::seed_from_u64(42));
    let weights: Vec<Tensor> = conv_ref.params().iter().map(|p| p.value_clone()).collect();
    let mut expect = Tensor::zeros(&[len, cout]);
    for (t, k) in (-(radius as isize)..=radius as isize).enumerate() {
        let g = shift_graph(len, k);
        // params() order: [w0, w1, b1, w2] (only the center tap has bias).
        let w_idx = match t {
            0 => 0,
            1 => 1,
            _ => t + 1,
        };
        let z = x.matmul(&weights[w_idx]);
        expect.add_assign(&ops::spmm_sum(&g, &z));
    }
    // Center bias.
    let bias = &weights[2];
    expect = expect.add_row_broadcast(bias);

    // Distributed: contiguous strips over 3 workers.
    let dummy = shift_graph(len, 0);
    let part: Partitioning = range(&dummy, 3);
    let graphs = Arc::new(build_conv1d_graphs(len, radius, &part));
    let xs = Arc::new(x.data().to_vec());
    let gos = Arc::new(grad_out.data().to_vec());
    let members = Arc::new(part.part_members());

    let outcomes = Cluster::new(3, CostModel::default()).run(move |ctx| {
        let rank = ctx.rank();
        let ids = members[rank].clone();
        let ctx = Rc::new(ctx);
        let workers: Vec<Rc<Worker>> = graphs
            .iter()
            .enumerate()
            .map(|(t, per_rank)| {
                Worker::with_shared_ctx(Rc::clone(&ctx), Arc::clone(&per_rank[rank]), t as u64 + 1)
            })
            .collect();
        let conv = DistConv1d::new(cin, cout, radius, &mut StdRng::seed_from_u64(42));
        let full_x = Tensor::from_vec(&[len, cin], xs.as_ref().clone());
        let full_g = Tensor::from_vec(&[len, cout], gos.as_ref().clone());
        let h = Var::parameter(full_x.gather_rows(&ids));
        let out = conv.forward(&workers, &h);
        let value = out.value_clone();
        out.backward_with(&full_g.gather_rows(&ids));
        (ids, value.into_data(), h.grad().unwrap().into_data())
    });

    let mut got = Tensor::zeros(&[len, cout]);
    let mut dx = Tensor::zeros(&[len, cin]);
    for o in &outcomes {
        let (ids, val, g) = &o.result;
        got.scatter_add_rows(ids, &Tensor::from_vec(&[ids.len(), cout], val.clone()));
        dx.scatter_add_rows(ids, &Tensor::from_vec(&[ids.len(), cin], g.clone()));
    }
    assert!(got.allclose(&expect, 1e-4), "spatial conv forward mismatch");

    // Backward reference: dx[j] = Σ_k grad[j - k] W_kᵀ.
    let mut dx_expect = Tensor::zeros(&[len, cin]);
    for (t, k) in (-(radius as isize)..=radius as isize).enumerate() {
        let g = shift_graph(len, k);
        let w_idx = match t {
            0 => 0,
            1 => 1,
            _ => t + 1,
        };
        let pushed = ops::spmm_sum_backward(&g, &grad_out);
        dx_expect.add_assign(&pushed.matmul_nt(&weights[w_idx]));
    }
    assert!(
        dx.allclose(&dx_expect, 1e-4),
        "spatial conv backward mismatch"
    );
}
