//! End-to-end distributed training tests: exactness across worker counts,
//! learning progress, distributed batch norm and C&S correctness, and the
//! SAR-vs-domain-parallel memory ordering.

use std::rc::Rc;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sar_comm::{Cluster, CostModel};
use sar_core::{
    dist_cs::dist_correct_and_smooth, train, Arch, DistBatchNorm, DistGraph, Mode, ModelConfig,
    Shard, TrainConfig, Worker,
};
use sar_graph::{datasets, Dataset};
use sar_nn::{correct_and_smooth, BatchNorm1d, CsConfig, LrSchedule};
use sar_partition::{multilevel, random};
use sar_tensor::{init, Tensor, Var};

fn small_dataset() -> Dataset {
    datasets::products_like(400, 0)
}

fn quick_config(arch: Arch, mode: Mode) -> TrainConfig {
    TrainConfig {
        model: ModelConfig {
            arch,
            mode,
            layers: 2,
            in_dim: 0, // set by trainer
            num_classes: 0,
            dropout: 0.0, // keep runs deterministic across worker counts
            batch_norm: true,
            jumping_knowledge: false,
            seed: 3,
        },
        epochs: 8,
        lr: 0.01,
        schedule: LrSchedule::Constant,
        label_aug: false,
        aug_frac: 0.0,
        cs: None,
        prefetch_depth: 0,
        seed: 3,
        threads: 1,
        protocol: Default::default(),
        codec: Default::default(),
        mem_budget: 0,
    }
}

fn with_classes(mut cfg: TrainConfig, d: &Dataset) -> TrainConfig {
    cfg.model.num_classes = d.num_classes;
    cfg
}

#[test]
fn sage_training_is_exact_across_worker_counts() {
    let d = small_dataset();
    let cfg = with_classes(quick_config(Arch::GraphSage { hidden: 16 }, Mode::Sar), &d);
    let single = train(&d, &multilevel(&d.graph, 1, 0), CostModel::default(), &cfg);
    for world in [2usize, 4] {
        let multi = train(
            &d,
            &multilevel(&d.graph, world, 0),
            CostModel::default(),
            &cfg,
        );
        for (e, (a, b)) in single.losses.iter().zip(&multi.losses).enumerate() {
            assert!(
                (a - b).abs() < 2e-3 * (1.0 + a.abs()),
                "world {world}, epoch {e}: loss {a} vs {b}"
            );
        }
        assert!(
            multi.logits.allclose(&single.logits, 5e-2),
            "world {world}: final logits diverged"
        );
    }
}

#[test]
fn gat_training_is_exact_across_worker_counts() {
    let d = small_dataset();
    let cfg = with_classes(
        quick_config(
            Arch::Gat {
                head_dim: 8,
                heads: 2,
            },
            Mode::SarFused,
        ),
        &d,
    );
    let single = train(&d, &multilevel(&d.graph, 1, 0), CostModel::default(), &cfg);
    let multi = train(&d, &multilevel(&d.graph, 3, 0), CostModel::default(), &cfg);
    for (e, (a, b)) in single.losses.iter().zip(&multi.losses).enumerate() {
        assert!(
            (a - b).abs() < 5e-3 * (1.0 + a.abs()),
            "epoch {e}: loss {a} vs {b}"
        );
    }
}

#[test]
fn all_modes_agree_on_gat() {
    // Domain-parallel, SAR and SAR+FAK are different execution strategies
    // for the same mathematics: same losses, same logits.
    let d = small_dataset();
    let part = multilevel(&d.graph, 3, 1);
    let base = with_classes(
        quick_config(
            Arch::Gat {
                head_dim: 8,
                heads: 2,
            },
            Mode::Sar,
        ),
        &d,
    );
    let mut runs = Vec::new();
    for mode in [Mode::DomainParallel, Mode::Sar, Mode::SarFused] {
        let mut cfg = base.clone();
        cfg.model.mode = mode;
        runs.push((mode, train(&d, &part, CostModel::default(), &cfg)));
    }
    let (_, reference) = &runs[0];
    for (mode, run) in &runs[1..] {
        for (e, (a, b)) in reference.losses.iter().zip(&run.losses).enumerate() {
            assert!(
                (a - b).abs() < 5e-3 * (1.0 + a.abs()),
                "{mode:?} epoch {e}: loss {a} vs {b}"
            );
        }
        assert!(
            run.logits.allclose(&reference.logits, 5e-2),
            "{mode:?}: logits diverged from domain-parallel"
        );
    }
}

#[test]
fn training_learns_beyond_majority_class() {
    let d = small_dataset();
    let mut cfg = with_classes(quick_config(Arch::GraphSage { hidden: 32 }, Mode::Sar), &d);
    cfg.epochs = 40;
    cfg.lr = 0.02;
    cfg.label_aug = true;
    cfg.aug_frac = 0.5;
    cfg.cs = Some(CsConfig::default());
    let run = train(&d, &multilevel(&d.graph, 2, 2), CostModel::default(), &cfg);
    assert!(
        run.losses.last().unwrap() < &(run.losses[0] * 0.7),
        "loss should drop: {:?} -> {:?}",
        run.losses.first(),
        run.losses.last()
    );
    let floor = d.majority_class_fraction();
    assert!(
        run.test_acc > floor + 0.1,
        "test accuracy {} should beat majority-class floor {floor}",
        run.test_acc
    );
    // C&S should not hurt (and usually helps on homophilous graphs).
    let cs = run.test_acc_cs.expect("C&S ran");
    assert!(
        cs > run.test_acc - 0.02,
        "C&S degraded accuracy: {} -> {cs}",
        run.test_acc
    );
}

#[test]
fn label_augmentation_improves_over_plain_training() {
    let d = small_dataset();
    let mut plain = with_classes(quick_config(Arch::GraphSage { hidden: 32 }, Mode::Sar), &d);
    plain.epochs = 30;
    plain.lr = 0.02;
    let mut aug = plain.clone();
    aug.label_aug = true;
    aug.aug_frac = 0.5;
    let part = multilevel(&d.graph, 2, 3);
    let run_plain = train(&d, &part, CostModel::default(), &plain);
    let run_aug = train(&d, &part, CostModel::default(), &aug);
    // Label augmentation adds the label-propagation signal; on a
    // homophilous graph it must not hurt materially.
    assert!(
        run_aug.test_acc > run_plain.test_acc - 0.05,
        "label aug collapsed: {} vs {}",
        run_aug.test_acc,
        run_plain.test_acc
    );
}

#[test]
fn sar_uses_less_memory_than_domain_parallel_for_gat() {
    let d = datasets::products_like(600, 4);
    let part = random(&d.graph, 6, 5); // random partition ⇒ big halo
    let base = with_classes(
        quick_config(
            Arch::Gat {
                head_dim: 16,
                heads: 4,
            },
            Mode::Sar,
        ),
        &d,
    );
    let mut dp_cfg = base.clone();
    dp_cfg.model.mode = Mode::DomainParallel;
    dp_cfg.epochs = 2;
    let mut sar_cfg = base.clone();
    sar_cfg.model.mode = Mode::SarFused;
    sar_cfg.epochs = 2;

    let dp = train(&d, &part, CostModel::default(), &dp_cfg);
    let sar = train(&d, &part, CostModel::default(), &sar_cfg);
    assert!(
        sar.max_peak_bytes() < dp.max_peak_bytes(),
        "SAR peak {} should be below domain-parallel peak {}",
        sar.max_peak_bytes(),
        dp.max_peak_bytes()
    );
}

#[test]
fn gat_sar_sends_more_bytes_than_domain_parallel() {
    // Case 2 refetches features in the backward pass: ~50% more traffic.
    let d = datasets::products_like(500, 6);
    let part = multilevel(&d.graph, 4, 6);
    let base = with_classes(
        quick_config(
            Arch::Gat {
                head_dim: 8,
                heads: 2,
            },
            Mode::Sar,
        ),
        &d,
    );
    let mut dp_cfg = base.clone();
    dp_cfg.model.mode = Mode::DomainParallel;
    dp_cfg.epochs = 2;
    dp_cfg.model.batch_norm = false;
    let mut sar_cfg = dp_cfg.clone();
    sar_cfg.model.mode = Mode::SarFused;

    let dp = train(&d, &part, CostModel::default(), &dp_cfg);
    let sar = train(&d, &part, CostModel::default(), &sar_cfg);
    let ratio = sar.total_sent_bytes as f64 / dp.total_sent_bytes as f64;
    assert!(
        ratio > 1.2 && ratio < 1.8,
        "expected ~1.5x traffic for SAR GAT, got {ratio:.2}x ({} vs {})",
        sar.total_sent_bytes,
        dp.total_sent_bytes
    );
}

#[test]
fn sage_sar_traffic_matches_domain_parallel() {
    // Case 1 adds no communication: fetch volume forward + grads backward
    // in both modes.
    let d = datasets::products_like(500, 7);
    let part = multilevel(&d.graph, 4, 7);
    let mut dp_cfg = with_classes(
        quick_config(Arch::GraphSage { hidden: 16 }, Mode::DomainParallel),
        &d,
    );
    dp_cfg.epochs = 2;
    dp_cfg.model.batch_norm = false;
    let mut sar_cfg = dp_cfg.clone();
    sar_cfg.model.mode = Mode::Sar;

    let dp = train(&d, &part, CostModel::default(), &dp_cfg);
    let sar = train(&d, &part, CostModel::default(), &sar_cfg);
    let ratio = sar.total_sent_bytes as f64 / dp.total_sent_bytes as f64;
    assert!(
        (ratio - 1.0).abs() < 0.05,
        "GraphSage SAR should move the same bytes as domain-parallel, got {ratio:.3}x"
    );
}

#[test]
fn distributed_batchnorm_matches_single_machine() {
    let n = 50;
    let f = 6;
    let x = init::randn(&[n, f], 2.0, &mut StdRng::seed_from_u64(8)).add_scalar(1.5);
    let grad = init::randn(&[n, f], 1.0, &mut StdRng::seed_from_u64(9));

    // Single-machine reference via the local BatchNorm layer.
    let xv = Var::parameter(x.clone());
    let mut bn = BatchNorm1d::new(f);
    let y = bn.forward(&xv, true);
    let ref_out = y.value_clone();
    y.backward_with(&grad);
    let ref_dx = xv.grad().unwrap();

    // Distributed: rows split across 3 workers (unevenly).
    let g = sar_graph::generators::erdos_renyi(n, 10, &mut StdRng::seed_from_u64(1)).symmetrize();
    let assignment: Vec<u32> = (0..n)
        .map(|i| {
            if i < 10 {
                0
            } else if i < 22 {
                1
            } else {
                2
            }
        })
        .collect();
    let part = sar_partition::Partitioning::new(3, assignment);
    let graphs: Arc<Vec<Arc<DistGraph>>> = Arc::new(
        DistGraph::build_all(&g, &part)
            .into_iter()
            .map(Arc::new)
            .collect(),
    );
    let xs = Arc::new(x.data().to_vec());
    let gs = Arc::new(grad.data().to_vec());
    let outcomes = Cluster::new(3, CostModel::default()).run(move |ctx| {
        let graph = Arc::clone(&graphs[ctx.rank()]);
        let ids = graph.local_nodes().to_vec();
        let full_x = Tensor::from_vec(&[n, f], xs.as_ref().clone());
        let full_g = Tensor::from_vec(&[n, f], gs.as_ref().clone());
        let xv = Var::parameter(full_x.gather_rows(&ids));
        let w = Worker::new(ctx, graph);
        let bn = DistBatchNorm::new(f);
        let y = bn.forward(&w, &xv);
        let out = y.value_clone();
        y.backward_with(&full_g.gather_rows(&ids));
        (ids, out.into_data(), xv.grad().unwrap().into_data())
    });

    let mut out = Tensor::zeros(&[n, f]);
    let mut dx = Tensor::zeros(&[n, f]);
    for o in &outcomes {
        let ids = &o.result.0;
        out.scatter_add_rows(ids, &Tensor::from_vec(&[ids.len(), f], o.result.1.clone()));
        dx.scatter_add_rows(ids, &Tensor::from_vec(&[ids.len(), f], o.result.2.clone()));
    }
    assert!(out.allclose(&ref_out, 1e-3), "BN forward mismatch");
    assert!(dx.allclose(&ref_dx, 1e-3), "BN backward mismatch");
}

#[test]
fn distributed_cs_matches_single_machine() {
    let d = datasets::products_like(300, 10);
    let probs = init::uniform(
        &[300, d.num_classes],
        0.0,
        1.0,
        &mut StdRng::seed_from_u64(11),
    )
    .softmax_rows();
    let cfg = CsConfig::default();
    let reference = correct_and_smooth(&d.graph, &probs, &d.labels, &d.train_mask, &cfg);

    let part = multilevel(&d.graph, 4, 12);
    let graphs: Arc<Vec<Arc<DistGraph>>> = Arc::new(
        DistGraph::build_all(&d.graph, &part)
            .into_iter()
            .map(Arc::new)
            .collect(),
    );
    let shards = Arc::new(Shard::build_all(&d, &part));
    let ps = Arc::new(probs.data().to_vec());
    let c = d.num_classes;
    let outcomes = Cluster::new(4, CostModel::default()).run(move |ctx| {
        let rank = ctx.rank();
        let graph = Arc::clone(&graphs[rank]);
        let shard = &shards[rank];
        let ids = graph.local_nodes().to_vec();
        let full_p = Tensor::from_vec(&[300, c], ps.as_ref().clone());
        let local_p = full_p.gather_rows(&ids);
        let w = Worker::new(ctx, graph);
        let w = Rc::clone(&w);
        let out = dist_correct_and_smooth(
            &w,
            &local_p,
            &shard.labels,
            &shard.train_mask,
            &CsConfig::default(),
        );
        (ids, out.into_data())
    });
    let mut out = Tensor::zeros(&[300, c]);
    for o in &outcomes {
        let ids = &o.result.0;
        out.scatter_add_rows(ids, &Tensor::from_vec(&[ids.len(), c], o.result.1.clone()));
    }
    assert!(out.allclose(&reference, 1e-3), "distributed C&S mismatch");
}
