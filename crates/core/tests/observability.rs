//! Ledger-level verification of the paper's communication and memory
//! claims, measured by the per-phase observability layer:
//!
//! * Algorithm 2, case 1 — GraphSage's backward pass adds **zero** fetch
//!   bytes (no rematerialization traffic).
//! * Algorithm 2, case 2 — GAT's backward pass re-fetches exactly what
//!   the forward pass fetched, making its total volume 1.5× GraphSage's
//!   (the paper's "50% communication overhead").
//! * §3.4 — prefetching raises the fetch-loop memory peak from 2 blocks
//!   (the paper's 2/N bound) to 3 blocks (3/N).
//!
//! All tests run on a complete graph split into equal range partitions,
//! so every fetch/serve set is one full partition and the expected
//! volumes are exact.

use std::sync::Arc;

use sar_comm::{Cluster, CommStats, CostModel, Phase};
use sar_core::{gat_aggregate, sage_aggregate, DistGraph, FakMode, Worker};
use sar_graph::CsrGraph;
use sar_partition::range;
use sar_tensor::{Tensor, Var};

const WORLD: usize = 4;
const PER_PART: usize = 32;
const HEADS: usize = 2;
const COLS: usize = 16; // = HEADS * head_dim for the GAT runs
const LAYER: u16 = 3;

/// Complete directed graph on `WORLD * PER_PART` nodes: every partition
/// needs every other partition in full, so each fetched block is exactly
/// `PER_PART` rows.
fn dist_graphs() -> Vec<Arc<DistGraph>> {
    let n = WORLD * PER_PART;
    let mut edges = Vec::with_capacity(n * (n - 1));
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v {
                edges.push((u, v));
            }
        }
    }
    let g = CsrGraph::from_edges(n, &edges);
    let part = range(&g, WORLD);
    DistGraph::build_all(&g, &part)
        .into_iter()
        .map(Arc::new)
        .collect()
}

/// One forward + backward through `sage_aggregate`, returning each
/// worker's communication statistics.
fn run_sage() -> Vec<CommStats> {
    let graphs = Arc::new(dist_graphs());
    let out = Cluster::new(WORLD, CostModel::default()).run(move |ctx| {
        let rank = ctx.rank();
        let w = Worker::new(ctx, Arc::clone(&graphs[rank]));
        let z = Var::parameter(Tensor::full(
            &[w.graph.num_local(), COLS],
            0.1 * (rank as f32 + 1.0),
        ));
        let agg = {
            let _layer = w.ctx.layer_scope(LAYER);
            sage_aggregate(&w, &z)
        };
        agg.sum().backward();
    });
    out.into_iter().map(|o| o.comm).collect()
}

/// One forward + backward through `gat_aggregate` (fused kernels).
fn run_gat() -> Vec<CommStats> {
    let graphs = Arc::new(dist_graphs());
    let out = Cluster::new(WORLD, CostModel::default()).run(move |ctx| {
        let rank = ctx.rank();
        let w = Worker::new(ctx, Arc::clone(&graphs[rank]));
        let n_local = w.graph.num_local();
        let z = Var::parameter(Tensor::full(&[n_local, COLS], 0.1 * (rank as f32 + 1.0)));
        let s_dst = Var::parameter(Tensor::full(&[n_local, HEADS], 0.05));
        let a_src = Var::parameter(Tensor::full(&[COLS], 0.02));
        let agg = {
            let _layer = w.ctx.layer_scope(LAYER);
            gat_aggregate(&w, &z, &s_dst, &a_src, HEADS, 0.2, FakMode::Fused)
        };
        agg.sum().backward();
    });
    out.into_iter().map(|o| o.comm).collect()
}

fn phase_recv(stats: &CommStats, phase: Phase) -> u64 {
    stats.ledger.phase_total(phase).recv_bytes
}

#[test]
fn sage_backward_adds_zero_fetch_bytes() {
    let graphs = dist_graphs();
    for (rank, s) in run_sage().iter().enumerate() {
        let fetch = phase_recv(s, Phase::ForwardFetch);
        let refetch = s.ledger.phase_total(Phase::BackwardRefetch);
        let route = phase_recv(s, Phase::GradRouting);
        assert!(fetch > 0, "rank {rank}: forward must fetch remote features");
        // Case 1: rematerialization-free backward — not one byte of
        // feature traffic beyond the error routing.
        assert_eq!(
            refetch.recv_bytes, 0,
            "rank {rank}: sage backward refetched"
        );
        assert_eq!(
            refetch.sent_bytes, 0,
            "rank {rank}: sage backward served a refetch"
        );
        // The ledger must agree with the volumes predicted from the
        // partition structure alone.
        assert_eq!(
            fetch,
            graphs[rank].predicted_fetch_bytes(COLS),
            "rank {rank}: forward-fetch volume"
        );
        assert_eq!(
            route,
            graphs[rank].predicted_grad_route_bytes(COLS),
            "rank {rank}: grad-routing volume"
        );
    }
}

#[test]
fn gat_backward_refetches_exactly_the_forward_volume() {
    let graphs = dist_graphs();
    for (rank, s) in run_gat().iter().enumerate() {
        let fetch = phase_recv(s, Phase::ForwardFetch);
        let refetch = phase_recv(s, Phase::BackwardRefetch);
        let route = phase_recv(s, Phase::GradRouting);
        assert!(fetch > 0, "rank {rank}: forward must fetch remote features");
        // Case 2: the backward pass re-fetches the same z rows the
        // forward pass fetched — byte for byte.
        assert_eq!(refetch, fetch, "rank {rank}: refetch != forward fetch");
        assert_eq!(
            fetch,
            graphs[rank].predicted_fetch_bytes(COLS),
            "rank {rank}: forward-fetch volume"
        );
        assert_eq!(
            route,
            graphs[rank].predicted_grad_route_bytes(COLS),
            "rank {rank}: grad-routing volume"
        );
        // The attention-parameter all-reduce is collective traffic, kept
        // out of the refetch/routing cells.
        assert!(
            phase_recv(s, Phase::Collective) > 0,
            "rank {rank}: a_src all-reduce must ledger as collective"
        );
    }
}

#[test]
fn gat_total_volume_is_one_point_five_times_sage() {
    // Cluster-wide, grad-routing volume equals forward-fetch volume
    // (every fetched row owes one error row back), so case 2's extra
    // refetch makes GAT's total exactly 1.5× GraphSage's — the paper's
    // "at most 50% more communication".
    let total = |stats: &[CommStats]| -> u64 {
        stats
            .iter()
            .map(|s| {
                phase_recv(s, Phase::ForwardFetch)
                    + phase_recv(s, Phase::BackwardRefetch)
                    + phase_recv(s, Phase::GradRouting)
            })
            .sum()
    };
    let sage = total(&run_sage());
    let gat = total(&run_gat());
    assert!(sage > 0);
    assert_eq!(2 * gat, 3 * sage, "gat volume must be exactly 1.5x sage");
}

#[test]
fn ledger_attributes_traffic_to_the_recorded_layer() {
    for (rank, s) in run_gat().iter().enumerate() {
        let fetch = s.ledger.get(Phase::ForwardFetch, Some(LAYER));
        let refetch = s.ledger.get(Phase::BackwardRefetch, Some(LAYER));
        // Everything ran under layer_scope(LAYER) — forward directly, the
        // backward via the layer captured by the aggregation Function —
        // so the layered cells must hold the full phase totals.
        assert_eq!(
            fetch.recv_bytes,
            phase_recv(s, Phase::ForwardFetch),
            "rank {rank}: forward fetch not attributed to layer {LAYER}"
        );
        assert_eq!(
            refetch.recv_bytes,
            phase_recv(s, Phase::BackwardRefetch),
            "rank {rank}: backward refetch not attributed to layer {LAYER}"
        );
        assert!(
            fetch.comm_us > 0.0,
            "rank {rank}: fetch must be charged simulated time"
        );
    }
}

#[test]
fn prefetch_depth_k_fetch_peak_is_exactly_k_plus_two_blocks() {
    // §3.4, generalized: at pipeline depth k the rotation loop holds the
    // local data tensor, the block being consumed, and k staged blocks —
    // the (k+2)/N residency bound. Depth 0 is the paper's 2/N sequential
    // path, depth 1 its 3/N prefetch. On a complete graph with equal
    // partitions every block is exactly the same size, so the ledger's
    // phase memory peaks hit the bounds *exactly*, not just within them.
    let run = |depth: usize| -> Vec<u64> {
        let graphs = Arc::new(dist_graphs());
        let out = Cluster::new(WORLD, CostModel::default()).run(move |ctx| {
            let rank = ctx.rank();
            let graph = Arc::clone(&graphs[rank]);
            let w = Worker::with_prefetch_depth(ctx, graph, depth);
            let z = Tensor::full(&[w.graph.num_local(), COLS], 1.0);
            w.fetch_rounds(&z, |_q, _block| {});
        });
        out.into_iter()
            .map(|o| {
                o.comm
                    .ledger
                    .phase_total(Phase::ForwardFetch)
                    .peak_tensor_bytes
            })
            .collect()
    };
    let block = (PER_PART * COLS * std::mem::size_of::<f32>()) as u64;
    for depth in [0usize, 1, 2] {
        for (rank, peak) in run(depth).into_iter().enumerate() {
            assert_eq!(
                peak,
                (depth as u64 + 2) * block,
                "rank {rank}: depth-{depth} fetch peak != {} blocks",
                depth + 2
            );
        }
    }
    // The legacy constructor is the depth-1 pipeline: same 3/N peak.
    let graphs = Arc::new(dist_graphs());
    let out = Cluster::new(WORLD, CostModel::default()).run(move |ctx| {
        let rank = ctx.rank();
        let w = Worker::with_prefetch(ctx, Arc::clone(&graphs[rank]));
        assert_eq!(w.prefetch_depth, 1);
        let z = Tensor::full(&[w.graph.num_local(), COLS], 1.0);
        w.fetch_rounds(&z, |_q, _block| {});
    });
    for (rank, o) in out.into_iter().enumerate() {
        let peak = o
            .comm
            .ledger
            .phase_total(Phase::ForwardFetch)
            .peak_tensor_bytes;
        assert_eq!(peak, 3 * block, "rank {rank}: with_prefetch peak != 3/N");
    }
}

/// All ledger phases, for whole-run disk-tier totals.
const ALL_PHASES: [Phase; 5] = [
    Phase::ForwardFetch,
    Phase::BackwardRefetch,
    Phase::GradRouting,
    Phase::Collective,
    Phase::Other,
];

/// Sums `(spill_bytes, fault_bytes)` across every ledger phase.
fn tier_totals(s: &CommStats) -> (u64, u64) {
    ALL_PHASES.iter().fold((0, 0), |(sp, ft), &p| {
        let e = s.ledger.phase_total(p);
        (sp + e.spill_bytes, ft + e.fault_bytes)
    })
}

/// One GAT forward + backward at pipeline depth `depth` with the disk
/// tier at `budget` bytes (0 = disabled), returning each worker's stats
/// plus the bitwise image of its feature gradient.
fn run_gat_budget(depth: usize, budget: u64) -> Vec<(CommStats, Vec<u32>)> {
    let graphs = Arc::new(dist_graphs());
    let out = Cluster::new(WORLD, CostModel::default()).run(move |ctx| {
        let rank = ctx.rank();
        let w = Worker::with_prefetch_depth(ctx, Arc::clone(&graphs[rank]), depth);
        if budget > 0 {
            w.set_mem_budget(budget);
        }
        let n_local = w.graph.num_local();
        let z = Var::parameter(Tensor::full(&[n_local, COLS], 0.1 * (rank as f32 + 1.0)));
        let s_dst = Var::parameter(Tensor::full(&[n_local, HEADS], 0.05));
        let a_src = Var::parameter(Tensor::full(&[COLS], 0.02));
        let agg = {
            let _layer = w.ctx.layer_scope(LAYER);
            gat_aggregate(&w, &z, &s_dst, &a_src, HEADS, 0.2, FakMode::Fused)
        };
        agg.sum().backward();
        z.grad()
            .expect("z accumulates a gradient")
            .data()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<u32>>()
    });
    out.into_iter().map(|o| (o.comm, o.result)).collect()
}

#[test]
fn tight_mem_budget_spills_remat_inputs_and_keeps_watermarks_and_bits() {
    // Out-of-core tiering, measured at the ledger: under a tight
    // `--mem-budget` the GAT rematerialization inputs (softmax max +
    // denominator, `[n_local, HEADS]` each) spill to the disk tier after
    // the forward pass and fault back inside the BackwardRefetch scope.
    // At every pipeline depth k ∈ {0, 1, 2} the spill must be invisible
    // everywhere except the disk columns: gradients bitwise identical,
    // forward and backward phase watermarks unchanged, and exactly one
    // max+den pair spilled and faulted per aggregation call.
    let remat_bytes = 2 * (PER_PART * HEADS * std::mem::size_of::<f32>()) as u64;
    for depth in [0usize, 1, 2] {
        let ram = run_gat_budget(depth, 0);
        // A 1-byte budget evicts every block immediately: the tightest
        // possible tier, every remat input round-trips through disk.
        let tiered = run_gat_budget(depth, 1);
        for (rank, ((rs, rg), (ts, tg))) in ram.iter().zip(&tiered).enumerate() {
            assert_eq!(
                rg, tg,
                "rank {rank} depth {depth}: gradients diverged under the tier"
            );
            assert_eq!(
                tier_totals(rs),
                (0, 0),
                "rank {rank} depth {depth}: budget-off run touched the disk tier"
            );
            assert_eq!(
                tier_totals(ts),
                (remat_bytes, remat_bytes),
                "rank {rank} depth {depth}: expected exactly one spilled \
                 and faulted max+den pair"
            );
            // Faults happen where the backward consumes the inputs, so
            // the refetch row of the ledger carries the full volume.
            assert_eq!(
                ts.ledger.phase_total(Phase::BackwardRefetch).fault_bytes,
                remat_bytes,
                "rank {rank} depth {depth}: faults not ledgered to BackwardRefetch"
            );
            // Watermarks: the spill happens outside the ForwardFetch
            // scope and the faulted pair is smaller than the staged
            // blocks it precedes, so both phase peaks are *identical* to
            // the untiered run — tiering trades RAM for disk without
            // moving the fetch-loop (k+2)-block bound.
            for phase in [Phase::ForwardFetch, Phase::BackwardRefetch] {
                assert_eq!(
                    ts.ledger.phase_total(phase).peak_tensor_bytes,
                    rs.ledger.phase_total(phase).peak_tensor_bytes,
                    "rank {rank} depth {depth}: {phase:?} watermark moved under the tier"
                );
            }
        }
    }
}
