//! Protocol-level tests of the Worker exchange primitives (fetch rounds,
//! gradient routing) and of model replication.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sar_comm::{Cluster, CostModel};
use sar_core::{Arch, DistGraph, DistModel, Mode, ModelConfig, Worker};
use sar_graph::{generators::erdos_renyi, CsrGraph};
use sar_partition::random;
use sar_tensor::Tensor;

const N: usize = 40;

fn setup(world: usize, seed: u64) -> (CsrGraph, Vec<Arc<DistGraph>>) {
    let g = erdos_renyi(N, 240, &mut StdRng::seed_from_u64(seed)).symmetrize();
    let part = random(&g, world, seed);
    let graphs = DistGraph::build_all(&g, &part)
        .into_iter()
        .map(Arc::new)
        .collect();
    (g, graphs)
}

#[test]
fn fetch_rounds_delivers_each_partition_once_in_rotation_order() {
    let world = 4;
    let (_, graphs) = setup(world, 0);
    let graphs = Arc::new(graphs);
    let out = Cluster::new(world, CostModel::default()).run(move |ctx| {
        let rank = ctx.rank();
        let w = Worker::new(ctx, Arc::clone(&graphs[rank]));
        // Encode each worker's rank into its features.
        let data = Tensor::full(&[w.graph.num_local(), 2], rank as f32);
        let mut seen = Vec::new();
        w.fetch_rounds(&data, |q, fetched| {
            seen.push(q);
            assert_eq!(fetched.rows(), w.graph.needed_from(q).len());
            // Every row of a block fetched from q must carry q's value
            // (round 0 arrives unmaterialized; gather it for inspection).
            assert!(fetched.to_tensor().data().iter().all(|&v| v == q as f32));
        });
        seen
    });
    for (rank, o) in out.iter().enumerate() {
        let expect: Vec<usize> = (0..world).map(|r| (rank + r) % world).collect();
        assert_eq!(o.result, expect, "rotation order for rank {rank}");
    }
}

#[test]
fn fetch_rounds_with_prefetch_same_payloads() {
    let world = 3;
    let (_, graphs) = setup(world, 1);
    let graphs = Arc::new(graphs);
    let out = Cluster::new(world, CostModel::default()).run(move |ctx| {
        let rank = ctx.rank();
        let w = Worker::with_prefetch(ctx, Arc::clone(&graphs[rank]));
        let data = Tensor::full(&[w.graph.num_local(), 1], rank as f32 + 1.0);
        let mut sums = 0.0f32;
        w.fetch_rounds(&data, |q, fetched| {
            let block = fetched.to_tensor();
            sums += block.sum();
            assert!(block.data().iter().all(|&v| v == q as f32 + 1.0));
        });
        sums
    });
    assert!(out.iter().all(|o| o.result.is_finite()));
}

#[test]
fn exchange_grads_routes_to_owners() {
    // Worker p produces a gradient block of constant value (p+1) for every
    // peer; each owner must accumulate Σ over contributing peers at
    // exactly its served rows.
    let world = 3;
    let (_, graphs) = setup(world, 2);
    let graphs_outer = Arc::new(graphs);
    let graphs = Arc::clone(&graphs_outer);
    let out = Cluster::new(world, CostModel::default()).run(move |ctx| {
        let rank = ctx.rank();
        let w = Worker::new(ctx, Arc::clone(&graphs[rank]));
        let grad = w.exchange_grads(1, |q| {
            Tensor::full(&[w.graph.needed_from(q).len(), 1], rank as f32 + 1.0)
        });
        grad.into_data()
    });
    // Verify against a directly computed expectation.
    for (p, o) in out.iter().enumerate() {
        let shard = &graphs_outer[p];
        let mut expect = vec![0.0f32; shard.num_local()];
        for q in 0..world {
            for &row in shard.serves_to(q) {
                expect[row as usize] += q as f32 + 1.0;
            }
        }
        assert_eq!(o.result, expect, "worker {p} gradient routing");
    }
}

#[test]
fn model_replicas_are_identical_across_workers() {
    let world = 3;
    let (_, graphs) = setup(world, 3);
    let graphs = Arc::new(graphs);
    let out = Cluster::new(world, CostModel::default()).run(move |ctx| {
        let rank = ctx.rank();
        let _w = Worker::new(ctx, Arc::clone(&graphs[rank]));
        let model = DistModel::new(&ModelConfig {
            arch: Arch::Gat {
                head_dim: 4,
                heads: 2,
            },
            mode: Mode::Sar,
            layers: 2,
            in_dim: 10,
            num_classes: 3,
            dropout: 0.0,
            batch_norm: true,
            jumping_knowledge: false,
            seed: 42,
        });
        // Fingerprint all parameters.
        model
            .params()
            .iter()
            .map(|p| p.value().data().iter().sum::<f32>())
            .collect::<Vec<f32>>()
    });
    for o in &out[1..] {
        assert_eq!(o.result, out[0].result, "replicas must be bit-identical");
    }
}

#[test]
fn tags_stay_aligned_across_interleaved_protocols() {
    // Two consecutive fetch_rounds plus an exchange_grads must not
    // cross-talk even though they share the channel.
    let world = 4;
    let (_, graphs) = setup(world, 4);
    let graphs = Arc::new(graphs);
    let out = Cluster::new(world, CostModel::default()).run(move |ctx| {
        let rank = ctx.rank();
        let w = Worker::new(ctx, Arc::clone(&graphs[rank]));
        let a = Tensor::full(&[w.graph.num_local(), 1], 1.0);
        let b = Tensor::full(&[w.graph.num_local(), 1], 2.0);
        let mut ok = true;
        w.fetch_rounds(&a, |_, f| {
            ok &= f.to_tensor().data().iter().all(|&v| v == 1.0);
        });
        w.fetch_rounds(&b, |_, f| {
            ok &= f.to_tensor().data().iter().all(|&v| v == 2.0);
        });
        let g = w.exchange_grads(1, |q| Tensor::full(&[w.graph.needed_from(q).len(), 1], 3.0));
        ok && g.data().iter().all(|&v| v == 0.0 || v % 3.0 == 0.0)
    });
    assert!(out.iter().all(|o| o.result));
}
