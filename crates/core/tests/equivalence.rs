//! Exactness tests: SAR and domain-parallel training must reproduce
//! single-machine full-batch results for any number of workers — the
//! paper's central claim ("The results of training are exactly the same
//! regardless of the number of machines").

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sar_comm::{Cluster, CostModel};
use sar_core::{
    domain_parallel::halo_fetch, gat_aggregate, sage_aggregate, DistGraph, FakMode, Worker,
};
use sar_graph::{generators::erdos_renyi, ops, CsrGraph};
use sar_partition::{multilevel, random, Partitioning};
use sar_tensor::{init, Tensor, Var};

const N_NODES: usize = 60;
const FEAT: usize = 6;

fn test_graph(seed: u64) -> CsrGraph {
    erdos_renyi(N_NODES, 420, &mut StdRng::seed_from_u64(seed))
        .symmetrize()
        .with_self_loops()
}

/// Reassembles per-worker row blocks into a full matrix.
fn assemble(parts: Vec<(Vec<u32>, Tensor)>, cols: usize) -> Tensor {
    let mut out = Tensor::zeros(&[N_NODES, cols]);
    for (ids, block) in parts {
        out.scatter_add_rows(&ids, &block);
    }
    out
}

#[test]
fn sar_sage_aggregation_matches_single_machine() {
    let g = test_graph(0);
    let x = init::randn(&[N_NODES, FEAT], 1.0, &mut StdRng::seed_from_u64(1));
    let grad_out = init::randn(&[N_NODES, FEAT], 1.0, &mut StdRng::seed_from_u64(2));

    let expect_out = ops::spmm_sum(&g, &x);
    let expect_grad = ops::spmm_sum_backward(&g, &grad_out);

    for world in [1usize, 2, 3, 5] {
        let part = random(&g, world, 7);
        let graphs: Arc<Vec<Arc<DistGraph>>> = Arc::new(
            DistGraph::build_all(&g, &part)
                .into_iter()
                .map(Arc::new)
                .collect(),
        );
        let x = Arc::new(x.data().to_vec());
        let go = Arc::new(grad_out.data().to_vec());

        let outcomes = Cluster::new(world, CostModel::default()).run(move |ctx| {
            let graph = Arc::clone(&graphs[ctx.rank()]);
            let ids = graph.local_nodes().to_vec();
            let full_x = Tensor::from_vec(&[N_NODES, FEAT], x.as_ref().clone());
            let full_g = Tensor::from_vec(&[N_NODES, FEAT], go.as_ref().clone());
            let z = Var::parameter(full_x.gather_rows(&ids));
            let w = Worker::new(ctx, graph);
            let agg = sage_aggregate(&w, &z);
            let out = agg.value_clone();
            agg.backward_with(&full_g.gather_rows(&ids));
            let grad = z.grad().expect("z grad");
            (ids.clone(), out.into_data(), grad.into_data())
        });

        let outs = assemble(
            outcomes
                .iter()
                .map(|o| {
                    let (ids, out, _) = &o.result;
                    (
                        ids.clone(),
                        Tensor::from_vec(&[ids.len(), FEAT], out.clone()),
                    )
                })
                .collect(),
            FEAT,
        );
        let grads = assemble(
            outcomes
                .iter()
                .map(|o| {
                    let (ids, _, g) = &o.result;
                    (ids.clone(), Tensor::from_vec(&[ids.len(), FEAT], g.clone()))
                })
                .collect(),
            FEAT,
        );
        assert!(
            outs.allclose(&expect_out, 1e-4),
            "world {world}: forward mismatch"
        );
        assert!(
            grads.allclose(&expect_grad, 1e-4),
            "world {world}: backward mismatch"
        );
    }
}

/// Single-machine GAT attention aggregation reference (standard ops).
fn gat_reference(
    g: &CsrGraph,
    x: &Tensor,
    a_dst: &Tensor,
    a_src: &Tensor,
    heads: usize,
    grad_out: &Tensor,
) -> (Tensor, Tensor, Tensor, Tensor) {
    let garc = Arc::new(g.clone());
    let z = Var::parameter(x.clone());
    let ad = Var::parameter(a_dst.clone());
    let asr = Var::parameter(a_src.clone());
    let s_dst = sar_nn::graph_autograd::head_project(&z, &ad, heads);
    let s_src = sar_nn::graph_autograd::head_project(&z, &asr, heads);
    let scores = sar_nn::graph_autograd::gat_edge_scores(&garc, &s_dst, &s_src, 0.2);
    let alpha = sar_nn::graph_autograd::edge_softmax(&garc, &scores);
    let out = sar_nn::graph_autograd::spmm_multihead(&garc, &alpha, &z);
    let value = out.value_clone();
    out.backward_with(grad_out);
    (
        value,
        z.grad().unwrap(),
        ad.grad().unwrap(),
        asr.grad().unwrap(),
    )
}

fn check_sar_gat(mode: FakMode) {
    let heads = 2;
    let hd = heads * 3;
    let g = test_graph(3);
    let x = init::randn(&[N_NODES, hd], 1.0, &mut StdRng::seed_from_u64(4));
    let a_dst = init::randn(&[hd], 1.0, &mut StdRng::seed_from_u64(5));
    let a_src = init::randn(&[hd], 1.0, &mut StdRng::seed_from_u64(6));
    let grad_out = init::randn(&[N_NODES, hd], 1.0, &mut StdRng::seed_from_u64(7));

    let (ref_out, ref_dz, ref_dad, ref_das) =
        gat_reference(&g, &x, &a_dst, &a_src, heads, &grad_out);

    for world in [1usize, 3, 4] {
        let part = multilevel(&g, world.min(N_NODES), 11);
        let graphs: Arc<Vec<Arc<DistGraph>>> = Arc::new(
            DistGraph::build_all(&g, &part)
                .into_iter()
                .map(Arc::new)
                .collect(),
        );
        let xs = Arc::new(x.data().to_vec());
        let gos = Arc::new(grad_out.data().to_vec());
        let ads = Arc::new(a_dst.data().to_vec());
        let ass = Arc::new(a_src.data().to_vec());

        let outcomes = Cluster::new(world, CostModel::default()).run(move |ctx| {
            let graph = Arc::clone(&graphs[ctx.rank()]);
            let ids = graph.local_nodes().to_vec();
            let full_x = Tensor::from_vec(&[N_NODES, hd], xs.as_ref().clone());
            let full_g = Tensor::from_vec(&[N_NODES, hd], gos.as_ref().clone());
            let z = Var::parameter(full_x.gather_rows(&ids));
            let ad = Var::parameter(Tensor::from_vec(&[hd], ads.as_ref().clone()));
            let asr = Var::parameter(Tensor::from_vec(&[hd], ass.as_ref().clone()));
            let w = Worker::new(ctx, graph);
            let s_dst = sar_nn::graph_autograd::head_project(&z, &ad, heads);
            let agg = gat_aggregate(&w, &z, &s_dst, &asr, heads, 0.2, mode);
            let out = agg.value_clone();
            agg.backward_with(&full_g.gather_rows(&ids));
            (
                ids,
                out.into_data(),
                z.grad().unwrap().into_data(),
                ad.grad().unwrap().into_data(),
                asr.grad().unwrap().into_data(),
            )
        });

        let outs = assemble(
            outcomes
                .iter()
                .map(|o| {
                    let ids = &o.result.0;
                    (
                        ids.clone(),
                        Tensor::from_vec(&[ids.len(), hd], o.result.1.clone()),
                    )
                })
                .collect(),
            hd,
        );
        let dzs = assemble(
            outcomes
                .iter()
                .map(|o| {
                    let ids = &o.result.0;
                    (
                        ids.clone(),
                        Tensor::from_vec(&[ids.len(), hd], o.result.2.clone()),
                    )
                })
                .collect(),
            hd,
        );
        assert!(
            outs.allclose(&ref_out, 1e-3),
            "world {world}: forward mismatch ({mode:?})"
        );
        assert!(
            dzs.allclose(&ref_dz, 1e-3),
            "world {world}: dz mismatch ({mode:?})"
        );
        // a_dst grads are per-worker partial sums (the trainer all-reduces
        // them); a_src grads are already all-reduced inside Algorithm 2.
        let mut dad = Tensor::zeros(&[hd]);
        for o in &outcomes {
            dad.add_assign(&Tensor::from_vec(&[hd], o.result.3.clone()));
        }
        assert!(
            dad.allclose(&ref_dad, 1e-3),
            "world {world}: d_a_dst mismatch ({mode:?})"
        );
        let das = Tensor::from_vec(&[hd], outcomes[0].result.4.clone());
        assert!(
            das.allclose(&ref_das, 1e-3),
            "world {world}: d_a_src mismatch ({mode:?})"
        );
    }
}

#[test]
fn sar_gat_fused_matches_single_machine() {
    check_sar_gat(FakMode::Fused);
}

#[test]
fn sar_gat_twostep_matches_single_machine() {
    check_sar_gat(FakMode::TwoStep);
}

#[test]
fn domain_parallel_halo_matches_single_machine() {
    let g = test_graph(8);
    let x = init::randn(&[N_NODES, FEAT], 1.0, &mut StdRng::seed_from_u64(9));
    let grad_out = init::randn(&[N_NODES, FEAT], 1.0, &mut StdRng::seed_from_u64(10));
    let expect_out = ops::spmm_sum(&g, &x);
    let expect_grad = ops::spmm_sum_backward(&g, &grad_out);

    for world in [1usize, 2, 4] {
        let part = random(&g, world, 13);
        let graphs: Arc<Vec<Arc<DistGraph>>> = Arc::new(
            DistGraph::build_all(&g, &part)
                .into_iter()
                .map(Arc::new)
                .collect(),
        );
        let xs = Arc::new(x.data().to_vec());
        let gos = Arc::new(grad_out.data().to_vec());

        let outcomes = Cluster::new(world, CostModel::default()).run(move |ctx| {
            let graph = Arc::clone(&graphs[ctx.rank()]);
            let ids = graph.local_nodes().to_vec();
            let full_x = Tensor::from_vec(&[N_NODES, FEAT], xs.as_ref().clone());
            let full_g = Tensor::from_vec(&[N_NODES, FEAT], gos.as_ref().clone());
            let z = Var::parameter(full_x.gather_rows(&ids));
            let w = Worker::new(ctx, graph);
            let halo = halo_fetch(&w, &z);
            let agg = sar_nn::graph_autograd::spmm_sum(w.graph.halo_graph(), &halo);
            let out = agg.value_clone();
            agg.backward_with(&full_g.gather_rows(&ids));
            (ids, out.into_data(), z.grad().unwrap().into_data())
        });

        let outs = assemble(
            outcomes
                .iter()
                .map(|o| {
                    let ids = &o.result.0;
                    (
                        ids.clone(),
                        Tensor::from_vec(&[ids.len(), FEAT], o.result.1.clone()),
                    )
                })
                .collect(),
            FEAT,
        );
        let grads = assemble(
            outcomes
                .iter()
                .map(|o| {
                    let ids = &o.result.0;
                    (
                        ids.clone(),
                        Tensor::from_vec(&[ids.len(), FEAT], o.result.2.clone()),
                    )
                })
                .collect(),
            FEAT,
        );
        assert!(
            outs.allclose(&expect_out, 1e-4),
            "world {world}: DP forward mismatch"
        );
        assert!(
            grads.allclose(&expect_grad, 1e-4),
            "world {world}: DP backward mismatch"
        );
    }
}

#[test]
fn prefetch_does_not_change_results() {
    let g = test_graph(20);
    let x = init::randn(&[N_NODES, FEAT], 1.0, &mut StdRng::seed_from_u64(21));
    let part = random(&g, 4, 22);
    let expect = ops::spmm_sum(&g, &x);

    let graphs: Arc<Vec<Arc<DistGraph>>> = Arc::new(
        DistGraph::build_all(&g, &part)
            .into_iter()
            .map(Arc::new)
            .collect(),
    );
    let xs = Arc::new(x.data().to_vec());
    let outcomes = Cluster::new(4, CostModel::default()).run(move |ctx| {
        let graph = Arc::clone(&graphs[ctx.rank()]);
        let ids = graph.local_nodes().to_vec();
        let full_x = Tensor::from_vec(&[N_NODES, FEAT], xs.as_ref().clone());
        let z = Var::constant(full_x.gather_rows(&ids));
        let w = Worker::with_prefetch(ctx, graph);
        let agg = sage_aggregate(&w, &z);
        (ids, agg.value_clone().into_data())
    });
    let outs = assemble(
        outcomes
            .iter()
            .map(|o| {
                let ids = &o.result.0;
                (
                    ids.clone(),
                    Tensor::from_vec(&[ids.len(), FEAT], o.result.1.clone()),
                )
            })
            .collect(),
        FEAT,
    );
    assert!(outs.allclose(&expect, 1e-4));
}

#[test]
fn partitioning_choice_does_not_change_results() {
    // SAR must be exact under any partitioning, balanced or not.
    let g = test_graph(30);
    let x = init::randn(&[N_NODES, FEAT], 1.0, &mut StdRng::seed_from_u64(31));
    let expect = ops::spmm_sum(&g, &x);
    // A deliberately skewed partitioning.
    let assignment: Vec<u32> = (0..N_NODES).map(|i| if i < 5 { 0 } else { 1 }).collect();
    let part = Partitioning::new(2, assignment);
    let graphs: Arc<Vec<Arc<DistGraph>>> = Arc::new(
        DistGraph::build_all(&g, &part)
            .into_iter()
            .map(Arc::new)
            .collect(),
    );
    let xs = Arc::new(x.data().to_vec());
    let outcomes = Cluster::new(2, CostModel::default()).run(move |ctx| {
        let graph = Arc::clone(&graphs[ctx.rank()]);
        let ids = graph.local_nodes().to_vec();
        let full_x = Tensor::from_vec(&[N_NODES, FEAT], xs.as_ref().clone());
        let z = Var::constant(full_x.gather_rows(&ids));
        let w = Worker::new(ctx, graph);
        let agg = sage_aggregate(&w, &z);
        (ids, agg.value_clone().into_data())
    });
    let outs = assemble(
        outcomes
            .iter()
            .map(|o| {
                let ids = &o.result.0;
                (
                    ids.clone(),
                    Tensor::from_vec(&[ids.len(), FEAT], o.result.1.clone()),
                )
            })
            .collect(),
        FEAT,
    );
    assert!(outs.allclose(&expect, 1e-4));
}
