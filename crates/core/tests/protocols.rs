//! Approximate-exchange protocol contract tests.
//!
//! `--protocol gradonly` and `--protocol stale:<r>` deliberately trade
//! training fidelity for wire volume; these tests pin down exactly what
//! each one skips (per the ledger), that training still completes and
//! converges on finite losses, and that the degenerate settings
//! (`stale:1`, `raw` codec) collapse back to the paper's bitwise-exact
//! behavior.

use sar_comm::{Codec, CostModel, Phase};
use sar_core::{train, Arch, Mode, ModelConfig, Protocol, RunReport, TrainConfig};
use sar_graph::{datasets, Dataset};
use sar_nn::LrSchedule;
use sar_partition::multilevel;

fn dataset() -> Dataset {
    datasets::products_like(300, 0)
}

fn config(arch: Arch, mode: Mode, d: &Dataset) -> TrainConfig {
    TrainConfig {
        model: ModelConfig {
            arch,
            mode,
            layers: 2,
            in_dim: 0, // set by the trainer
            num_classes: d.num_classes,
            dropout: 0.0,
            batch_norm: true,
            jumping_knowledge: false,
            seed: 7,
        },
        epochs: 4,
        lr: 0.01,
        schedule: LrSchedule::Constant,
        label_aug: true,
        aug_frac: 0.5,
        cs: None,
        prefetch_depth: 0,
        seed: 7,
        threads: 1,
        protocol: Protocol::Exact,
        codec: Codec::Raw,
        mem_budget: 0,
    }
}

fn run(cfg: &TrainConfig, d: &Dataset, world: usize) -> RunReport {
    let part = multilevel(&d.graph, world, 0);
    train(d, &part, CostModel::default(), cfg)
}

fn phase_sent(report: &RunReport, phase: Phase) -> u64 {
    report
        .worker_comm
        .iter()
        .map(|c| c.ledger.phase_total(phase).sent_bytes)
        .sum()
}

fn loss_bits(report: &RunReport) -> Vec<u32> {
    report.losses.iter().map(|l| l.to_bits()).collect()
}

/// `stale:1` refreshes every epoch — it must be bitwise identical to the
/// exact protocol, losses and logits alike.
#[test]
fn stale_one_is_bitwise_identical_to_exact() {
    let d = dataset();
    let exact = run(
        &config(Arch::GraphSage { hidden: 16 }, Mode::Sar, &d),
        &d,
        4,
    );
    let mut cfg = config(Arch::GraphSage { hidden: 16 }, Mode::Sar, &d);
    cfg.protocol = Protocol::parse("stale:1").unwrap();
    let stale = run(&cfg, &d, 4);
    assert_eq!(loss_bits(&exact), loss_bits(&stale));
    assert_eq!(exact.logits.data(), stale.logits.data());
    assert_eq!(exact.val_acc, stale.val_acc);
}

/// gradonly must move zero fetch-phase and zero error-routing bytes
/// during training — the only cross-worker traffic that remains is the
/// collective parameter all-reduce (and the exact final evaluation).
#[test]
fn gradonly_moves_no_fetch_or_routing_bytes_during_training() {
    let d = dataset();
    let mut cfg = config(Arch::GraphSage { hidden: 16 }, Mode::Sar, &d);
    cfg.protocol = Protocol::GradOnly;
    let report = run(&cfg, &d, 4);
    assert!(report.losses.iter().all(|l| l.is_finite()));

    // The final evaluation runs the exact protocol, so the ledger's only
    // fetch-phase bytes come from that single forward pass; routing and
    // refetch never happen at all (no backward pass at eval).
    assert_eq!(
        phase_sent(&report, Phase::GradRouting),
        0,
        "gradonly must never route error blocks"
    );
    assert_eq!(
        phase_sent(&report, Phase::BackwardRefetch),
        0,
        "gradonly must never refetch"
    );
    // ForwardFetch bytes come only from the single exact eval pass: one
    // forward's worth, strictly less than an exact run of 4 epochs + eval.
    let exact = run(
        &config(Arch::GraphSage { hidden: 16 }, Mode::Sar, &d),
        &d,
        4,
    );
    let exact_fetch = phase_sent(&exact, Phase::ForwardFetch);
    let gradonly_fetch = phase_sent(&report, Phase::ForwardFetch);
    assert!(
        gradonly_fetch * 4 < exact_fetch,
        "gradonly fetch bytes ({gradonly_fetch}) must be a small fraction of \
         exact ({exact_fetch})"
    );
}

/// stale:2 fetches on epochs 0 and 2 only — fetch-phase traffic must be
/// roughly half the exact protocol's, and training must still converge
/// on finite losses.
#[test]
fn stale_halves_fetch_traffic() {
    let d = dataset();
    let exact = run(
        &config(Arch::GraphSage { hidden: 16 }, Mode::Sar, &d),
        &d,
        4,
    );
    let mut cfg = config(Arch::GraphSage { hidden: 16 }, Mode::Sar, &d);
    cfg.protocol = Protocol::parse("stale:2").unwrap();
    let stale = run(&cfg, &d, 4);
    assert!(stale.losses.iter().all(|l| l.is_finite()));
    let exact_fetch = phase_sent(&exact, Phase::ForwardFetch);
    let stale_fetch = phase_sent(&stale, Phase::ForwardFetch);
    // 4 epochs + 1 eval pass of fetches, vs 2 refresh epochs + 1 eval.
    assert!(
        stale_fetch < exact_fetch * 3 / 4,
        "stale:2 fetch bytes ({stale_fetch}) must undercut exact ({exact_fetch})"
    );
    // Error routing stays exact every epoch.
    assert_eq!(
        phase_sent(&stale, Phase::GradRouting),
        phase_sent(&exact, Phase::GradRouting),
        "staleness must not touch gradient routing"
    );
}

/// The GAT backward pass hand-rolls its gradient routing loop (case 2 of
/// Algorithm 2); under gradonly its receive set must collapse to the
/// local rank — this test deadlocks (and times out) if any worker waits
/// on a peer's never-sent block.
#[test]
fn gat_gradonly_completes_without_deadlock() {
    let d = dataset();
    let mut cfg = config(
        Arch::Gat {
            head_dim: 8,
            heads: 2,
        },
        Mode::SarFused,
        &d,
    );
    cfg.epochs = 2;
    let exact = run(&cfg, &d, 4);
    cfg.protocol = Protocol::GradOnly;
    let report = run(&cfg, &d, 4);
    assert!(report.losses.iter().all(|l| l.is_finite()));
    assert_eq!(phase_sent(&report, Phase::BackwardRefetch), 0);
    // The GAT backward routes its local error block through a ledgered
    // loop-back self-send, so gradonly's GradRouting bytes are not zero —
    // but they must shrink to the self-send share (1/world of exact).
    let exact_routing = phase_sent(&exact, Phase::GradRouting);
    let gradonly_routing = phase_sent(&report, Phase::GradRouting);
    assert!(
        gradonly_routing * 2 < exact_routing,
        "gradonly routing ({gradonly_routing}) must collapse to loop-back \
         self-sends (exact: {exact_routing})"
    );
}

/// GAT under stale:2: the backward refetch replays the cached blocks too
/// (zero refetch traffic on stale epochs), while routing stays exact.
#[test]
fn gat_stale_skips_refetch_on_stale_epochs() {
    let d = dataset();
    let mut cfg = config(
        Arch::Gat {
            head_dim: 8,
            heads: 2,
        },
        Mode::SarFused,
        &d,
    );
    cfg.epochs = 4;
    let exact = run(&cfg, &d, 4);
    cfg.protocol = Protocol::parse("stale:2").unwrap();
    let stale = run(&cfg, &d, 4);
    assert!(stale.losses.iter().all(|l| l.is_finite()));
    assert!(
        phase_sent(&stale, Phase::BackwardRefetch) < phase_sent(&exact, Phase::BackwardRefetch),
        "stale epochs must not refetch"
    );
    assert_eq!(
        phase_sent(&stale, Phase::GradRouting),
        phase_sent(&exact, Phase::GradRouting)
    );
}

/// A lossy training codec halves fetch-phase *wire* bytes while the
/// logical ledger (and thus the parity digest's byte accounting) stays
/// at raw-f32 volume.
#[test]
fn f16_codec_halves_wire_bytes_in_training() {
    let d = dataset();
    let mut cfg = config(Arch::GraphSage { hidden: 16 }, Mode::Sar, &d);
    cfg.codec = Codec::F16;
    let report = run(&cfg, &d, 4);
    assert!(report.losses.iter().all(|l| l.is_finite()));
    for comm in &report.worker_comm {
        let fetch = comm.ledger.phase_total(Phase::ForwardFetch);
        assert!(
            fetch.wire_sent_bytes < fetch.sent_bytes,
            "wire bytes ({}) must undercut logical bytes ({})",
            fetch.wire_sent_bytes,
            fetch.sent_bytes
        );
        // Payload-only reduction ≈ 2× for f16: logical payload = 4n,
        // wire payload = 8-byte meta + 2n.
        let logical_payload = fetch.sent_bytes - 32 * fetch.sent_messages;
        let wire_payload = fetch.wire_sent_bytes - 32 * fetch.sent_messages;
        assert!(
            (logical_payload as f64) / (wire_payload as f64) > 1.9,
            "f16 payload reduction must approach 2x ({logical_payload} vs {wire_payload})"
        );
    }
}

/// The delta codec is lossless: losses and logits must be bitwise
/// identical to a raw run, with wire bytes at most the logical volume
/// plus the per-block stream headers.
#[test]
fn delta_codec_is_bitwise_exact() {
    let d = dataset();
    let raw = run(
        &config(Arch::GraphSage { hidden: 16 }, Mode::Sar, &d),
        &d,
        2,
    );
    let mut cfg = config(Arch::GraphSage { hidden: 16 }, Mode::Sar, &d);
    cfg.codec = Codec::Delta;
    let delta = run(&cfg, &d, 2);
    assert_eq!(loss_bits(&raw), loss_bits(&delta));
    assert_eq!(raw.logits.data(), delta.logits.data());
}
