//! Loopback transport parity: the same SPMD training program, run once
//! over the in-process channel backend and once over real TCP sockets on
//! localhost, must produce **bitwise-identical losses** and **identical
//! per-phase byte ledgers** (time fields excluded — one clock is
//! simulated, the other measured). This is the strongest cheap check that
//! the wire format, the rendezvous, and the per-peer FIFO guarantees of
//! the TCP backend do not perturb the algorithm.

use std::rc::Rc;
use std::sync::Arc;

use sar_comm::tcp::run_tcp_threads;
use sar_comm::{Cluster, CommStats, CostModel, Phase, TcpOpts, Transport, WorkerCtx};
use sar_core::{run_worker, Arch, DistGraph, Mode, ModelConfig, Shard, TrainConfig, WorkerReport};
use sar_graph::{datasets, Dataset};
use sar_nn::LrSchedule;
use sar_partition::{multilevel, Partitioning};

const WORLD: usize = 4;

fn dataset() -> Dataset {
    datasets::products_like(300, 0)
}

fn config(arch: Arch, mode: Mode, d: &Dataset) -> TrainConfig {
    TrainConfig {
        model: ModelConfig {
            arch,
            mode,
            layers: 2,
            in_dim: 0, // set by the trainer
            num_classes: d.num_classes,
            dropout: 0.0,
            batch_norm: true,
            jumping_knowledge: false,
            seed: 7,
        },
        epochs: 2,
        lr: 0.01,
        schedule: LrSchedule::Constant,
        label_aug: true,
        aug_frac: 0.5,
        cs: None,
        prefetch_depth: 0,
        seed: 7,
        threads: 1,
        protocol: Default::default(),
        codec: Default::default(),
        mem_budget: 0,
    }
}

struct Fixture {
    graphs: Arc<Vec<Arc<DistGraph>>>,
    shards: Arc<Vec<Shard>>,
    cfg: Arc<TrainConfig>,
}

fn fixture(d: &Dataset, part: &Partitioning, cfg: TrainConfig) -> Fixture {
    Fixture {
        graphs: Arc::new(
            DistGraph::build_all(&d.graph, part)
                .into_iter()
                .map(Arc::new)
                .collect(),
        ),
        shards: Arc::new(Shard::build_all(d, part)),
        cfg: Arc::new(cfg),
    }
}

fn run_sim(fx: &Fixture) -> Vec<(WorkerReport, CommStats)> {
    let graphs = Arc::clone(&fx.graphs);
    let shards = Arc::clone(&fx.shards);
    let cfg = Arc::clone(&fx.cfg);
    Cluster::new(WORLD, CostModel::default())
        .run(move |ctx| {
            let rank = ctx.rank();
            let ctx = Rc::new(ctx);
            let report = run_worker(
                Rc::clone(&ctx),
                Arc::clone(&graphs[rank]),
                &shards[rank],
                &cfg,
            );
            let stats = ctx.stats();
            (report, stats)
        })
        .into_iter()
        .map(|o| o.result)
        .collect()
}

fn run_tcp(fx: &Fixture) -> Vec<(WorkerReport, CommStats)> {
    let graphs = Arc::clone(&fx.graphs);
    let shards = Arc::clone(&fx.shards);
    let cfg = Arc::clone(&fx.cfg);
    run_tcp_threads(WORLD, TcpOpts::default(), move |transport| {
        let rank = transport.rank();
        let ctx = Rc::new(WorkerCtx::new(
            Box::new(transport),
            CostModel::default(),
            std::time::Duration::from_secs(120),
        ));
        let report = run_worker(
            Rc::clone(&ctx),
            Arc::clone(&graphs[rank]),
            &shards[rank],
            &cfg,
        );
        let stats = ctx.stats();
        (report, stats)
    })
}

/// The byte-and-message shape of a ledger, with time and memory fields
/// stripped (simulated vs wall clocks differ by construction; memory
/// peaks are measured per thread, not part of the wire contract).
fn byte_ledger(stats: &CommStats) -> Vec<(Phase, Option<u16>, u64, u64, u64, u64)> {
    stats
        .ledger
        .rows()
        .map(|(p, l, e)| {
            (
                p,
                l,
                e.sent_bytes,
                e.recv_bytes,
                e.sent_messages,
                e.recv_messages,
            )
        })
        .collect()
}

fn assert_parity(
    arch_name: &str,
    sim: &[(WorkerReport, CommStats)],
    tcp: &[(WorkerReport, CommStats)],
) {
    assert_eq!(sim.len(), tcp.len());
    for (rank, ((sim_rep, sim_stats), (tcp_rep, tcp_stats))) in
        sim.iter().zip(tcp.iter()).enumerate()
    {
        // Bitwise-identical losses, epoch by epoch.
        assert_eq!(sim_rep.epochs.len(), tcp_rep.epochs.len());
        for (e, (a, b)) in sim_rep.epochs.iter().zip(&tcp_rep.epochs).enumerate() {
            assert_eq!(
                a.loss.to_bits(),
                b.loss.to_bits(),
                "{arch_name} rank {rank} epoch {e}: sim loss {} != tcp loss {}",
                a.loss,
                b.loss
            );
        }
        assert_eq!(
            sim_rep.val_acc.to_bits(),
            tcp_rep.val_acc.to_bits(),
            "{arch_name} rank {rank}: val accuracy diverged"
        );
        assert_eq!(
            sim_rep.test_acc.to_bits(),
            tcp_rep.test_acc.to_bits(),
            "{arch_name} rank {rank}: test accuracy diverged"
        );

        // Identical byte ledgers: same (phase, layer) cells, same bytes,
        // same message counts — both backends count wire_len.
        assert_eq!(
            byte_ledger(sim_stats),
            byte_ledger(tcp_stats),
            "{arch_name} rank {rank}: per-phase byte ledger diverged"
        );
        assert_eq!(
            sim_stats.sent_bytes, tcp_stats.sent_bytes,
            "{arch_name} rank {rank}: per-peer sent bytes diverged"
        );
        assert_eq!(sim_stats.recv_bytes, tcp_stats.recv_bytes);
        assert_eq!(sim_stats.sent_messages, tcp_stats.sent_messages);
    }
}

#[test]
fn graphsage_trains_identically_on_both_backends() {
    let d = dataset();
    let part = multilevel(&d.graph, WORLD, 0);
    let fx = fixture(
        &d,
        &part,
        config(Arch::GraphSage { hidden: 16 }, Mode::Sar, &d),
    );
    let sim = run_sim(&fx);
    let tcp = run_tcp(&fx);
    assert_parity("sage", &sim, &tcp);
    // Case 1 survives the wire: zero refetch traffic on both backends.
    for (_, stats) in &tcp {
        let refetch = stats.ledger.phase_total(Phase::BackwardRefetch);
        assert_eq!(refetch.recv_bytes, 0, "sage refetched over TCP");
    }
}

#[test]
fn gat_trains_identically_on_both_backends() {
    let d = dataset();
    let part = multilevel(&d.graph, WORLD, 0);
    let fx = fixture(
        &d,
        &part,
        config(
            Arch::Gat {
                head_dim: 8,
                heads: 2,
            },
            Mode::SarFused,
            &d,
        ),
    );
    let sim = run_sim(&fx);
    let tcp = run_tcp(&fx);
    assert_parity("gat", &sim, &tcp);
    // Case 2 survives the wire: the backward passes refetch features over
    // TCP too (forward-fetch volume is larger here only because the final
    // evaluation runs extra forward passes with no backward).
    for (rank, (_, stats)) in tcp.iter().enumerate() {
        let fetch = stats.ledger.phase_total(Phase::ForwardFetch).recv_bytes;
        let refetch = stats.ledger.phase_total(Phase::BackwardRefetch).recv_bytes;
        assert!(refetch > 0, "rank {rank}: gat must refetch over TCP");
        assert!(refetch < fetch, "rank {rank}: eval-only fetches missing");
    }
}
