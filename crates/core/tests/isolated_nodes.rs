//! Degree-0 robustness and end-to-end thread-count parity.
//!
//! Real partitioned graphs contain isolated nodes — a partition can
//! receive nodes with no in-edges at all. Mean aggregation divides by the
//! in-degree (`DistGraph::inv_in_degree` returns 0 for isolated nodes)
//! and GAT's edge softmax normalizes by a per-destination denominator, so
//! degree-0 rows are exactly where NaNs would creep in. These tests train
//! both architectures on a graph with guaranteed isolated nodes and pin
//! every loss and accuracy to stay finite.
//!
//! The parity test also drives the whole trainer at `--threads 1` vs
//! `--threads 4` and requires bitwise-identical losses: the kernel-level
//! determinism guarantee (DESIGN.md §8) must survive composition through
//! autograd, SAR rotation, and the optimizer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sar_comm::CostModel;
use sar_core::{train, Arch, Mode, ModelConfig, TrainConfig};
use sar_graph::{CsrGraph, Dataset};
use sar_nn::LrSchedule;
use sar_partition::random;
use sar_tensor::init;

/// 120 nodes; nodes 0..6 have no edges at all (not even self-loops), the
/// rest form a random symmetric graph with self-loops.
fn dataset_with_isolated_nodes() -> Dataset {
    let n = 120;
    let isolated = 6;
    let num_classes = 3;
    let mut rng = StdRng::seed_from_u64(42);
    let edges: Vec<(u32, u32)> = (0..500)
        .map(|_| {
            (
                rng.random_range(isolated..n) as u32,
                rng.random_range(isolated..n) as u32,
            )
        })
        .collect();
    let raw = CsrGraph::from_edges(n, &edges).symmetrize();
    // Self-loops for connected nodes only: loop over edges, keep isolated
    // nodes truly degree-0.
    let mut looped: Vec<(u32, u32)> = raw.iter_edges().collect();
    for i in isolated as u32..n as u32 {
        looped.push((i, i));
    }
    let graph = CsrGraph::from_edges(n, &looped).symmetrize();
    for i in 0..isolated {
        assert!(graph.is_isolated_row(i), "node {i} must stay isolated");
    }
    let labels: Vec<u32> = (0..n).map(|i| (i % num_classes) as u32).collect();
    Dataset {
        graph,
        features: init::randn(&[n, 8], 1.0, &mut rng),
        labels,
        train_mask: (0..n).map(|i| i % 2 == 0).collect(),
        val_mask: (0..n).map(|i| i % 4 == 1).collect(),
        test_mask: (0..n).map(|i| i % 4 == 3).collect(),
        num_classes,
        name: "isolated-nodes".into(),
    }
}

fn config(arch: Arch, mode: Mode, threads: usize) -> TrainConfig {
    TrainConfig {
        model: ModelConfig {
            arch,
            mode,
            layers: 2,
            in_dim: 0,
            num_classes: 3,
            dropout: 0.0,
            batch_norm: false,
            jumping_knowledge: false,
            seed: 5,
        },
        epochs: 4,
        lr: 0.01,
        schedule: LrSchedule::Constant,
        label_aug: false,
        aug_frac: 0.0,
        cs: None,
        prefetch_depth: 0,
        seed: 5,
        threads,
        protocol: Default::default(),
        codec: Default::default(),
        mem_budget: 0,
    }
}

#[test]
fn sage_mean_aggregation_survives_isolated_nodes() {
    let d = dataset_with_isolated_nodes();
    let part = random(&d.graph, 3, 7);
    let report = train(
        &d,
        &part,
        CostModel::default(),
        &config(Arch::GraphSage { hidden: 16 }, Mode::Sar, 1),
    );
    assert!(
        report.losses.iter().all(|l| l.is_finite()),
        "sage losses went non-finite on isolated nodes: {:?}",
        report.losses
    );
    assert!(report.test_acc.is_finite());
}

#[test]
fn gat_edge_softmax_survives_isolated_nodes() {
    let d = dataset_with_isolated_nodes();
    let part = random(&d.graph, 3, 7);
    for mode in [Mode::Sar, Mode::SarFused] {
        let cfg = config(
            Arch::Gat {
                head_dim: 4,
                heads: 2,
            },
            mode,
            1,
        );
        let report = train(&d, &part, CostModel::default(), &cfg);
        assert!(
            report.losses.iter().all(|l| l.is_finite()),
            "gat losses went non-finite on isolated nodes: {:?}",
            report.losses
        );
        assert!(report.test_acc.is_finite());
    }
}

#[test]
fn training_losses_are_bitwise_identical_across_thread_counts() {
    let d = dataset_with_isolated_nodes();
    let part = random(&d.graph, 3, 7);
    for (arch, mode) in [
        (Arch::GraphSage { hidden: 16 }, Mode::Sar),
        (
            Arch::Gat {
                head_dim: 4,
                heads: 2,
            },
            Mode::SarFused,
        ),
    ] {
        let seq = train(&d, &part, CostModel::default(), &config(arch, mode, 1));
        let par = train(&d, &part, CostModel::default(), &config(arch, mode, 4));
        let seq_bits: Vec<u32> = seq.losses.iter().map(|l| l.to_bits()).collect();
        let par_bits: Vec<u32> = par.losses.iter().map(|l| l.to_bits()).collect();
        assert_eq!(
            seq_bits, par_bits,
            "{arch:?}/{mode:?}: losses diverge between 1 and 4 threads: {:?} vs {:?}",
            seq.losses, par.losses
        );
    }
}
