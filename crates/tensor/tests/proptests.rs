//! Property-based tests for tensor algebra and autograd invariants.

use proptest::prelude::*;
use sar_tensor::{init, memory::MemoryTracker, Tensor, Var};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn tensor_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-5.0f32..5.0, r * c)
            .prop_map(move |data| Tensor::from_vec(&[r, c], data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative_enough(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = init::randn(&[4, 5], 1.0, &mut rng);
        let b = init::randn(&[5, 3], 1.0, &mut rng);
        let c = init::randn(&[3, 6], 1.0, &mut rng);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.allclose(&right, 1e-3));
    }

    #[test]
    fn transpose_is_involution(t in tensor_strategy(8, 8)) {
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn matmul_tn_nt_match_explicit_transpose(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = init::randn(&[6, 4], 1.0, &mut rng);
        let b = init::randn(&[6, 3], 1.0, &mut rng);
        prop_assert!(a.matmul_tn(&b).allclose(&a.transpose().matmul(&b), 1e-4));
        let c = init::randn(&[5, 4], 1.0, &mut rng);
        prop_assert!(a.matmul_nt(&c).allclose(&a.matmul(&c.transpose()), 1e-4));
    }

    #[test]
    fn softmax_rows_are_probability_distributions(t in tensor_strategy(8, 8)) {
        let s = t.softmax_rows();
        for i in 0..s.rows() {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(t in tensor_strategy(6, 6), shift in -50.0f32..50.0) {
        let s1 = t.softmax_rows();
        let s2 = t.add_scalar(shift).softmax_rows();
        prop_assert!(s1.allclose(&s2, 1e-4));
    }

    #[test]
    fn gather_then_scatter_is_partial_identity(t in tensor_strategy(8, 4)) {
        let idx: Vec<u32> = (0..t.rows() as u32).collect();
        let g = t.gather_rows(&idx);
        let mut z = t.zeros_like();
        z.scatter_add_rows(&idx, &g);
        prop_assert_eq!(z, t);
    }

    #[test]
    fn sum_axis_decompositions_agree(t in tensor_strategy(8, 8)) {
        let total = t.sum();
        let by_rows = t.sum_axis1().sum();
        let by_cols = t.sum_axis0().sum();
        prop_assert!((total - by_rows).abs() < 1e-3 * (1.0 + total.abs()));
        prop_assert!((total - by_cols).abs() < 1e-3 * (1.0 + total.abs()));
    }

    #[test]
    fn autograd_linear_map_gradient_is_exact(seed in 0u64..500) {
        // For y = sum(A x), dy/dx is exactly the column sums of A —
        // autograd must reproduce it to float precision, not just to
        // finite-difference tolerance.
        let mut rng = StdRng::seed_from_u64(seed);
        let a = init::randn(&[5, 4], 1.0, &mut rng);
        let x = Var::parameter(init::randn(&[4, 3], 1.0, &mut rng));
        let av = Var::constant(a.clone());
        av.matmul(&x).sum().backward();
        let g = x.grad().unwrap();
        let colsum = a.sum_axis0();
        for i in 0..4 {
            for j in 0..3 {
                prop_assert!((g.at(&[i, j]) - colsum.data()[i]).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn grad_accumulation_is_linear(seed in 0u64..500) {
        // backward(g1 + g2) == backward(g1) then backward(g2) accumulated.
        let mut rng = StdRng::seed_from_u64(seed);
        let xt = init::randn(&[3, 3], 1.0, &mut rng);
        let g1 = init::randn(&[3, 3], 1.0, &mut rng);
        let g2 = init::randn(&[3, 3], 1.0, &mut rng);

        let x1 = Var::parameter(xt.clone());
        let y1 = x1.mul(&x1);
        y1.backward_with(&g1.add(&g2));

        let x2 = Var::parameter(xt.clone());
        let y2 = x2.mul(&x2);
        y2.backward_with(&g1);
        let y3 = x2.mul(&x2);
        y3.backward_with(&g2);

        prop_assert!(x1.grad().unwrap().allclose(&x2.grad().unwrap(), 1e-4));
    }

    #[test]
    fn memory_tracker_is_balanced(t in tensor_strategy(16, 16)) {
        let before = MemoryTracker::stats().current_bytes;
        {
            let a = t.clone();
            let b = a.add(&t);
            let _ = b.matmul_nt(&a);
        }
        prop_assert_eq!(MemoryTracker::stats().current_bytes, before);
        let s = MemoryTracker::stats();
        prop_assert!(s.peak_bytes >= s.current_bytes);
    }
}
