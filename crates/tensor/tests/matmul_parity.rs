//! Bitwise 1-vs-N-thread parity for the three parallel matmul kernels.
//!
//! `matmul`, `matmul_tn`, and `matmul_nt` chunk over output rows with one
//! writer per row and an unchanged per-element accumulation order, so
//! their results must be identical bit for bit at any thread count (see
//! DESIGN.md §8).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sar_tensor::{init, pool, Tensor};

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    pool::set_threads(n);
    let out = f();
    pool::set_threads(1);
    out
}

fn assert_bitwise_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (k, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {k} diverges across thread counts: {x} vs {y}"
        );
    }
}

#[test]
fn matmul_variants_are_threadcount_invariant() {
    let mut rng = StdRng::seed_from_u64(7);
    // Odd sizes on purpose: uneven chunk boundaries.
    let (m, k, n) = (67, 33, 29);
    let a = init::randn(&[m, k], 1.0, &mut rng);
    let b = init::randn(&[k, n], 1.0, &mut rng);
    let at = init::randn(&[k, m], 1.0, &mut rng); // for A^T · B
    let bt = init::randn(&[n, k], 1.0, &mut rng); // for A · B^T
    let run = || vec![a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt)];
    let seq = with_threads(1, run);
    let par = with_threads(4, run);
    for (name, (s, p)) in ["matmul", "matmul_tn", "matmul_nt"]
        .iter()
        .zip(seq.iter().zip(&par))
    {
        assert_bitwise_eq(s, p, name);
    }
}

#[test]
fn zero_skip_path_is_threadcount_invariant() {
    // The kernels skip zero entries of A; make sure the skip logic does
    // not change the accumulation order across thread counts.
    let mut rng = StdRng::seed_from_u64(8);
    let (m, k, n) = (41, 17, 23);
    let mut a = init::randn(&[m, k], 1.0, &mut rng);
    for (i, v) in a.data_mut().iter_mut().enumerate() {
        if i % 3 == 0 {
            *v = 0.0;
        }
    }
    let b = init::randn(&[k, n], 1.0, &mut rng);
    let seq = with_threads(1, || a.matmul(&b));
    let par = with_threads(4, || a.matmul(&b));
    assert_bitwise_eq(&seq, &par, "matmul with zeros");
}
