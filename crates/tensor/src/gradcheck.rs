//! Numerical gradient checking, used throughout the workspace's test
//! suites to validate analytic gradients — including the hand-derived
//! backward passes of the fused attention kernels and of SAR's
//! rematerializing aggregation.

use crate::{Tensor, Var};

/// Compares analytic gradients of `f` against central finite differences.
///
/// `inputs` become parameters; `f` must build a scalar output from them.
/// Every input element is perturbed by `±eps` (default `1e-2`, chosen for
/// `f32` precision) and the relative error of each gradient entry must stay
/// below `tol`.
///
/// # Panics
///
/// Panics (with a descriptive message) if any gradient entry disagrees —
/// this is a test utility.
pub fn check_gradients(inputs: &[Tensor], f: impl Fn(&[Var]) -> Var, tol: f32) {
    check_gradients_eps(inputs, f, tol, 1e-2);
}

/// [`check_gradients`] with an explicit finite-difference step.
///
/// # Panics
///
/// Panics if any gradient entry disagrees beyond `tol`.
pub fn check_gradients_eps(inputs: &[Tensor], f: impl Fn(&[Var]) -> Var, tol: f32, eps: f32) {
    let vars: Vec<Var> = inputs.iter().map(|t| Var::parameter(t.clone())).collect();
    let out = f(&vars);
    assert_eq!(out.value().numel(), 1, "gradcheck requires a scalar output");
    out.backward();
    let analytic: Vec<Option<Tensor>> = vars.iter().map(Var::grad).collect();

    for (vi, input) in inputs.iter().enumerate() {
        let grad = analytic[vi]
            .as_ref()
            .unwrap_or_else(|| panic!("input {vi} received no gradient"));
        for e in 0..input.numel() {
            let mut plus = input.clone();
            plus.data_mut()[e] += eps;
            let mut minus = input.clone();
            minus.data_mut()[e] -= eps;

            let eval = |perturbed: Tensor| -> f32 {
                let vars: Vec<Var> = inputs
                    .iter()
                    .enumerate()
                    .map(|(k, t)| {
                        Var::constant(if k == vi {
                            perturbed.clone()
                        } else {
                            t.clone()
                        })
                    })
                    .collect();
                f(&vars).value().item()
            };
            let numeric = (eval(plus) - eval(minus)) / (2.0 * eps);
            let a = grad.data()[e];
            let denom = 1.0f32.max(a.abs()).max(numeric.abs());
            let rel = (a - numeric).abs() / denom;
            assert!(
                rel <= tol,
                "gradient mismatch at input {vi} elem {e}: analytic {a}, numeric {numeric} (rel err {rel}, tol {tol})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_correct_gradient() {
        let x = Tensor::from_vec(&[3], vec![1.0, -2.0, 0.5]);
        check_gradients(&[x], |vs| vs[0].mul(&vs[0]).sum(), 1e-2);
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn rejects_wrong_gradient() {
        struct Bad {
            parents: Vec<Var>,
        }
        impl crate::Function for Bad {
            fn parents(&self) -> &[Var] {
                &self.parents
            }
            fn backward(&self, g: &Tensor, _output: &Tensor) -> Vec<Option<Tensor>> {
                // Claims d(x²)/dx = 3x (wrong).
                vec![Some(g.mul(&self.parents[0].value().scale(3.0)))]
            }
        }
        let x = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        check_gradients(
            &[x],
            |vs| {
                let v = vs[0].value().mul(&vs[0].value());
                Var::from_function(
                    v,
                    Bad {
                        parents: vec![vs[0].clone()],
                    },
                )
                .sum()
            },
            1e-2,
        );
    }
}
