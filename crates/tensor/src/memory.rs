//! Thread-local accounting of live tensor bytes.
//!
//! Every [`Tensor`](crate::Tensor) registers its payload bytes with the
//! tracker of the thread it was created on and deregisters them when
//! dropped. Because the SAR reproduction runs each simulated cluster worker
//! on its own thread, the per-thread peak directly yields the per-worker
//! peak memory the paper reports in its figures.
//!
//! Tensors must not be moved across threads while tracked (the bookkeeping
//! would land on the wrong thread). Cross-worker messages therefore carry
//! raw `Vec<f32>` payloads obtained via
//! [`Tensor::into_data`](crate::Tensor::into_data), which detaches the
//! bytes from the tracker first.

use std::cell::Cell;

/// A snapshot of the current thread's tensor-memory counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Bytes of tensor payloads currently alive on this thread.
    pub current_bytes: usize,
    /// High-water mark of `current_bytes` since the last
    /// [`MemoryTracker::reset_peak`].
    pub peak_bytes: usize,
    /// Number of tensor allocations registered since thread start.
    pub allocations: u64,
}

impl MemoryStats {
    /// Peak memory in mebibytes, convenient for reports.
    pub fn peak_mib(&self) -> f64 {
        self.peak_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Current memory in mebibytes.
    pub fn current_mib(&self) -> f64 {
        self.current_bytes as f64 / (1024.0 * 1024.0)
    }
}

thread_local! {
    static CURRENT: Cell<usize> = const { Cell::new(0) };
    static PEAK: Cell<usize> = const { Cell::new(0) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Handle to the calling thread's tensor-memory accountant.
///
/// The tracker is always active; `MemoryTracker` is a zero-sized handle that
/// names the thread-local counters.
///
/// # Example
///
/// ```
/// use sar_tensor::{MemoryTracker, Tensor};
///
/// MemoryTracker::reset_peak();
/// let before = MemoryTracker::stats().peak_bytes;
/// let t = Tensor::zeros(&[1024, 64]);
/// assert!(MemoryTracker::stats().peak_bytes >= before + 1024 * 64 * 4);
/// drop(t);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoryTracker;

impl MemoryTracker {
    /// Returns the calling thread's counters.
    pub fn stats() -> MemoryStats {
        MemoryStats {
            current_bytes: CURRENT.with(Cell::get),
            peak_bytes: PEAK.with(Cell::get),
            allocations: ALLOCS.with(Cell::get),
        }
    }

    /// Resets the peak to the current live byte count.
    ///
    /// Call at the start of a measured region; read
    /// [`MemoryTracker::stats`] at the end.
    pub fn reset_peak() {
        let cur = CURRENT.with(Cell::get);
        PEAK.with(|p| p.set(cur));
    }

    /// Registers `bytes` of a freshly allocated tensor payload.
    pub(crate) fn register(bytes: usize) {
        CURRENT.with(|c| {
            let cur = c.get() + bytes;
            c.set(cur);
            PEAK.with(|p| {
                if cur > p.get() {
                    p.set(cur);
                }
            });
        });
        ALLOCS.with(|a| a.set(a.get() + 1));
    }

    /// Deregisters `bytes` of a dropped tensor payload.
    ///
    /// Saturates at zero so that a tensor erroneously moved across threads
    /// corrupts statistics rather than panicking in a destructor.
    pub(crate) fn deregister(bytes: usize) {
        CURRENT.with(|c| c.set(c.get().saturating_sub(bytes)));
    }
}

/// Runs `f` and returns its result together with the peak tensor bytes that
/// were live at any point during the call (including tensors that were
/// already alive when the call started).
///
/// # Example
///
/// ```
/// use sar_tensor::{memory::measure_peak, Tensor};
///
/// let (_, peak) = measure_peak(|| Tensor::ones(&[256, 256]).sum());
/// assert!(peak >= 256 * 256 * 4);
/// ```
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    MemoryTracker::reset_peak();
    let out = f();
    (out, MemoryTracker::stats().peak_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn tracks_alloc_and_drop() {
        let base = MemoryTracker::stats().current_bytes;
        let t = Tensor::zeros(&[10, 10]);
        assert_eq!(MemoryTracker::stats().current_bytes, base + 400);
        drop(t);
        assert_eq!(MemoryTracker::stats().current_bytes, base);
    }

    #[test]
    fn peak_is_high_water_mark() {
        MemoryTracker::reset_peak();
        let base = MemoryTracker::stats().current_bytes;
        {
            let _a = Tensor::zeros(&[100]);
            let _b = Tensor::zeros(&[100]);
        }
        let stats = MemoryTracker::stats();
        assert_eq!(stats.current_bytes, base);
        assert!(stats.peak_bytes >= base + 800);
    }

    #[test]
    fn clone_registers_again() {
        let base = MemoryTracker::stats().current_bytes;
        let t = Tensor::zeros(&[25]);
        let u = t.clone();
        assert_eq!(MemoryTracker::stats().current_bytes, base + 200);
        drop(t);
        drop(u);
        assert_eq!(MemoryTracker::stats().current_bytes, base);
    }

    #[test]
    fn into_data_detaches() {
        let base = MemoryTracker::stats().current_bytes;
        let t = Tensor::zeros(&[25]);
        let v = t.into_data();
        assert_eq!(MemoryTracker::stats().current_bytes, base);
        drop(v);
        assert_eq!(MemoryTracker::stats().current_bytes, base);
    }

    #[test]
    fn measure_peak_reports_inner_alloc() {
        let (_, peak) = measure_peak(|| {
            let t = Tensor::zeros(&[1000]);
            t.sum()
        });
        assert!(peak >= 4000);
    }

    #[test]
    fn peak_never_below_current() {
        MemoryTracker::reset_peak();
        let _t = Tensor::zeros(&[123]);
        let s = MemoryTracker::stats();
        assert!(s.peak_bytes >= s.current_bytes);
    }
}
