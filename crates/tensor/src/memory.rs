//! Thread-local accounting of live tensor bytes.
//!
//! Every [`Tensor`](crate::Tensor) registers its payload bytes with the
//! tracker of the thread it was created on and deregisters them when
//! dropped. Because the SAR reproduction runs each simulated cluster worker
//! on its own thread, the per-thread peak directly yields the per-worker
//! peak memory the paper reports in its figures.
//!
//! Tensors must not be moved across threads while tracked (the bookkeeping
//! would land on the wrong thread). Cross-worker messages therefore carry
//! raw `Vec<f32>` payloads obtained via
//! [`Tensor::into_data`](crate::Tensor::into_data), which detaches the
//! bytes from the tracker first.

use std::cell::{Cell, RefCell};

/// A snapshot of the current thread's tensor-memory counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Bytes of tensor payloads currently alive on this thread.
    pub current_bytes: usize,
    /// High-water mark of `current_bytes` since the last
    /// [`MemoryTracker::reset_peak`].
    pub peak_bytes: usize,
    /// Number of tensor allocations registered since thread start.
    pub allocations: u64,
}

impl MemoryStats {
    /// Peak memory in mebibytes, convenient for reports.
    pub fn peak_mib(&self) -> f64 {
        self.peak_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Current memory in mebibytes.
    pub fn current_mib(&self) -> f64 {
        self.current_bytes as f64 / (1024.0 * 1024.0)
    }
}

thread_local! {
    static CURRENT: Cell<usize> = const { Cell::new(0) };
    static PEAK: Cell<usize> = const { Cell::new(0) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static SCOPES: RefCell<Vec<ScopeSlot>> = const { RefCell::new(Vec::new()) };
    static NEXT_SCOPE_ID: Cell<u64> = const { Cell::new(0) };
}

struct ScopeSlot {
    id: u64,
    start_bytes: usize,
    peak_bytes: usize,
}

/// Handle to the calling thread's tensor-memory accountant.
///
/// The tracker is always active; `MemoryTracker` is a zero-sized handle that
/// names the thread-local counters.
///
/// # Example
///
/// ```
/// use sar_tensor::{MemoryTracker, Tensor};
///
/// MemoryTracker::reset_peak();
/// let before = MemoryTracker::stats().peak_bytes;
/// let t = Tensor::zeros(&[1024, 64]);
/// assert!(MemoryTracker::stats().peak_bytes >= before + 1024 * 64 * 4);
/// drop(t);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoryTracker;

impl MemoryTracker {
    /// Returns the calling thread's counters.
    pub fn stats() -> MemoryStats {
        MemoryStats {
            current_bytes: CURRENT.with(Cell::get),
            peak_bytes: PEAK.with(Cell::get),
            allocations: ALLOCS.with(Cell::get),
        }
    }

    /// Resets the peak to the current live byte count.
    ///
    /// Call at the start of a measured region; read
    /// [`MemoryTracker::stats`] at the end.
    pub fn reset_peak() {
        let cur = CURRENT.with(Cell::get);
        PEAK.with(|p| p.set(cur));
    }

    /// Registers `bytes` of a freshly allocated tensor payload.
    pub(crate) fn register(bytes: usize) {
        let cur = CURRENT.with(|c| {
            let cur = c.get() + bytes;
            c.set(cur);
            PEAK.with(|p| {
                if cur > p.get() {
                    p.set(cur);
                }
            });
            cur
        });
        SCOPES.with(|s| {
            for slot in s.borrow_mut().iter_mut() {
                if cur > slot.peak_bytes {
                    slot.peak_bytes = cur;
                }
            }
        });
        ALLOCS.with(|a| a.set(a.get() + 1));
    }

    /// Deregisters `bytes` of a dropped tensor payload.
    ///
    /// Saturates at zero so that a tensor erroneously moved across threads
    /// corrupts statistics rather than panicking in a destructor.
    pub(crate) fn deregister(bytes: usize) {
        CURRENT.with(|c| c.set(c.get().saturating_sub(bytes)));
    }
}

/// Runs `f` and returns its result together with the peak tensor bytes that
/// were live at any point during the call (including tensors that were
/// already alive when the call started).
///
/// # Example
///
/// ```
/// use sar_tensor::{memory::measure_peak, Tensor};
///
/// let (_, peak) = measure_peak(|| Tensor::ones(&[256, 256]).sum());
/// assert!(peak >= 256 * 256 * 4);
/// ```
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    MemoryTracker::reset_peak();
    let out = f();
    (out, MemoryTracker::stats().peak_bytes)
}

/// The high-water mark observed by one [`MemScope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScopePeak {
    /// Live tensor bytes when the scope was opened.
    pub start_bytes: usize,
    /// Highest live byte count seen while the scope was open (at least
    /// `start_bytes`).
    pub peak_bytes: usize,
}

impl ScopePeak {
    /// Bytes the scope added on top of what was already live — the
    /// *incremental* high-water mark.
    pub fn delta_bytes(&self) -> usize {
        self.peak_bytes - self.start_bytes
    }
}

/// A watermark scope: records the peak live tensor bytes on this thread
/// between [`MemScope::begin`] and [`MemScope::finish`] (or drop).
///
/// Unlike [`MemoryTracker::reset_peak`], scopes nest: any number can be
/// open at once, each observing its own high-water mark. Per-phase memory
/// peaks in the observability ledger are measured this way without
/// disturbing the run-wide peak.
///
/// # Example
///
/// ```
/// use sar_tensor::{memory::MemScope, Tensor};
///
/// let scope = MemScope::begin();
/// let t = Tensor::zeros(&[256, 4]);
/// drop(t);
/// let peak = scope.finish();
/// assert!(peak.delta_bytes() >= 256 * 4 * 4);
/// ```
#[derive(Debug)]
pub struct MemScope {
    id: u64,
}

impl MemScope {
    /// Opens a scope on the calling thread.
    pub fn begin() -> MemScope {
        let id = NEXT_SCOPE_ID.with(|n| {
            let id = n.get();
            n.set(id + 1);
            id
        });
        let cur = CURRENT.with(Cell::get);
        SCOPES.with(|s| {
            s.borrow_mut().push(ScopeSlot {
                id,
                start_bytes: cur,
                peak_bytes: cur,
            })
        });
        MemScope { id }
    }

    /// Closes the scope and returns its high-water mark. Must be called on
    /// the thread that opened the scope (elsewhere it returns zeros).
    pub fn finish(self) -> ScopePeak {
        let out = close_scope(self.id);
        std::mem::forget(self);
        out
    }
}

impl Drop for MemScope {
    fn drop(&mut self) {
        let _ = close_scope(self.id);
    }
}

fn close_scope(id: u64) -> ScopePeak {
    SCOPES.with(|s| {
        let mut slots = s.borrow_mut();
        match slots.iter().position(|slot| slot.id == id) {
            Some(i) => {
                let slot = slots.remove(i);
                ScopePeak {
                    start_bytes: slot.start_bytes,
                    peak_bytes: slot.peak_bytes,
                }
            }
            None => ScopePeak::default(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn tracks_alloc_and_drop() {
        let base = MemoryTracker::stats().current_bytes;
        let t = Tensor::zeros(&[10, 10]);
        assert_eq!(MemoryTracker::stats().current_bytes, base + 400);
        drop(t);
        assert_eq!(MemoryTracker::stats().current_bytes, base);
    }

    #[test]
    fn peak_is_high_water_mark() {
        MemoryTracker::reset_peak();
        let base = MemoryTracker::stats().current_bytes;
        {
            let _a = Tensor::zeros(&[100]);
            let _b = Tensor::zeros(&[100]);
        }
        let stats = MemoryTracker::stats();
        assert_eq!(stats.current_bytes, base);
        assert!(stats.peak_bytes >= base + 800);
    }

    #[test]
    fn clone_registers_again() {
        let base = MemoryTracker::stats().current_bytes;
        let t = Tensor::zeros(&[25]);
        let u = t.clone();
        assert_eq!(MemoryTracker::stats().current_bytes, base + 200);
        drop(t);
        drop(u);
        assert_eq!(MemoryTracker::stats().current_bytes, base);
    }

    #[test]
    fn into_data_detaches() {
        let base = MemoryTracker::stats().current_bytes;
        let t = Tensor::zeros(&[25]);
        let v = t.into_data();
        assert_eq!(MemoryTracker::stats().current_bytes, base);
        drop(v);
        assert_eq!(MemoryTracker::stats().current_bytes, base);
    }

    #[test]
    fn measure_peak_reports_inner_alloc() {
        let (_, peak) = measure_peak(|| {
            let t = Tensor::zeros(&[1000]);
            t.sum()
        });
        assert!(peak >= 4000);
    }

    #[test]
    fn peak_never_below_current() {
        MemoryTracker::reset_peak();
        let _t = Tensor::zeros(&[123]);
        let s = MemoryTracker::stats();
        assert!(s.peak_bytes >= s.current_bytes);
    }

    #[test]
    fn scope_observes_transient_peak() {
        let base = MemoryTracker::stats().current_bytes;
        let scope = MemScope::begin();
        {
            let _a = Tensor::zeros(&[500]);
            let _b = Tensor::zeros(&[250]);
        }
        let peak = scope.finish();
        assert_eq!(peak.start_bytes, base);
        assert!(peak.peak_bytes >= base + 3000);
        assert!(peak.delta_bytes() >= 3000);
    }

    #[test]
    fn scopes_nest_independently() {
        let outer = MemScope::begin();
        let _held = Tensor::zeros(&[100]); // 400 bytes, live across inner
        let inner = MemScope::begin();
        let t = Tensor::zeros(&[100]);
        drop(t);
        let inner_peak = inner.finish();
        let outer_peak = outer.finish();
        // Inner saw only its own 400-byte allocation on top of the held one.
        assert!(inner_peak.delta_bytes() >= 400);
        assert!(outer_peak.delta_bytes() >= inner_peak.delta_bytes() + 400);
    }

    #[test]
    fn scope_drop_without_finish_is_clean() {
        let scope = MemScope::begin();
        drop(scope);
        // A later scope still works (the slot was removed).
        let s = MemScope::begin();
        let _t = Tensor::zeros(&[10]);
        assert!(s.finish().delta_bytes() >= 40);
    }

    #[test]
    fn scope_ignores_prior_peak() {
        // A big allocation before the scope must not leak into it.
        let t = Tensor::zeros(&[10_000]);
        drop(t);
        let scope = MemScope::begin();
        let peak = scope.finish();
        assert_eq!(peak.delta_bytes(), 0);
    }
}
