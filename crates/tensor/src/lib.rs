#![warn(missing_docs)]

//! Dense `f32` tensors with reverse-mode automatic differentiation and
//! per-thread memory accounting.
//!
//! This crate is the PyTorch-autograd substitute used by the SAR
//! (Sequential Aggregation and Rematerialization) reproduction. It provides
//! exactly the hooks SAR needs to cut the autograd tape around the
//! message-passing step of a GNN layer and re-materialize it during the
//! backward pass:
//!
//! * [`Tensor`] — a dense, row-major `f32` tensor of 1 to 3 dimensions with
//!   the usual elementwise, matrix-multiply, reduction and row
//!   gather/scatter operations.
//! * [`Var`] — a tape node wrapping a [`Tensor`]. Operations on `Var`s
//!   record a computational graph; [`Var::backward`] propagates gradients.
//! * [`Function`] — a trait for custom differentiable operations. SAR's
//!   sequential-aggregation forward/backward (Algorithms 1 and 2 of the
//!   paper) is installed through this trait from the `sar-core` crate.
//! * [`no_grad`] — pauses taping, mirroring `torch.no_grad()`. SAR runs the
//!   per-partition fetch/aggregate loop inside such a scope.
//! * [`memory`] — a thread-local byte accountant. Every live tensor's bytes
//!   are tracked, so a worker thread can report its *peak* resident tensor
//!   memory; this is how the paper's peak-memory figures are reproduced.
//!
//! # Example
//!
//! ```
//! use sar_tensor::{Tensor, Var};
//!
//! let w = Var::parameter(Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]));
//! let x = Var::constant(Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]));
//! let y = x.matmul(&w).relu().sum();
//! y.backward();
//! let g = w.grad().expect("gradient");
//! assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
//! ```

pub mod autograd;
pub mod gradcheck;
pub mod init;
pub mod memory;
pub mod pool;
pub mod simd;
mod tensor;
pub mod tier;

pub use autograd::{grad_enabled, hstack, no_grad, Function, Var};
pub use memory::{MemScope, MemoryStats, MemoryTracker, ScopePeak};
pub use tensor::Tensor;
