//! Built-in differentiable operations on [`Var`].
//!
//! Backward closures capture parent `Var` handles (not tensor copies)
//! wherever possible, so the memory held by the tape mirrors what a real
//! autograd framework keeps alive — which is exactly what the SAR memory
//! experiments measure.

use super::Var;
use crate::Tensor;

/// Horizontally concatenates 2-D variables (along columns), with the
/// backward pass splitting the gradient back into per-input column slices.
///
/// Used by jumping-knowledge-style architectures that classify from the
/// concatenation of all layer outputs.
///
/// # Panics
///
/// Panics if `vars` is empty or row counts differ.
pub fn hstack(vars: &[Var]) -> Var {
    assert!(!vars.is_empty(), "hstack of zero variables");
    let values: Vec<Tensor> = vars.iter().map(Var::value_clone).collect();
    let refs: Vec<&Tensor> = values.iter().collect();
    let value = Tensor::hstack(&refs);
    let widths: Vec<usize> = values.iter().map(Tensor::cols).collect();
    drop(values);
    Var::from_op(value, vars.to_vec(), "hstack", move |g| {
        let mut out = Vec::with_capacity(widths.len());
        let mut off = 0;
        for &w in &widths {
            out.push(Some(g.slice_cols(off..off + w)));
            off += w;
        }
        out
    })
}

impl Var {
    // ------------------------------------------------------------------
    // Elementwise arithmetic
    // ------------------------------------------------------------------

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Var) -> Var {
        let value = self.value().add(&other.value());
        Var::from_op(value, vec![self.clone(), other.clone()], "add", |g| {
            vec![Some(g.clone()), Some(g.clone())]
        })
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Var) -> Var {
        let value = self.value().sub(&other.value());
        Var::from_op(value, vec![self.clone(), other.clone()], "sub", |g| {
            vec![Some(g.clone()), Some(g.scale(-1.0))]
        })
    }

    /// Elementwise product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&self, other: &Var) -> Var {
        let value = self.value().mul(&other.value());
        let (a, b) = (self.clone(), other.clone());
        Var::from_op(value, vec![self.clone(), other.clone()], "mul", move |g| {
            vec![Some(g.mul(&b.value())), Some(g.mul(&a.value()))]
        })
    }

    /// Elementwise quotient.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn div(&self, other: &Var) -> Var {
        let value = self.value().div(&other.value());
        let (a, b) = (self.clone(), other.clone());
        Var::from_op(value, vec![self.clone(), other.clone()], "div", move |g| {
            let bv = b.value();
            let da = g.div(&bv);
            let db = g
                .mul(&a.value())
                .zip_map(&bv, |num, den| -num / (den * den));
            vec![Some(da), Some(db)]
        })
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Var {
        let value = self.value().scale(s);
        Var::from_op(value, vec![self.clone()], "scale", move |g| {
            vec![Some(g.scale(s))]
        })
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Var {
        let value = self.value().add_scalar(s);
        Var::from_op(value, vec![self.clone()], "add_scalar", |g| {
            vec![Some(g.clone())]
        })
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Var {
        self.scale(-1.0)
    }

    /// Elementwise square root.
    ///
    /// Gradients are infinite at zero; callers should add an epsilon first
    /// (as batch normalization does).
    pub fn sqrt(&self) -> Var {
        let value = self.value().map(f32::sqrt);
        let a = self.clone();
        Var::from_op(value, vec![self.clone()], "sqrt", move |g| {
            let dv = a.value().map(|x| 0.5 / x.sqrt());
            vec![Some(g.mul(&dv))]
        })
    }

    /// Elementwise natural exponent.
    pub fn exp(&self) -> Var {
        let value = self.value().map(f32::exp);
        let a = self.clone();
        Var::from_op(value, vec![self.clone()], "exp", move |g| {
            vec![Some(g.mul(&a.value().map(f32::exp)))]
        })
    }

    /// Elementwise natural logarithm.
    pub fn log(&self) -> Var {
        let value = self.value().map(f32::ln);
        let a = self.clone();
        Var::from_op(value, vec![self.clone()], "log", move |g| {
            vec![Some(g.div(&a.value()))]
        })
    }

    // ------------------------------------------------------------------
    // Activations
    // ------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let value = self.value().map(|x| x.max(0.0));
        let a = self.clone();
        Var::from_op(value, vec![self.clone()], "relu", move |g| {
            let mask = a.value().map(|x| if x > 0.0 { 1.0 } else { 0.0 });
            vec![Some(g.mul(&mask))]
        })
    }

    /// Leaky rectified linear unit with the given negative slope.
    pub fn leaky_relu(&self, slope: f32) -> Var {
        let value = self.value().map(|x| if x > 0.0 { x } else { slope * x });
        let a = self.clone();
        Var::from_op(value, vec![self.clone()], "leaky_relu", move |g| {
            let mask = a.value().map(|x| if x > 0.0 { 1.0 } else { slope });
            vec![Some(g.mul(&mask))]
        })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let value = self.value().map(|x| 1.0 / (1.0 + (-x).exp()));
        let a = self.clone();
        Var::from_op(value, vec![self.clone()], "sigmoid", move |g| {
            let dv = a.value().map(|x| {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            });
            vec![Some(g.mul(&dv))]
        })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let value = self.value().map(f32::tanh);
        let a = self.clone();
        Var::from_op(value, vec![self.clone()], "tanh", move |g| {
            let dv = a.value().map(|x| 1.0 - x.tanh() * x.tanh());
            vec![Some(g.mul(&dv))]
        })
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix product of 2-D variables.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions differ.
    pub fn matmul(&self, other: &Var) -> Var {
        let value = self.value().matmul(&other.value());
        let (a, b) = (self.clone(), other.clone());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            "matmul",
            move |g| {
                let da = g.matmul_nt(&b.value());
                let db = a.value().matmul_tn(g);
                vec![Some(da), Some(db)]
            },
        )
    }

    /// Adds a 1-D bias to every row of a 2-D variable.
    ///
    /// # Panics
    ///
    /// Panics if the bias length differs from the column count.
    pub fn add_bias(&self, bias: &Var) -> Var {
        let value = self.value().add_row_broadcast(&bias.value());
        Var::from_op(value, vec![self.clone(), bias.clone()], "add_bias", |g| {
            vec![Some(g.clone()), Some(g.sum_axis0())]
        })
    }

    /// Subtracts a 1-D row vector from every row.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the column count.
    pub fn sub_row(&self, row: &Var) -> Var {
        let value = self.value().add_row_broadcast(&row.value().scale(-1.0));
        Var::from_op(value, vec![self.clone(), row.clone()], "sub_row", |g| {
            vec![Some(g.clone()), Some(g.sum_axis0().scale(-1.0))]
        })
    }

    /// Multiplies every row elementwise by a 1-D row vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the column count.
    pub fn mul_row(&self, row: &Var) -> Var {
        let value = self.value().mul_row_broadcast(&row.value());
        let (a, r) = (self.clone(), row.clone());
        Var::from_op(
            value,
            vec![self.clone(), row.clone()],
            "mul_row",
            move |g| {
                let da = g.mul_row_broadcast(&r.value());
                let dr = g.mul(&a.value()).sum_axis0();
                vec![Some(da), Some(dr)]
            },
        )
    }

    /// Divides every row elementwise by a 1-D row vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the column count.
    pub fn div_row(&self, row: &Var) -> Var {
        let inv = {
            let r = row.value().map(|x| 1.0 / x);
            Var::from_op(r, vec![row.clone()], "recip", {
                let row = row.clone();
                move |g| {
                    let dv = row.value().map(|x| -1.0 / (x * x));
                    vec![Some(g.mul(&dv))]
                }
            })
        };
        self.mul_row(&inv)
    }

    /// Multiplies each row `i` by the per-row scalar `col[i]`.
    ///
    /// Used for degree normalization in mean aggregation.
    ///
    /// # Panics
    ///
    /// Panics if `col` length differs from the row count.
    pub fn mul_col(&self, col: &Var) -> Var {
        let value = self.value().mul_col_broadcast(&col.value());
        let (a, c) = (self.clone(), col.clone());
        Var::from_op(
            value,
            vec![self.clone(), col.clone()],
            "mul_col",
            move |g| {
                let da = g.mul_col_broadcast(&c.value());
                let dc = g.mul(&a.value()).sum_axis1();
                vec![Some(da), Some(dc)]
            },
        )
    }

    // ------------------------------------------------------------------
    // Reductions and reshaping
    // ------------------------------------------------------------------

    /// Sum of all elements, as a 1-element variable.
    pub fn sum(&self) -> Var {
        let shape = self.shape();
        let value = Tensor::scalar(self.value().sum());
        Var::from_op(value, vec![self.clone()], "sum", move |g| {
            vec![Some(Tensor::full(&shape, g.item()))]
        })
    }

    /// Mean of all elements, as a 1-element variable.
    pub fn mean(&self) -> Var {
        let n = self.value().numel() as f32;
        self.sum().scale(1.0 / n)
    }

    /// Column sums of a 2-D variable, as a 1-D variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable is not 2-D.
    pub fn sum_axis0(&self) -> Var {
        let rows = self.value().rows();
        let cols = self.value().cols();
        let value = self.value().sum_axis0();
        Var::from_op(value, vec![self.clone()], "sum_axis0", move |g| {
            let mut out = Tensor::zeros(&[rows, cols]);
            for i in 0..rows {
                out.row_mut(i).copy_from_slice(g.data());
            }
            vec![Some(out)]
        })
    }

    /// Views the variable under a new shape.
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Var {
        let old_shape = self.shape();
        let value = self.value().reshape(shape);
        Var::from_op(value, vec![self.clone()], "reshape", move |g| {
            vec![Some(g.reshape(&old_shape))]
        })
    }

    // ------------------------------------------------------------------
    // Row gather / softmax / losses
    // ------------------------------------------------------------------

    /// Gathers rows by index: `out[k] = self[idx[k]]`.
    ///
    /// The backward pass scatter-adds gradients into the source rows —
    /// this is the primitive behind fetching boundary-node features in
    /// domain-parallel training.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, idx: &[u32]) -> Var {
        let value = self.value().gather_rows(idx);
        let idx = idx.to_vec();
        let rows = self.value().rows();
        let cols = self.value().cols();
        Var::from_op(value, vec![self.clone()], "gather_rows", move |g| {
            let mut out = Tensor::zeros(&[rows, cols]);
            out.scatter_add_rows(&idx, g);
            vec![Some(out)]
        })
    }

    /// Numerically-stable row-wise softmax of a 2-D variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable is not 2-D.
    pub fn softmax_rows(&self) -> Var {
        let value = self.value().softmax_rows();
        let a = self.clone();
        Var::from_op(value, vec![self.clone()], "softmax_rows", move |g| {
            let s = a.value().softmax_rows();
            // dX[i] = s[i] * (g[i] - <g[i], s[i]>)
            let dot = g.mul(&s).sum_axis1();
            let mut dx = g.clone();
            let c = s.cols();
            for (i, row) in dx.data_mut().chunks_mut(c).enumerate() {
                let d = dot.data()[i];
                for (x, &sv) in row.iter_mut().zip(s.row(i)) {
                    *x = sv * (*x - d);
                }
            }
            vec![Some(dx)]
        })
    }

    /// Numerically-stable row-wise log-softmax of a 2-D variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable is not 2-D.
    pub fn log_softmax_rows(&self) -> Var {
        let value = self.value().log_softmax_rows();
        let a = self.clone();
        Var::from_op(value, vec![self.clone()], "log_softmax_rows", move |g| {
            let s = a.value().softmax_rows();
            // dX = g - softmax * rowsum(g)
            let rowsum = g.sum_axis1();
            let mut dx = g.clone();
            let c = s.cols();
            for (i, row) in dx.data_mut().chunks_mut(c).enumerate() {
                let r = rowsum.data()[i];
                for (x, &sv) in row.iter_mut().zip(s.row(i)) {
                    *x -= sv * r;
                }
            }
            vec![Some(dx)]
        })
    }

    /// Negative log-likelihood of `labels` under row-wise log-probabilities,
    /// averaged over the rows where `mask` is `true`, optionally scaled by
    /// `1 / normalizer` instead of the local mask count.
    ///
    /// `self` must be `[N, C]` log-probabilities (e.g. from
    /// [`Var::log_softmax_rows`]). Rows with `mask[i] == false` contribute
    /// nothing and receive zero gradient. When `normalizer` is `Some(m)`,
    /// the loss is `Σ_masked -logp / m` — distributed training passes the
    /// *global* masked count here so that per-worker losses sum to the
    /// full-batch loss.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree or any masked label is out of range.
    pub fn nll_masked(&self, labels: &[u32], mask: &[bool], normalizer: Option<f32>) -> Var {
        let (n, c) = (self.value().rows(), self.value().cols());
        assert_eq!(labels.len(), n, "labels length mismatch");
        assert_eq!(mask.len(), n, "mask length mismatch");
        let count = mask.iter().filter(|&&m| m).count();
        let norm = normalizer.unwrap_or(count.max(1) as f32);
        let mut loss = 0.0f64;
        {
            let v = self.value();
            for i in 0..n {
                if mask[i] {
                    let y = labels[i] as usize;
                    assert!(y < c, "label {y} out of range for {c} classes");
                    loss -= v.at(&[i, y]) as f64;
                }
            }
        }
        let value = Tensor::scalar((loss / norm as f64) as f32);
        let labels = labels.to_vec();
        let mask = mask.to_vec();
        Var::from_op(value, vec![self.clone()], "nll_masked", move |g| {
            let scale = g.item() / norm;
            let mut dx = Tensor::zeros(&[n, c]);
            for i in 0..n {
                if mask[i] {
                    dx.row_mut(i)[labels[i] as usize] = -scale;
                }
            }
            vec![Some(dx)]
        })
    }

    /// Dropout: zeroes each element with probability `p` and scales the
    /// survivors by `1 / (1 - p)` (inverted dropout). Identity when
    /// `training` is `false` or `p == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn dropout(&self, p: f32, training: bool, rng: &mut impl rand::Rng) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        if !training || p == 0.0 {
            return self.clone();
        }
        let keep = 1.0 - p;
        let mask_data: Vec<f32> = (0..self.value().numel())
            .map(|_| {
                if rng.random::<f32>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        let mask = Tensor::from_vec(&self.shape(), mask_data);
        let value = self.value().mul(&mask);
        Var::from_op(value, vec![self.clone()], "dropout", move |g| {
            vec![Some(g.mul(&mask))]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn randn(shape: &[usize], seed: u64) -> Tensor {
        crate::init::randn(shape, 1.0, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn add_sub_mul_div_gradients() {
        let a = randn(&[3, 4], 1);
        let b = randn(&[3, 4], 2).map(|x| x + 3.0); // keep away from 0 for div
        check_gradients(&[a.clone(), b.clone()], |vs| vs[0].add(&vs[1]).sum(), 1e-2);
        check_gradients(&[a.clone(), b.clone()], |vs| vs[0].sub(&vs[1]).sum(), 1e-2);
        check_gradients(&[a.clone(), b.clone()], |vs| vs[0].mul(&vs[1]).sum(), 1e-2);
        check_gradients(&[a, b], |vs| vs[0].div(&vs[1]).sum(), 1e-2);
    }

    #[test]
    fn matmul_gradients() {
        let a = randn(&[3, 4], 3);
        let b = randn(&[4, 2], 4);
        check_gradients(&[a, b], |vs| vs[0].matmul(&vs[1]).sum(), 1e-2);
    }

    #[test]
    fn activation_gradients() {
        let a = randn(&[4, 3], 5).map(|x| x + 0.05); // avoid relu kink at 0
        check_gradients(std::slice::from_ref(&a), |vs| vs[0].relu().sum(), 2e-2);
        check_gradients(
            std::slice::from_ref(&a),
            |vs| vs[0].leaky_relu(0.2).sum(),
            2e-2,
        );
        check_gradients(std::slice::from_ref(&a), |vs| vs[0].sigmoid().sum(), 1e-2);
        check_gradients(&[a], |vs| vs[0].tanh().sum(), 1e-2);
    }

    #[test]
    fn exp_log_sqrt_gradients() {
        let a = randn(&[3, 3], 6).map(|x| x.abs() + 0.5);
        check_gradients(std::slice::from_ref(&a), |vs| vs[0].exp().sum(), 1e-2);
        check_gradients(std::slice::from_ref(&a), |vs| vs[0].log().sum(), 1e-2);
        check_gradients(&[a], |vs| vs[0].sqrt().sum(), 1e-2);
    }

    #[test]
    fn broadcast_gradients() {
        let a = randn(&[4, 3], 7);
        let row = randn(&[3], 8).map(|x| x + 2.0);
        let col = randn(&[4], 9);
        check_gradients(
            &[a.clone(), row.clone()],
            |vs| vs[0].add_bias(&vs[1]).sum(),
            1e-2,
        );
        check_gradients(
            &[a.clone(), row.clone()],
            |vs| vs[0].sub_row(&vs[1]).sum(),
            1e-2,
        );
        check_gradients(
            &[a.clone(), row.clone()],
            |vs| vs[0].mul_row(&vs[1]).sum(),
            1e-2,
        );
        check_gradients(&[a.clone(), row], |vs| vs[0].div_row(&vs[1]).sum(), 1e-2);
        check_gradients(&[a, col], |vs| vs[0].mul_col(&vs[1]).sum(), 1e-2);
    }

    #[test]
    fn softmax_gradients() {
        let a = randn(&[3, 5], 10);
        // Weighted sums make the softmax gradient non-trivial.
        let w = Var::constant(randn(&[3, 5], 11));
        check_gradients(
            std::slice::from_ref(&a),
            |vs| vs[0].softmax_rows().mul(&w).sum(),
            1e-2,
        );
        let w2 = Var::constant(randn(&[3, 5], 12));
        check_gradients(&[a], |vs| vs[0].log_softmax_rows().mul(&w2).sum(), 1e-2);
    }

    #[test]
    fn gather_rows_gradient() {
        let a = randn(&[5, 3], 13);
        let idx = vec![4u32, 0, 0, 2];
        let w = Var::constant(randn(&[4, 3], 14));
        check_gradients(&[a], |vs| vs[0].gather_rows(&idx).mul(&w).sum(), 1e-2);
    }

    #[test]
    fn nll_masked_gradient() {
        let a = randn(&[4, 3], 15);
        let labels = vec![0u32, 2, 1, 0];
        let mask = vec![true, false, true, true];
        check_gradients(
            &[a],
            |vs| vs[0].log_softmax_rows().nll_masked(&labels, &mask, None),
            1e-2,
        );
    }

    #[test]
    fn nll_masked_normalizer_scales_loss() {
        let a = Var::constant(Tensor::from_vec(&[2, 2], vec![0.0, 0.0, 0.0, 0.0]));
        let lp = a.log_softmax_rows();
        let labels = vec![0u32, 1];
        let mask = vec![true, true];
        let local = lp.nll_masked(&labels, &mask, None).value().item();
        let global = lp.nll_masked(&labels, &mask, Some(4.0)).value().item();
        assert!((local / 2.0 - global).abs() < 1e-6);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Var::parameter(randn(&[10, 10], 16));
        let y = x.dropout(0.5, false, &mut rng);
        assert!(y.value().allclose(&x.value(), 0.0));
    }

    #[test]
    fn dropout_train_preserves_expectation() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Var::constant(Tensor::ones(&[100, 100]));
        let y = x.dropout(0.3, true, &mut rng);
        let mean = y.value().mean();
        assert!(
            (mean - 1.0).abs() < 0.05,
            "inverted dropout mean ≈ 1, got {mean}"
        );
    }

    #[test]
    fn dropout_gradient_uses_same_mask() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Var::parameter(Tensor::ones(&[50, 2]));
        let y = x.dropout(0.5, true, &mut rng);
        let out = y.value_clone();
        y.sum().backward();
        let g = x.grad().unwrap();
        // Gradient must be the mask itself (scaled), i.e. equal to output
        // since input was all ones.
        assert!(g.allclose(&out, 1e-6));
    }

    #[test]
    fn sum_axis0_and_reshape_gradients() {
        let a = randn(&[3, 4], 17);
        let w = Var::constant(randn(&[4], 18));
        check_gradients(
            std::slice::from_ref(&a),
            |vs| vs[0].sum_axis0().mul(&w).sum(),
            1e-2,
        );
        let w2 = Var::constant(randn(&[4, 3], 19));
        check_gradients(&[a], |vs| vs[0].reshape(&[4, 3]).mul(&w2).sum(), 1e-2);
    }

    #[test]
    fn hstack_values_and_gradients() {
        let a = randn(&[3, 2], 20);
        let b = randn(&[3, 4], 21);
        let w = Var::constant(randn(&[3, 6], 22));
        check_gradients(
            &[a.clone(), b.clone()],
            |vs| super::hstack(&[vs[0].clone(), vs[1].clone()]).mul(&w).sum(),
            1e-2,
        );
        let v = super::hstack(&[Var::constant(a.clone()), Var::constant(b.clone())]);
        assert_eq!(v.shape(), vec![3, 6]);
        assert_eq!(&v.value().row(1)[..2], a.row(1));
        assert_eq!(&v.value().row(1)[2..], b.row(1));
    }

    #[test]
    fn mean_matches_sum_over_n() {
        let a = Var::parameter(Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]));
        assert!((a.mean().value().item() - 2.5).abs() < 1e-6);
    }
}
