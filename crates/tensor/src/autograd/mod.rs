//! Reverse-mode automatic differentiation.
//!
//! [`Var`] wraps a [`Tensor`] in a reference-counted tape node. Operations
//! on `Var`s record backward closures; [`Var::backward`] runs them in
//! reverse topological order, accumulating gradients into every node that
//! [requires grad](Var::requires_grad).
//!
//! Two features beyond a textbook tape are load-bearing for SAR:
//!
//! * [`no_grad`] — a scope in which operations do **not** extend the tape.
//!   SAR's Algorithm 1 executes the per-partition fetch/aggregate loop in
//!   such a scope so the fetched remote features never become part of the
//!   computational graph.
//! * [`Function`] — user-defined differentiable operations. SAR installs
//!   the whole message-passing + aggregation step as one `Function` whose
//!   backward re-materializes the graph piece by piece (Algorithm 2),
//!   communicating with the other workers as a side effect.
//!
//! Tape nodes hold their backward closure only until `backward` has
//! consumed them (unless `retain_graph` is used), so the graph frees itself
//! as gradients flow — the same behaviour PyTorch exhibits and SAR relies
//! on for its memory guarantees.

mod ops;

pub use ops::hstack;

use std::cell::{Cell, Ref, RefCell};
use std::rc::Rc;

use crate::Tensor;

thread_local! {
    static NEXT_ID: Cell<u64> = const { Cell::new(0) };
    static NO_GRAD_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Returns `true` when operations currently record the tape.
pub fn grad_enabled() -> bool {
    NO_GRAD_DEPTH.with(Cell::get) == 0
}

/// Runs `f` with taping disabled, like `torch.no_grad()`.
///
/// Nesting is allowed; taping resumes when the outermost scope exits, even
/// if `f` panics.
///
/// # Example
///
/// ```
/// use sar_tensor::{no_grad, Tensor, Var};
///
/// let x = Var::parameter(Tensor::scalar(3.0));
/// let y = no_grad(|| x.mul(&x));
/// assert!(!y.requires_grad());
/// ```
pub fn no_grad<T>(f: impl FnOnce() -> T) -> T {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            NO_GRAD_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    NO_GRAD_DEPTH.with(|d| d.set(d.get() + 1));
    let _guard = Guard;
    f()
}

/// A custom differentiable operation.
///
/// Implement this to splice arbitrary computation — including side effects
/// such as inter-worker communication — into the tape. `sar-core` uses it
/// for the sequential aggregation step and for distributed batch
/// normalization.
///
/// The engine calls [`backward`](Function::backward) exactly once with the
/// gradient of the loss w.r.t. this operation's output; the returned vector
/// must contain one entry per parent (in the same order as
/// [`parents`](Function::parents)), `None` meaning "no gradient".
///
/// `backward` also receives the operation's *output value*. Operations
/// whose gradient is naturally expressed in terms of their output (edge
/// softmax, the fused attention kernel) can read it without saving a copy
/// at forward time — mirroring how PyTorch's `save_for_backward` shares
/// the output tensor rather than cloning it.
pub trait Function {
    /// The parent variables this operation consumed.
    fn parents(&self) -> &[Var];

    /// Computes gradients for every parent given the output gradient and
    /// the forward output value.
    fn backward(&self, grad_output: &Tensor, output: &Tensor) -> Vec<Option<Tensor>>;

    /// Operation name for debugging.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// Gradients returned by a backward closure: one per parent.
type ParentGrads = Vec<Option<Tensor>>;

/// Closure-based [`Function`] used by all built-in operations.
struct ClosureFn {
    name: &'static str,
    parents: Vec<Var>,
    backward: Box<dyn Fn(&Tensor) -> ParentGrads>,
}

impl Function for ClosureFn {
    fn parents(&self) -> &[Var] {
        &self.parents
    }

    fn backward(&self, grad_output: &Tensor, _output: &Tensor) -> Vec<Option<Tensor>> {
        (self.backward)(grad_output)
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

struct Node {
    id: u64,
    value: Tensor,
    grad: Option<Tensor>,
    op: Option<Box<dyn Function>>,
    requires_grad: bool,
}

/// A tensor tracked by the autograd tape.
///
/// `Var` is a cheaply clonable handle (`Rc` internally); clones share the
/// same value and gradient. Being `Rc`-based, `Var`s are intentionally
/// **not** `Send`: each simulated SAR worker thread owns its own tape, and
/// data crosses threads only as raw buffers.
///
/// # Example
///
/// ```
/// use sar_tensor::{Tensor, Var};
///
/// let x = Var::parameter(Tensor::scalar(2.0));
/// let y = x.mul(&x).add(&x); // y = x² + x
/// y.backward();
/// assert_eq!(x.grad().unwrap().item(), 5.0); // dy/dx = 2x + 1
/// ```
#[derive(Clone)]
pub struct Var {
    node: Rc<RefCell<Node>>,
}

impl Var {
    fn make(value: Tensor, op: Option<Box<dyn Function>>, requires_grad: bool) -> Var {
        let id = NEXT_ID.with(|n| {
            let id = n.get();
            n.set(id + 1);
            id
        });
        Var {
            node: Rc::new(RefCell::new(Node {
                id,
                value,
                grad: None,
                op,
                requires_grad,
            })),
        }
    }

    /// Creates a leaf that participates in gradients (a trainable
    /// parameter).
    pub fn parameter(value: Tensor) -> Var {
        Var::make(value, None, true)
    }

    /// Creates a leaf that does not require gradients (input data).
    pub fn constant(value: Tensor) -> Var {
        Var::make(value, None, false)
    }

    /// Records the output of a custom [`Function`].
    ///
    /// If taping is disabled or no parent requires a gradient, the result
    /// is a constant and `f` is dropped immediately.
    pub fn from_function(value: Tensor, f: impl Function + 'static) -> Var {
        let requires = grad_enabled() && f.parents().iter().any(Var::requires_grad);
        if requires {
            Var::make(value, Some(Box::new(f)), true)
        } else {
            Var::constant(value)
        }
    }

    /// Records a closure-backed operation: `backward` receives the output
    /// gradient and returns one gradient per parent. Prefer this over a
    /// full [`Function`] impl for operations that don't need the output
    /// value in their backward pass.
    pub fn from_op(
        value: Tensor,
        parents: Vec<Var>,
        name: &'static str,
        backward: impl Fn(&Tensor) -> Vec<Option<Tensor>> + 'static,
    ) -> Var {
        Var::from_function(
            value,
            ClosureFn {
                name,
                parents,
                backward: Box::new(backward),
            },
        )
    }

    /// Whether this variable participates in gradient computation.
    pub fn requires_grad(&self) -> bool {
        self.node.borrow().requires_grad
    }

    /// Borrows the underlying tensor value.
    ///
    /// # Panics
    ///
    /// Panics if the value is mutably borrowed (e.g. inside
    /// [`Var::set_value`]'s closure).
    pub fn value(&self) -> Ref<'_, Tensor> {
        Ref::map(self.node.borrow(), |n| &n.value)
    }

    /// Clones the underlying tensor value.
    pub fn value_clone(&self) -> Tensor {
        self.node.borrow().value.clone()
    }

    /// Shape of the underlying value.
    pub fn shape(&self) -> Vec<usize> {
        self.node.borrow().value.shape().to_vec()
    }

    /// Replaces the underlying value in place (used by optimizers).
    ///
    /// Does not touch the tape; only call this on leaves.
    pub fn set_value(&self, value: Tensor) {
        self.node.borrow_mut().value = value;
    }

    /// Applies `f` to the underlying value in place (used by optimizers).
    pub fn update_value(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.node.borrow_mut().value);
    }

    /// Clones the accumulated gradient, if any.
    pub fn grad(&self) -> Option<Tensor> {
        self.node.borrow().grad.clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        self.node.borrow_mut().grad = None;
    }

    /// Accumulates `g` into this variable's gradient.
    ///
    /// # Panics
    ///
    /// Panics if an existing gradient has a different shape.
    pub fn accumulate_grad(&self, g: &Tensor) {
        let mut node = self.node.borrow_mut();
        match &mut node.grad {
            Some(existing) => existing.add_assign(g),
            None => node.grad = Some(g.clone()),
        }
    }

    /// Returns a constant sharing this variable's current value but
    /// detached from the tape.
    pub fn detach(&self) -> Var {
        Var::constant(self.value_clone())
    }

    /// Stable identifier of the underlying tape node.
    pub fn id(&self) -> u64 {
        self.node.borrow().id
    }

    /// Whether two handles refer to the same tape node.
    pub fn same_node(&self, other: &Var) -> bool {
        Rc::ptr_eq(&self.node, &other.node)
    }

    // ------------------------------------------------------------------
    // Backward engine
    // ------------------------------------------------------------------

    /// Backpropagates from a scalar output, seeding with gradient 1.
    ///
    /// Frees each node's backward closure as soon as it has been consumed
    /// (`retain_graph = false` semantics).
    ///
    /// # Panics
    ///
    /// Panics if the output is not a 1-element tensor.
    pub fn backward(&self) {
        assert_eq!(
            self.node.borrow().value.numel(),
            1,
            "backward() requires a scalar output; use backward_with() otherwise"
        );
        self.backward_with(&Tensor::scalar(1.0));
    }

    /// Backpropagates from this variable with an explicit output gradient.
    ///
    /// This is the `tensor.backward(grad)` PyTorch entry point that SAR's
    /// Algorithm 2 uses to continue backpropagation once the aggregated
    /// error for a worker's local features has been assembled.
    ///
    /// # Panics
    ///
    /// Panics if `grad` does not match the output's shape.
    pub fn backward_with(&self, grad: &Tensor) {
        assert_eq!(
            self.node.borrow().value.shape(),
            grad.shape(),
            "backward gradient shape mismatch"
        );
        // Collect the reachable graph. Node ids increase monotonically with
        // creation order, so descending id order is a valid reverse
        // topological order for the DAG.
        let mut stack = vec![self.clone()];
        let mut seen = std::collections::HashSet::new();
        let mut order: Vec<Var> = Vec::new();
        while let Some(v) = stack.pop() {
            let id = v.id();
            if !seen.insert(id) {
                continue;
            }
            if let Some(op) = v.node.borrow().op.as_ref() {
                for p in op.parents() {
                    stack.push(p.clone());
                }
            }
            order.push(v);
        }
        order.sort_by_key(|v| std::cmp::Reverse(v.id()));

        self.accumulate_grad(grad);
        for v in order {
            // Take the op out so the closure (and the tensors it captured)
            // is freed as soon as this node has propagated — this is the
            // incremental graph freeing SAR's memory accounting relies on.
            let (op, g) = {
                let mut node = v.node.borrow_mut();
                if node.op.is_none() || node.grad.is_none() {
                    continue;
                }
                (node.op.take().unwrap(), node.grad.clone().unwrap())
            };
            let parent_grads = {
                let node = v.node.borrow();
                op.backward(&g, &node.value)
            };
            let parents = op.parents();
            assert_eq!(
                parent_grads.len(),
                parents.len(),
                "op `{}` returned {} grads for {} parents",
                op.name(),
                parent_grads.len(),
                parents.len()
            );
            for (p, pg) in parents.iter().zip(parent_grads) {
                if let Some(pg) = pg {
                    if p.requires_grad() {
                        p.accumulate_grad(&pg);
                    }
                }
            }
            // This node had an op, so it is an intermediate; its gradient
            // is not retained, matching PyTorch's default and keeping
            // memory bounded.
            v.node.borrow_mut().grad = None;
        }
    }
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.node.borrow();
        f.debug_struct("Var")
            .field("id", &n.id)
            .field("shape", &n.value.shape())
            .field("requires_grad", &n.requires_grad)
            .field("has_op", &n.op.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_chain_rule() {
        let x = Var::parameter(Tensor::scalar(3.0));
        let y = x.mul(&x).mul(&x); // x³
        y.backward();
        assert!((x.grad().unwrap().item() - 27.0).abs() < 1e-4);
    }

    #[test]
    fn grad_accumulates_across_uses() {
        let x = Var::parameter(Tensor::scalar(2.0));
        let y = x.add(&x).add(&x); // 3x
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 3.0);
    }

    #[test]
    fn no_grad_cuts_tape() {
        let x = Var::parameter(Tensor::scalar(2.0));
        let y = no_grad(|| x.mul(&x));
        assert!(!y.requires_grad());
        let z = x.mul(&x);
        assert!(z.requires_grad());
    }

    #[test]
    fn no_grad_nests_and_unwinds() {
        assert!(grad_enabled());
        no_grad(|| {
            assert!(!grad_enabled());
            no_grad(|| assert!(!grad_enabled()));
            assert!(!grad_enabled());
        });
        assert!(grad_enabled());
    }

    #[test]
    fn constants_get_no_grad() {
        let c = Var::constant(Tensor::scalar(1.0));
        let x = Var::parameter(Tensor::scalar(2.0));
        let y = c.mul(&x);
        y.backward();
        assert!(c.grad().is_none());
        assert_eq!(x.grad().unwrap().item(), 1.0);
    }

    #[test]
    fn backward_with_injected_gradient() {
        let x = Var::parameter(Tensor::from_vec(&[2], vec![1.0, 2.0]));
        let y = x.mul(&x);
        y.backward_with(&Tensor::from_vec(&[2], vec![10.0, 100.0]));
        let g = x.grad().unwrap();
        assert_eq!(g.data(), &[20.0, 400.0]);
    }

    #[test]
    fn backward_frees_graph() {
        let x = Var::parameter(Tensor::scalar(2.0));
        let y = x.mul(&x);
        y.backward();
        assert!(y.node.borrow().op.is_none(), "op should be dropped");
    }

    #[test]
    fn detach_stops_gradient() {
        let x = Var::parameter(Tensor::scalar(2.0));
        let y = x.mul(&x).detach().mul(&x);
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 4.0); // only the outer factor
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_on_non_scalar_panics() {
        let x = Var::parameter(Tensor::from_vec(&[2], vec![1.0, 2.0]));
        x.mul(&x).backward();
    }

    #[test]
    fn custom_function_round_trip() {
        struct Double {
            parents: Vec<Var>,
        }
        impl Function for Double {
            fn parents(&self) -> &[Var] {
                &self.parents
            }
            fn backward(&self, g: &Tensor, _output: &Tensor) -> Vec<Option<Tensor>> {
                vec![Some(g.scale(2.0))]
            }
            fn name(&self) -> &'static str {
                "double"
            }
        }
        let x = Var::parameter(Tensor::scalar(5.0));
        let value = x.value().scale(2.0);
        let y = Var::from_function(
            value,
            Double {
                parents: vec![x.clone()],
            },
        );
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 2.0);
    }
}
