//! Out-of-core memory tiering: an mmap-backed spill arena and a
//! budget-driven tiered block store.
//!
//! SAR bounds per-worker *working set* at `(K+2)/N` of the graph, but the
//! reproduction still kept every resident partition block, every cached
//! `stale:<r>` protocol block, and every rematerialization input in RAM.
//! This module adds the disk tier beneath them: [`SpillArena`] maps one
//! anonymous-looking temp file into the address space and hands out
//! byte-exact segments; [`TieredStore`] keeps the hottest blocks resident
//! as [`Tensor`]s up to a byte budget and spills the coldest to the arena,
//! faulting them back on demand.
//!
//! Determinism is the load-bearing invariant: a spill is a bitwise copy of
//! the tensor's `f32` payload and a fault is a bitwise copy back, so every
//! consumer observes exactly the bytes it would have observed with the
//! store disabled — `parity_digest()` is identical with spill on or off at
//! any budget. Eviction order is a deterministic queue (coldest-first
//! insertion order refreshed on access), never a hash-map iteration.
//!
//! The spill/fault traffic is metered through thread-local counters that
//! the observability ledger drains per phase via [`take_tier_counters`],
//! mirroring how helper CPU time flows through
//! [`pool::take_helper_cpu_us`](crate::pool::take_helper_cpu_us).

use std::cell::Cell;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::Tensor;

// ----------------------------------------------------------------------
// Counters
// ----------------------------------------------------------------------

thread_local! {
    /// Bytes written to the disk tier since the last drain.
    static SPILL_BYTES: Cell<u64> = const { Cell::new(0) };
    /// Bytes faulted back from the disk tier since the last drain.
    static FAULT_BYTES: Cell<u64> = const { Cell::new(0) };
    /// Nanoseconds the thread spent blocked on disk-tier IO since the
    /// last drain.
    static DISK_BLOCKED_NS: Cell<u64> = const { Cell::new(0) };
}

/// Arena files get a process-wide unique suffix so concurrent worker
/// threads (and re-entrant tests) never collide on a path.
static NEXT_ARENA_ID: AtomicU64 = AtomicU64::new(0);

/// Drains the calling thread's disk-tier counters accumulated since the
/// previous call: `(spill_bytes, fault_bytes, disk_blocked_us)`.
///
/// The observability ledger calls this at phase boundaries and attributes
/// the totals to the phase that just ended, exactly like helper CPU time.
pub fn take_tier_counters() -> (u64, u64, f64) {
    let spill = SPILL_BYTES.with(|c| c.replace(0));
    let fault = FAULT_BYTES.with(|c| c.replace(0));
    let blocked_us = DISK_BLOCKED_NS.with(|c| c.replace(0)) as f64 / 1e3;
    (spill, fault, blocked_us)
}

// ----------------------------------------------------------------------
// Errors
// ----------------------------------------------------------------------

/// Failure of a disk-tier operation.
///
/// The spill path never panics: every fallible step reports through this
/// type so a worker can surface the failure with its rank attached.
#[derive(Debug)]
pub enum TierError {
    /// Filesystem operation failed (create/open/resize of the arena file).
    Io {
        /// What the arena was doing when the error occurred.
        op: &'static str,
        /// The underlying error.
        source: io::Error,
    },
    /// `mmap`/`munmap`/`msync` failed.
    Map {
        /// Which syscall failed.
        op: &'static str,
        /// `errno`-derived description.
        source: io::Error,
    },
    /// A block id was requested that the store does not hold.
    MissingBlock(u64),
}

impl std::fmt::Display for TierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierError::Io { op, source } => write!(f, "spill arena {op}: {source}"),
            TierError::Map { op, source } => write!(f, "spill arena {op}: {source}"),
            TierError::MissingBlock(id) => write!(f, "tiered store has no block {id:#x}"),
        }
    }
}

impl std::error::Error for TierError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TierError::Io { source, .. } | TierError::Map { source, .. } => Some(source),
            TierError::MissingBlock(_) => None,
        }
    }
}

// ----------------------------------------------------------------------
// SpillArena
// ----------------------------------------------------------------------

/// A segment of the arena holding one spilled payload.
///
/// Deliberately neither `Clone` nor `Copy`: a segment is a linear token —
/// loading it frees the underlying bytes, and dropping it without loading
/// leaks them until [`SpillArena`] itself is dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct Segment {
    offset: usize,
    bytes: usize,
}

impl Segment {
    /// Payload length in bytes.
    pub fn len_bytes(&self) -> usize {
        self.bytes
    }
}

/// RAII cleanup for a freshly created temp path during construction.
///
/// Between creating an on-disk artifact (the arena file, the
/// `$TMPDIR/sar-spill-*` directory) and handing it to a value whose own
/// `Drop` removes it, there is a window where an early `return Err(..)`
/// — or a panic unwinding through the constructor — would strand the
/// path on disk. An armed guard closes that window: its `Drop` deletes
/// the path. Call [`TempPathGuard::defuse`] once a `Drop`-carrying owner
/// exists, so the happy path deletes nothing.
#[derive(Debug)]
struct TempPathGuard {
    path: PathBuf,
    is_dir: bool,
    armed: bool,
}

impl TempPathGuard {
    fn file(path: PathBuf) -> TempPathGuard {
        TempPathGuard {
            path,
            is_dir: false,
            armed: true,
        }
    }

    fn dir(path: PathBuf) -> TempPathGuard {
        TempPathGuard {
            path,
            is_dir: true,
            armed: true,
        }
    }

    /// Disarms the guard: ownership of the path has passed to a value
    /// that cleans it up itself.
    fn defuse(mut self) {
        self.armed = false;
    }
}

impl Drop for TempPathGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        if self.is_dir {
            let _ = std::fs::remove_dir_all(&self.path);
        } else {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// Segment offsets are aligned so free-list reuse keeps payloads
/// cache-line aligned.
const SEGMENT_ALIGN: usize = 64;

/// Initial arena file size; doubles on demand.
const INITIAL_CAP: usize = 1 << 20;

/// An mmap-backed append/free block file: the disk tier's storage.
///
/// One temp file, mapped shared and grown by powers of two; allocation is
/// append-first with an exact-size free list (spilled blocks are almost
/// always uniform, so freed segments are reused immediately). The arena is
/// single-threaded by construction (`*mut u8` makes it `!Send`/`!Sync`),
/// matching the one-worker-per-thread architecture.
///
/// All operations are fallible and return [`TierError`]; nothing on this
/// path unwraps or panics.
#[derive(Debug)]
pub struct SpillArena {
    file: File,
    path: PathBuf,
    ptr: *mut u8,
    cap: usize,
    head: usize,
    /// Exact aligned-size free list: `aligned_bytes -> offsets`.
    free: BTreeMap<usize, Vec<usize>>,
    live_bytes: usize,
}

fn align_up(n: usize) -> usize {
    n.div_ceil(SEGMENT_ALIGN) * SEGMENT_ALIGN
}

impl SpillArena {
    /// Creates an arena file inside `dir` (created if absent) and maps it.
    pub fn create(dir: &Path) -> Result<SpillArena, TierError> {
        std::fs::create_dir_all(dir).map_err(|source| TierError::Io {
            op: "create spill dir",
            source,
        })?;
        let id = NEXT_ARENA_ID.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("arena-{}-{id}.bin", std::process::id()));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|source| TierError::Io {
                op: "create arena file",
                source,
            })?;
        // From here to the Ok below, the file exists on disk but no
        // `SpillArena` owns it yet — the guard covers set_len/mmap
        // failures (and any unwind) so aborted construction leaves no
        // arena file behind.
        let guard = TempPathGuard::file(path.clone());
        file.set_len(INITIAL_CAP as u64)
            .map_err(|source| TierError::Io {
                op: "size arena file",
                source,
            })?;
        let ptr = map_file(&file, INITIAL_CAP)?;
        guard.defuse();
        Ok(SpillArena {
            file,
            path,
            ptr,
            cap: INITIAL_CAP,
            head: 0,
            free: BTreeMap::new(),
            live_bytes: 0,
        })
    }

    /// Path of the backing file (for diagnostics and cleanup checks).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of payload currently stored (excluding free-list holes).
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// Current mapped capacity of the backing file.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Copies `data` into the arena and returns the owning [`Segment`].
    ///
    /// The copy is bitwise: `f32` payloads round-trip exactly, which is
    /// what keeps spill on/off runs digest-identical.
    pub fn store(&mut self, data: &[f32]) -> Result<Segment, TierError> {
        let bytes = std::mem::size_of_val(data);
        let offset = self.alloc(bytes)?;
        if bytes > 0 {
            // SAFETY: `alloc` guarantees `offset + bytes <= self.cap` and
            // the mapping at `self.ptr` spans `self.cap` bytes; source and
            // destination are distinct allocations, and a byte-wise copy
            // has no alignment requirement.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    data.as_ptr().cast::<u8>(),
                    self.ptr.add(offset),
                    bytes,
                );
            }
        }
        self.live_bytes += bytes;
        Ok(Segment { offset, bytes })
    }

    /// Copies a segment's payload back out as `f32`s and frees the
    /// segment for reuse.
    pub fn load(&mut self, seg: Segment) -> Result<Vec<f32>, TierError> {
        let Segment { offset, bytes } = seg;
        debug_assert!(offset + bytes <= self.cap, "segment out of bounds");
        let len = bytes / std::mem::size_of::<f32>();
        let mut out: Vec<f32> = vec![0.0; len];
        if bytes > 0 {
            // SAFETY: segments are only minted by `store`, which bounds
            // them within the mapping; `out` owns `bytes` writable bytes;
            // byte-wise copy has no alignment requirement.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    self.ptr.add(offset),
                    out.as_mut_ptr().cast::<u8>(),
                    bytes,
                );
            }
        }
        self.live_bytes -= bytes;
        self.free.entry(align_up(bytes)).or_default().push(offset);
        Ok(out)
    }

    /// Flushes the mapping back to the file (used by tests asserting the
    /// data really lives on disk; faults never need it).
    pub fn sync(&self) -> Result<(), TierError> {
        if self.cap == 0 {
            return Ok(());
        }
        // SAFETY: `self.ptr` is a live MAP_SHARED mapping of `self.cap`
        // bytes established by `map_file`.
        let rc = unsafe { libc::msync(self.ptr.cast::<libc::c_void>(), self.cap, libc::MS_SYNC) };
        if rc != 0 {
            return Err(TierError::Map {
                op: "msync",
                source: io::Error::last_os_error(),
            });
        }
        Ok(())
    }

    fn alloc(&mut self, bytes: usize) -> Result<usize, TierError> {
        let aligned = align_up(bytes);
        if let Some(offsets) = self.free.get_mut(&aligned) {
            if let Some(off) = offsets.pop() {
                return Ok(off);
            }
        }
        if self.head + aligned > self.cap {
            let mut new_cap = self.cap.max(INITIAL_CAP);
            while self.head + aligned > new_cap {
                new_cap *= 2;
            }
            self.remap(new_cap)?;
        }
        let off = self.head;
        self.head += aligned;
        Ok(off)
    }

    fn remap(&mut self, new_cap: usize) -> Result<(), TierError> {
        // SAFETY: `self.ptr` is the live mapping of exactly `self.cap`
        // bytes; after munmap it is not touched until reassigned below.
        let rc = unsafe { libc::munmap(self.ptr.cast::<libc::c_void>(), self.cap) };
        if rc != 0 {
            return Err(TierError::Map {
                op: "munmap (grow)",
                source: io::Error::last_os_error(),
            });
        }
        self.file
            .set_len(new_cap as u64)
            .map_err(|source| TierError::Io {
                op: "grow arena file",
                source,
            })?;
        self.ptr = map_file(&self.file, new_cap)?;
        self.cap = new_cap;
        Ok(())
    }
}

fn map_file(file: &File, len: usize) -> Result<*mut u8, TierError> {
    use std::os::unix::io::AsRawFd;
    // SAFETY: `fd` is a valid open file descriptor sized to at least
    // `len` bytes by the caller; a MAP_SHARED read/write mapping of it is
    // sound, and the returned pointer is checked against MAP_FAILED.
    let ptr = unsafe {
        libc::mmap(
            std::ptr::null_mut(),
            len,
            libc::PROT_READ | libc::PROT_WRITE,
            libc::MAP_SHARED,
            file.as_raw_fd(),
            0,
        )
    };
    if ptr == libc::MAP_FAILED {
        return Err(TierError::Map {
            op: "mmap",
            source: io::Error::last_os_error(),
        });
    }
    Ok(ptr.cast::<u8>())
}

impl Drop for SpillArena {
    fn drop(&mut self) {
        // SAFETY: `self.ptr` is the live mapping of `self.cap` bytes and
        // is never touched again (the arena is being dropped).
        let _ = unsafe { libc::munmap(self.ptr.cast::<libc::c_void>(), self.cap) };
        let _ = std::fs::remove_file(&self.path);
    }
}

// ----------------------------------------------------------------------
// TieredStore
// ----------------------------------------------------------------------

#[derive(Debug)]
struct SpilledBlock {
    seg: Segment,
    shape: Vec<usize>,
}

/// A two-tier block store: RAM up to a byte budget, disk beyond it.
///
/// Blocks are keyed by caller-chosen `u64` ids. [`TieredStore::put`]
/// inserts a block at the hot end of a deterministic eviction queue and
/// spills coldest-first until resident bytes fit the budget;
/// [`TieredStore::take`] removes a block, faulting it back from the
/// arena if it was spilled. Both directions are bitwise copies, so
/// consumers cannot distinguish a faulted block from one that stayed
/// resident — the determinism argument in DESIGN.md §14.
///
/// With `budget == u64::MAX` (or simply never constructing a store) the
/// behaviour degenerates to an in-RAM map, which is how `--mem-budget 0`
/// / flag-absent runs stay byte-identical to the pre-tiering code.
#[derive(Debug)]
pub struct TieredStore {
    arena: SpillArena,
    dir: PathBuf,
    owns_dir: bool,
    budget: u64,
    /// Front = coldest. Deterministic: refreshed only by put/take order.
    resident: VecDeque<(u64, Tensor)>,
    resident_bytes: u64,
    /// Lookup-only map (never iterated), so hashing cannot perturb
    /// determinism.
    spilled: HashMap<u64, SpilledBlock>,
}

impl TieredStore {
    /// Creates a store with its own temp spill directory
    /// (`$TMPDIR/sar-spill-<pid>-<seq>`), removed on drop.
    pub fn new(budget_bytes: u64) -> Result<TieredStore, TierError> {
        let id = NEXT_ARENA_ID.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("sar-spill-{}-{id}", std::process::id()));
        // The store owns this directory; until it exists (with
        // `owns_dir = true`, so its Drop removes the tree) the guard
        // keeps `$TMPDIR/sar-spill-*` from leaking on error or unwind.
        let guard = TempPathGuard::dir(dir.clone());
        let mut store = TieredStore::in_dir(budget_bytes, &dir)?;
        store.owns_dir = true;
        guard.defuse();
        Ok(store)
    }

    /// Creates a store spilling into `dir` (shared dirs are fine — arena
    /// file names are unique). The directory is left in place on drop.
    pub fn in_dir(budget_bytes: u64, dir: &Path) -> Result<TieredStore, TierError> {
        let arena = SpillArena::create(dir)?;
        Ok(TieredStore {
            arena,
            dir: dir.to_path_buf(),
            owns_dir: false,
            budget: budget_bytes,
            resident: VecDeque::new(),
            resident_bytes: 0,
            spilled: HashMap::new(),
        })
    }

    /// The byte budget for the resident tier.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently held in RAM.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Number of blocks currently spilled to disk.
    pub fn spilled_len(&self) -> usize {
        self.spilled.len()
    }

    /// Number of blocks currently resident in RAM.
    pub fn resident_len(&self) -> usize {
        self.resident.len()
    }

    /// True when the store holds no blocks in either tier.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty() && self.spilled.is_empty()
    }

    /// Directory the arena file lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Inserts `t` under `id` at the hot end of the eviction queue, then
    /// spills coldest blocks until resident bytes fit the budget.
    ///
    /// An `id` already present is a caller bug; the old block is replaced
    /// (resident) or leaked to the arena free list on next fault
    /// (spilled), and a `debug_assert` trips in dev builds.
    pub fn put(&mut self, id: u64, t: Tensor) -> Result<(), TierError> {
        debug_assert!(
            !self.spilled.contains_key(&id) && self.resident.iter().all(|(k, _)| *k != id),
            "tiered store already holds block {id:#x}"
        );
        self.resident_bytes += tensor_bytes(&t);
        self.resident.push_back((id, t));
        self.enforce_budget()
    }

    /// Removes and returns block `id`, faulting from disk if it was
    /// spilled. The fault allocates through the normal tensor path, so
    /// memory accounting sees it exactly like a network arrival.
    pub fn take(&mut self, id: u64) -> Result<Tensor, TierError> {
        if let Some(i) = self.resident.iter().position(|(k, _)| *k == id) {
            // Disambiguated remove keeps queue order for the others.
            let (_, t) = match self.resident.remove(i) {
                Some(pair) => pair,
                None => return Err(TierError::MissingBlock(id)),
            };
            self.resident_bytes -= tensor_bytes(&t);
            return Ok(t);
        }
        let block = self
            .spilled
            .remove(&id)
            .ok_or(TierError::MissingBlock(id))?;
        let bytes = block.seg.len_bytes() as u64;
        // sar-check: deterministic(metering: disk-blocked time feeds the
        // fault counters only; the loaded bytes are byte-identical)
        let begin = Instant::now();
        let data = self.arena.load(block.seg)?;
        DISK_BLOCKED_NS.with(|c| c.set(c.get() + begin.elapsed().as_nanos() as u64));
        FAULT_BYTES.with(|c| c.set(c.get() + bytes));
        Ok(Tensor::from_vec(&block.shape, data))
    }

    /// True when either tier holds block `id`.
    pub fn contains(&self, id: u64) -> bool {
        self.spilled.contains_key(&id) || self.resident.iter().any(|(k, _)| *k == id)
    }

    /// Spills *every* resident block to disk (used between epochs to
    /// return the RAM floor to zero regardless of budget).
    pub fn spill_all(&mut self) -> Result<(), TierError> {
        while let Some((id, t)) = self.resident.pop_front() {
            self.resident_bytes -= tensor_bytes(&t);
            self.spill_one(id, t)?;
        }
        Ok(())
    }

    /// Drops every block in both tiers (the arena file shrinks to its
    /// free list; its disk space is reclaimed when the store drops).
    pub fn clear(&mut self) -> Result<(), TierError> {
        self.resident.clear();
        self.resident_bytes = 0;
        // sar-check: deterministic(free-order only: visiting order changes
        // which arena free-list offsets are reused, never any block's
        // bytes — every block is dropped regardless of order)
        let ids: Vec<u64> = self.spilled.keys().copied().collect();
        for id in ids {
            if let Some(block) = self.spilled.remove(&id) {
                // Load-and-discard frees the segment for reuse.
                let _ = self.arena.load(block.seg)?;
            }
        }
        Ok(())
    }

    fn enforce_budget(&mut self) -> Result<(), TierError> {
        while self.resident_bytes > self.budget {
            let Some((id, t)) = self.resident.pop_front() else {
                break;
            };
            self.resident_bytes -= tensor_bytes(&t);
            self.spill_one(id, t)?;
        }
        Ok(())
    }

    fn spill_one(&mut self, id: u64, t: Tensor) -> Result<(), TierError> {
        let shape = t.shape().to_vec();
        let data = t.into_data();
        // sar-check: deterministic(metering: spill-blocked time feeds the
        // spill counters only; the stored bytes are byte-identical)
        let begin = Instant::now();
        let seg = self.arena.store(&data)?;
        DISK_BLOCKED_NS.with(|c| c.set(c.get() + begin.elapsed().as_nanos() as u64));
        SPILL_BYTES.with(|c| c.set(c.get() + seg.len_bytes() as u64));
        self.spilled.insert(id, SpilledBlock { seg, shape });
        Ok(())
    }
}

fn tensor_bytes(t: &Tensor) -> u64 {
    std::mem::size_of_val(t.data()) as u64
}

impl Drop for TieredStore {
    fn drop(&mut self) {
        if self.owns_dir {
            // Unlinking the still-mapped arena file is sound on the unix
            // targets this builds for: the mapping stays valid until the
            // arena's own Drop munmaps it, and its redundant remove_file
            // then fails silently. This way the whole spill footprint is
            // gone even when training aborts mid-epoch.
            let _ = std::fs::remove_file(self.arena.path());
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryTracker;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sar-tier-test-{}-{tag}", std::process::id()))
    }

    #[test]
    fn temp_path_guard_cleans_up_on_error_and_unwind() {
        // Error path (guard dropped while armed): the path is removed.
        let dir = tmp_dir("guard-err");
        std::fs::create_dir_all(&dir).expect("dir");
        let file = dir.join("stranded.bin");
        std::fs::write(&file, b"half-built").expect("write");
        drop(TempPathGuard::file(file.clone()));
        assert!(!file.exists(), "armed guard must remove the file");

        // Unwind path: a panic between creating the spill dir and
        // constructing its owner still removes the whole tree.
        let spill = tmp_dir("guard-unwind");
        std::fs::create_dir_all(&spill).expect("dir");
        std::fs::write(spill.join("arena-0.bin"), b"x").expect("write");
        let spill_moved = spill.clone();
        let unwound = std::panic::catch_unwind(move || {
            let _guard = TempPathGuard::dir(spill_moved);
            panic!("constructor blew up");
        });
        assert!(unwound.is_err());
        assert!(!spill.exists(), "unwind must remove the spill dir");

        // Defused guard: ownership passed to the owner, nothing deleted.
        let kept = dir.join("kept.bin");
        std::fs::write(&kept, b"mine now").expect("write");
        TempPathGuard::file(kept.clone()).defuse();
        assert!(kept.exists(), "defused guard must leave the path alone");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn arena_round_trips_bit_patterns() {
        let dir = tmp_dir("roundtrip");
        let mut arena = SpillArena::create(&dir).expect("arena");
        // NaNs, infinities, -0.0: a bitwise copy must preserve them all.
        let weird = vec![f32::NAN, f32::INFINITY, -0.0, 1.5e-42, -3.25];
        let seg = arena.store(&weird).expect("store");
        let back = arena.load(seg).expect("load");
        let a: Vec<u32> = weird.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = back.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
        drop(arena);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn arena_grows_past_initial_capacity() {
        let dir = tmp_dir("grow");
        let mut arena = SpillArena::create(&dir).expect("arena");
        let big = vec![2.5f32; INITIAL_CAP / 2];
        let a = arena.store(&big).expect("store a");
        let b = arena.store(&big).expect("store b");
        assert!(arena.capacity() > INITIAL_CAP);
        assert_eq!(arena.load(a).expect("load a"), big);
        assert_eq!(arena.load(b).expect("load b"), big);
        drop(arena);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn arena_reuses_freed_segments() {
        let dir = tmp_dir("freelist");
        let mut arena = SpillArena::create(&dir).expect("arena");
        let data = vec![1.0f32; 1000];
        let seg = arena.store(&data).expect("store");
        let head_after_first = arena.head;
        let _ = arena.load(seg).expect("load");
        let seg2 = arena.store(&data).expect("store again");
        assert_eq!(arena.head, head_after_first, "freed segment reused");
        let _ = arena.load(seg2).expect("load 2");
        drop(arena);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_spills_coldest_and_faults_back_identically() {
        let dir = tmp_dir("lru");
        // Budget of 2 blocks of [64, 4] f32 = 2 KiB.
        let block = 64 * 4 * 4;
        let mut store = TieredStore::in_dir(2 * block as u64, &dir).expect("store");
        let make = |seed: f32| {
            Tensor::from_vec(
                &[64, 4],
                (0..256).map(|i| seed + i as f32 * 0.5).collect::<Vec<_>>(),
            )
        };
        let _ = take_tier_counters();
        store.put(1, make(1.0)).expect("put 1");
        store.put(2, make(2.0)).expect("put 2");
        assert_eq!(store.spilled_len(), 0);
        store.put(3, make(3.0)).expect("put 3");
        // Block 1 (coldest) spilled.
        assert_eq!(store.spilled_len(), 1);
        assert!(store.resident_bytes() <= 2 * block as u64);
        let t1 = store.take(1).expect("fault 1");
        assert_eq!(t1.data(), make(1.0).data());
        let (spill, fault, _) = take_tier_counters();
        assert_eq!(spill, block as u64);
        assert_eq!(fault, block as u64);
        let t2 = store.take(2).expect("take 2 (resident)");
        assert_eq!(t2.data(), make(2.0).data());
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_lowers_tracked_resident_memory() {
        let dir = tmp_dir("mem");
        let mut store = TieredStore::in_dir(0, &dir).expect("store");
        let before = MemoryTracker::stats().current_bytes;
        store
            .put(7, Tensor::zeros(&[1024, 16]))
            .expect("put evicts immediately at budget 0");
        // Budget 0: block must not stay resident.
        assert_eq!(MemoryTracker::stats().current_bytes, before);
        assert_eq!(store.resident_len(), 0);
        assert_eq!(store.spilled_len(), 1);
        let t = store.take(7).expect("fault");
        assert_eq!(MemoryTracker::stats().current_bytes, before + 1024 * 16 * 4);
        drop(t);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_block_is_a_typed_error() {
        let dir = tmp_dir("missing");
        let mut store = TieredStore::in_dir(u64::MAX, &dir).expect("store");
        match store.take(99) {
            Err(TierError::MissingBlock(99)) => {}
            other => panic!("expected MissingBlock, got {other:?}"),
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_all_moves_everything_to_disk() {
        let dir = tmp_dir("spillall");
        let mut store = TieredStore::in_dir(u64::MAX, &dir).expect("store");
        for id in 0..4u64 {
            store.put(id, Tensor::ones(&[8, 8])).expect("put");
        }
        store.spill_all().expect("spill_all");
        assert_eq!(store.resident_bytes(), 0);
        assert_eq!(store.spilled_len(), 4);
        for id in 0..4u64 {
            assert_eq!(store.take(id).expect("fault").data(), &[1.0; 64][..]);
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn owned_temp_dir_is_removed_on_drop() {
        let store = TieredStore::new(1024).expect("store");
        let dir = store.dir().to_path_buf();
        assert!(dir.exists());
        drop(store);
        assert!(!dir.exists(), "spill dir {dir:?} should be cleaned up");
    }
}
