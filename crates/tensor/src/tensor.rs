//! The dense tensor type and its raw (non-differentiable) operations.

use crate::memory::MemoryTracker;
use crate::pool;
use crate::simd;

/// Bytes of the streamed `other` operand a k-panel may touch before the
/// panel is cut: sized to sit comfortably inside a per-core L2 cache.
const K_PANEL_BYTES: usize = 256 * 1024;

/// Number of `kk` rows of the `[k, n]` operand that fit in one cache
/// panel. Panels are visited in ascending order per output row, so the
/// accumulation order (and therefore every output bit) is independent of
/// the panel size.
fn k_panel(k: usize, n: usize) -> usize {
    let row_bytes = (n.max(1)) * std::mem::size_of::<f32>();
    (K_PANEL_BYTES / row_bytes).clamp(8, k.max(8))
}

/// A dense, row-major `f32` tensor with 1 to 3 dimensions.
///
/// `Tensor` is a plain value type: operations return new tensors and never
/// record gradients. Differentiable computation is built on top of it by
/// [`Var`](crate::Var).
///
/// Every tensor's payload bytes are registered with the creating thread's
/// [`MemoryTracker`](crate::MemoryTracker) and deregistered on drop, which
/// is how the SAR reproduction measures per-worker peak memory.
///
/// # Example
///
/// ```
/// use sar_tensor::Tensor;
///
/// let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
/// let b = a.transpose();
/// assert_eq!(b.shape(), &[3, 2]);
/// assert_eq!(b.at(&[0, 1]), 4.0);
/// ```
#[derive(Debug)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
    /// Bytes registered with this thread's memory tracker.
    tracked_bytes: usize,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor from a shape and a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if the number of elements implied by `shape` does not match
    /// `data.len()`, or if `shape` has zero or more than three dimensions.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert!(
            !shape.is_empty() && shape.len() <= 3,
            "tensor rank must be 1..=3, got {}",
            shape.len()
        );
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            data.len(),
            "shape {shape:?} implies {numel} elements but data has {}",
            data.len()
        );
        let tracked_bytes = data.len() * std::mem::size_of::<f32>();
        MemoryTracker::register(tracked_bytes);
        Self {
            shape: shape.to_vec(),
            data,
            tracked_bytes,
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel: usize = shape.iter().product();
        Self::from_vec(shape, vec![value; numel])
    }

    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a zero tensor with the same shape as `self`.
    pub fn zeros_like(&self) -> Self {
        Self::zeros(&self.shape)
    }

    /// Creates a 1-element tensor holding `value`.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(&[1], vec![value])
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of dimensions (1..=3).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Number of rows. For a 1-D tensor this is its length.
    pub fn rows(&self) -> usize {
        self.shape[0]
    }

    /// Number of columns of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn cols(&self) -> usize {
        assert_eq!(self.rank(), 2, "cols() requires a 2-D tensor");
        self.shape[1]
    }

    /// Immutable view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, detaching its bytes from the memory tracker and
    /// returning the raw data. Use this before sending a payload to another
    /// worker thread.
    pub fn into_data(mut self) -> Vec<f32> {
        MemoryTracker::deregister(self.tracked_bytes);
        self.tracked_bytes = 0;
        std::mem::take(&mut self.data)
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.flat_index(index)]
    }

    /// Single scalar value of a 1-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires a 1-element tensor");
        self.data[0]
    }

    /// Row `i` of a 2-D tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        let c = self.cols();
        &self.data[i * c..(i + 1) * c]
    }

    /// Mutable row `i` of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `i` is out of bounds.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let c = self.cols();
        &mut self.data[i * c..(i + 1) * c]
    }

    fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut flat = 0;
        for (d, (&i, &s)) in index.iter().zip(&self.shape).enumerate() {
            assert!(i < s, "index {i} out of bounds for dim {d} of size {s}");
            flat = flat * s + i;
        }
        flat
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data viewed under a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Transposes a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        let mut out = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor::from_vec(&[c, r], out)
    }

    /// Stacks `tensors` vertically (along rows). All inputs must be 2-D with
    /// equal column counts.
    ///
    /// # Panics
    ///
    /// Panics if `tensors` is empty or column counts differ.
    pub fn vstack(tensors: &[&Tensor]) -> Tensor {
        assert!(!tensors.is_empty(), "vstack of zero tensors");
        let c = tensors[0].cols();
        let mut data = Vec::new();
        let mut rows = 0;
        for t in tensors {
            assert_eq!(t.cols(), c, "vstack column mismatch");
            data.extend_from_slice(&t.data);
            rows += t.rows();
        }
        Tensor::from_vec(&[rows, c], data)
    }

    /// Concatenates `tensors` horizontally (along columns). All inputs must
    /// be 2-D with equal row counts.
    ///
    /// # Panics
    ///
    /// Panics if `tensors` is empty or row counts differ.
    pub fn hstack(tensors: &[&Tensor]) -> Tensor {
        assert!(!tensors.is_empty(), "hstack of zero tensors");
        let r = tensors[0].rows();
        let total_c: usize = tensors.iter().map(|t| t.cols()).sum();
        let mut data = vec![0.0; r * total_c];
        let mut col_off = 0;
        for t in tensors {
            assert_eq!(t.rows(), r, "hstack row mismatch");
            let c = t.cols();
            for i in 0..r {
                data[i * total_c + col_off..i * total_c + col_off + c].copy_from_slice(t.row(i));
            }
            col_off += c;
        }
        Tensor::from_vec(&[r, total_c], data)
    }

    /// Copies columns `range` of a 2-D tensor into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or the tensor is not 2-D.
    pub fn slice_cols(&self, range: std::ops::Range<usize>) -> Tensor {
        let c = self.cols();
        assert!(range.end <= c, "slice_cols out of bounds");
        let width = range.len();
        let mut out = Vec::with_capacity(self.rows() * width);
        for i in 0..self.rows() {
            out.extend_from_slice(&self.row(i)[range.clone()]);
        }
        Tensor::from_vec(&[self.rows(), width], out)
    }

    /// Copies rows `range` of a 2-D tensor into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice_rows(&self, range: std::ops::Range<usize>) -> Tensor {
        let c = self.cols();
        assert!(range.end <= self.rows(), "slice_rows out of bounds");
        let rows = range.len();
        Tensor::from_vec(
            &[rows, c],
            self.data[range.start * c..range.end * c].to_vec(),
        )
    }

    // ------------------------------------------------------------------
    // Elementwise operations
    // ------------------------------------------------------------------

    /// Applies `f` to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_vec(&self.shape, self.data.iter().map(|&x| f(x)).collect())
    }

    /// Applies `f` pairwise. Shapes must match exactly.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip_map shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        Tensor::from_vec(
            &self.shape,
            self.data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        )
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise quotient.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a / b)
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Adds a 1-D row vector to every row of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D or `bias` length differs from the column
    /// count.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        let c = self.cols();
        assert_eq!(bias.numel(), c, "bias length must match columns");
        let mut out = self.data.clone();
        for row in out.chunks_mut(c) {
            for (x, &b) in row.iter_mut().zip(bias.data()) {
                *x += b;
            }
        }
        Tensor::from_vec(&self.shape, out)
    }

    /// Multiplies every row of a 2-D tensor elementwise by a 1-D row vector.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D or `scale` length differs from the
    /// column count.
    pub fn mul_row_broadcast(&self, scale: &Tensor) -> Tensor {
        let c = self.cols();
        assert_eq!(scale.numel(), c, "scale length must match columns");
        let mut out = self.data.clone();
        for row in out.chunks_mut(c) {
            for (x, &s) in row.iter_mut().zip(scale.data()) {
                *x *= s;
            }
        }
        Tensor::from_vec(&self.shape, out)
    }

    /// Multiplies each row `i` of a 2-D tensor by `col[i]` (a per-row
    /// scalar held in a 1-D tensor).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D or `col` length differs from the row
    /// count.
    pub fn mul_col_broadcast(&self, col: &Tensor) -> Tensor {
        let c = self.cols();
        assert_eq!(col.numel(), self.rows(), "col length must match rows");
        let mut out = self.data.clone();
        for (i, row) in out.chunks_mut(c).enumerate() {
            let s = col.data()[i];
            for x in row.iter_mut() {
                *x *= s;
            }
        }
        Tensor::from_vec(&self.shape, out)
    }

    // ------------------------------------------------------------------
    // Matrix multiplication
    // ------------------------------------------------------------------

    /// Matrix product `self × other` of 2-D tensors.
    ///
    /// Uses an i-k-j loop order with the inner j-loop running through the
    /// SIMD [`crate::simd::axpy`] primitive, and blocks the k dimension
    /// into cache-sized panels so the touched rows of `other` stay
    /// resident while a chunk of output rows sweeps over them. Output
    /// rows are computed in parallel on the worker's thread pool
    /// ([`crate::pool`]); per output row the k panels are visited in
    /// ascending order, so every element sees the same ascending-`kk`
    /// sequence of adds as the unblocked scalar product — results are
    /// bitwise identical at any thread count, panel size, or SIMD mode.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
        let panel = k_panel(k, n);
        let mut out = vec![0.0f32; m * n];
        {
            let out_s = pool::SharedSlice::new(&mut out);
            pool::parallel_for(m, 1, |lo, hi| {
                // SAFETY: chunks claim disjoint `lo..hi` row ranges, so the
                // element ranges `lo*n..hi*n` never overlap across threads.
                let rows = unsafe { out_s.range_mut(lo * n, hi * n) };
                let mut p0 = 0;
                while p0 < k {
                    let p1 = (p0 + panel).min(k);
                    for i in lo..hi {
                        let a_row = &self.data[i * k + p0..i * k + p1];
                        let o_row = &mut rows[(i - lo) * n..(i - lo + 1) * n];
                        for (dk, &a) in a_row.iter().enumerate() {
                            if a == 0.0 {
                                continue;
                            }
                            let kk = p0 + dk;
                            simd::axpy(a, &other.data[kk * n..(kk + 1) * n], o_row);
                        }
                    }
                    p0 = p1;
                }
            });
        }
        Tensor::from_vec(&[m, n], out)
    }

    /// Matrix product `selfᵀ × other` without materializing the transpose.
    ///
    /// Parallel over output rows with the same k-panel blocking and SIMD
    /// inner loop as [`Tensor::matmul`]; per row the reduction still runs
    /// over `kk` ascending with the same zero-skips as the sequential
    /// k-outer sweep did, so each element sees the identical sequence of
    /// adds.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or row counts differ.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let (k, m) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul_tn leading dimension mismatch: {k} vs {k2}");
        let panel = k_panel(k, n);
        let mut out = vec![0.0f32; m * n];
        {
            let out_s = pool::SharedSlice::new(&mut out);
            pool::parallel_for(m, 1, |lo, hi| {
                // SAFETY: chunks claim disjoint `lo..hi` row ranges, so the
                // element ranges `lo*n..hi*n` never overlap across threads.
                let rows = unsafe { out_s.range_mut(lo * n, hi * n) };
                let mut p0 = 0;
                while p0 < k {
                    let p1 = (p0 + panel).min(k);
                    for i in lo..hi {
                        let o_row = &mut rows[(i - lo) * n..(i - lo + 1) * n];
                        for kk in p0..p1 {
                            let a = self.data[kk * m + i];
                            if a == 0.0 {
                                continue;
                            }
                            simd::axpy(a, &other.data[kk * n..(kk + 1) * n], o_row);
                        }
                    }
                    p0 = p1;
                }
            });
        }
        Tensor::from_vec(&[m, n], out)
    }

    /// Matrix product `self × otherᵀ` without materializing the transpose.
    ///
    /// Each output element is an independent dot product computed through
    /// the fixed-tree SIMD [`crate::simd::dot`], which is bitwise
    /// identical between its vector and scalar paths; the k dimension is
    /// not panelled here because splitting a dot's accumulator would
    /// change its reduction tree.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or column counts differ.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul_nt inner dimension mismatch: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        {
            let out_s = pool::SharedSlice::new(&mut out);
            pool::parallel_for(m, 1, |lo, hi| {
                // SAFETY: chunks claim disjoint `lo..hi` row ranges, so the
                // element ranges `lo*n..hi*n` never overlap across threads.
                let rows = unsafe { out_s.range_mut(lo * n, hi * n) };
                for i in lo..hi {
                    let a_row = &self.data[i * k..(i + 1) * k];
                    for j in 0..n {
                        let b_row = &other.data[j * k..(j + 1) * k];
                        rows[(i - lo) * n + j] = simd::dot(a_row, b_row);
                    }
                }
            });
        }
        Tensor::from_vec(&[m, n], out)
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn mean(&self) -> f32 {
        assert!(self.numel() > 0, "mean of empty tensor");
        self.sum() / self.numel() as f32
    }

    /// Column sums of a 2-D tensor, as a 1-D tensor of length `cols`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn sum_axis0(&self) -> Tensor {
        let c = self.cols();
        let mut out = vec![0.0f32; c];
        for row in self.data.chunks(c) {
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        Tensor::from_vec(&[c], out)
    }

    /// Row sums of a 2-D tensor, as a 1-D tensor of length `rows`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn sum_axis1(&self) -> Tensor {
        let c = self.cols();
        let out: Vec<f32> = self.data.chunks(c).map(|r| r.iter().sum()).collect();
        Tensor::from_vec(&[self.rows()], out)
    }

    /// Index of the maximum entry in each row of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or has zero columns.
    pub fn argmax_rows(&self) -> Vec<u32> {
        let c = self.cols();
        assert!(c > 0, "argmax over zero columns");
        self.data
            .chunks(c)
            .map(|row| {
                let mut best = 0usize;
                for (j, &x) in row.iter().enumerate() {
                    if x > row[best] {
                        best = j;
                    }
                }
                best as u32
            })
            .collect()
    }

    /// Largest absolute element, or 0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    // ------------------------------------------------------------------
    // Gather / scatter
    // ------------------------------------------------------------------

    /// Gathers rows of a 2-D tensor by index: `out[k] = self[idx[k]]`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D or any index is out of bounds.
    pub fn gather_rows(&self, idx: &[u32]) -> Tensor {
        let c = self.cols();
        let r = self.rows();
        let mut out = Vec::with_capacity(idx.len() * c);
        for &i in idx {
            let i = i as usize;
            assert!(i < r, "gather_rows index {i} out of bounds ({r} rows)");
            out.extend_from_slice(&self.data[i * c..(i + 1) * c]);
        }
        Tensor::from_vec(&[idx.len(), c], out)
    }

    /// Scatter-adds rows of `src` into `self`: `self[idx[k]] += src[k]`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible or any index is out of bounds.
    pub fn scatter_add_rows(&mut self, idx: &[u32], src: &Tensor) {
        let c = self.cols();
        assert_eq!(src.cols(), c, "scatter_add_rows column mismatch");
        assert_eq!(
            src.rows(),
            idx.len(),
            "scatter_add_rows index count mismatch"
        );
        let r = self.rows();
        for (k, &i) in idx.iter().enumerate() {
            let i = i as usize;
            assert!(i < r, "scatter_add_rows index {i} out of bounds ({r} rows)");
            let dst = &mut self.data[i * c..(i + 1) * c];
            for (d, &s) in dst.iter_mut().zip(src.row(k)) {
                *d += s;
            }
        }
    }

    // ------------------------------------------------------------------
    // Row-wise softmax helpers
    // ------------------------------------------------------------------

    /// Numerically-stable row-wise softmax of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn softmax_rows(&self) -> Tensor {
        let c = self.cols();
        let mut out = self.data.clone();
        for row in out.chunks_mut(c) {
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let mut denom = 0.0f32;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                denom += *x;
            }
            for x in row.iter_mut() {
                *x /= denom;
            }
        }
        Tensor::from_vec(&self.shape, out)
    }

    /// Numerically-stable row-wise log-softmax of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn log_softmax_rows(&self) -> Tensor {
        let c = self.cols();
        let mut out = self.data.clone();
        for row in out.chunks_mut(c) {
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let log_denom = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
            for x in row.iter_mut() {
                *x = *x - max - log_denom;
            }
        }
        Tensor::from_vec(&self.shape, out)
    }

    /// Returns `true` when every pairwise difference is within `tol`.
    ///
    /// Shapes must match; a shape mismatch returns `false`.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())))
    }
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor::from_vec(&self.shape, self.data.clone())
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        MemoryTracker::deregister(self.tracked_bytes);
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data == other.data
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.numel() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(data: [[f32; 2]; 2]) -> Tensor {
        Tensor::from_vec(&[2, 2], data.concat())
    }

    #[test]
    fn from_vec_and_accessors() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.row(1), &[4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "implies")]
    fn from_vec_shape_mismatch_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn matmul_matches_manual() {
        let a = t2([[1., 2.], [3., 4.]]);
        let b = t2([[5., 6.], [7., 8.]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_tn_matches_transpose() {
        let a = Tensor::from_vec(&[3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![1., 0., 0., 1., 1., 1.]);
        let c = a.matmul_tn(&b);
        let c_ref = a.transpose().matmul(&b);
        assert!(c.allclose(&c_ref, 1e-6));
    }

    #[test]
    fn matmul_nt_matches_transpose() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[4, 3], (0..12).map(|x| x as f32).collect());
        let c = a.matmul_nt(&b);
        let c_ref = a.matmul(&b.transpose());
        assert!(c.allclose(&c_ref, 1e-6));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn broadcast_ops() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let bias = Tensor::from_vec(&[2], vec![10., 20.]);
        assert_eq!(a.add_row_broadcast(&bias).data(), &[11., 22., 13., 24.]);
        assert_eq!(a.mul_row_broadcast(&bias).data(), &[10., 40., 30., 80.]);
        let col = Tensor::from_vec(&[2], vec![2., 3.]);
        assert_eq!(a.mul_col_broadcast(&col).data(), &[2., 4., 9., 12.]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.sum(), 21.0);
        assert_eq!(a.mean(), 3.5);
        assert_eq!(a.sum_axis0().data(), &[5., 7., 9.]);
        assert_eq!(a.sum_axis1().data(), &[6., 15.]);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 5., 5., 7., 2., 3.]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn gather_scatter_round_trip() {
        let a = Tensor::from_vec(&[3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g.data(), &[5., 6., 1., 2.]);
        let mut z = Tensor::zeros(&[3, 2]);
        z.scatter_add_rows(&[2, 0], &g);
        assert_eq!(z.data(), &[1., 2., 0., 0., 5., 6.]);
    }

    #[test]
    fn scatter_add_accumulates_duplicates() {
        let mut z = Tensor::zeros(&[2, 1]);
        let src = Tensor::from_vec(&[3, 1], vec![1., 2., 4.]);
        z.scatter_add_rows(&[0, 0, 1], &src);
        assert_eq!(z.data(), &[3., 4.]);
    }

    #[test]
    fn softmax_rows_sums_to_one_and_is_stable() {
        let a = Tensor::from_vec(&[2, 3], vec![1000., 1001., 1002., -5., 0., 5.]);
        let s = a.softmax_rows();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(s.row(i).iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let a = Tensor::from_vec(&[1, 4], vec![0.1, 0.2, 0.3, 0.4]);
        let ls = a.log_softmax_rows();
        let s = a.softmax_rows();
        for j in 0..4 {
            assert!((ls.data()[j] - s.data()[j].ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn stack_and_slice() {
        let a = Tensor::from_vec(&[1, 2], vec![1., 2.]);
        let b = Tensor::from_vec(&[2, 2], vec![3., 4., 5., 6.]);
        let v = Tensor::vstack(&[&a, &b]);
        assert_eq!(v.shape(), &[3, 2]);
        assert_eq!(v.slice_rows(1..3), b);
        let h = Tensor::hstack(&[&b, &b]);
        assert_eq!(h.shape(), &[2, 4]);
        assert_eq!(h.row(0), &[3., 4., 3., 4.]);
    }

    #[test]
    fn allclose_tolerates_small_differences() {
        let a = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(&[2], vec![1.0 + 1e-7, 2.0 - 1e-7]);
        assert!(a.allclose(&b, 1e-5));
        assert!(!a.allclose(&Tensor::from_vec(&[2], vec![1.1, 2.0]), 1e-5));
    }
}
