//! Runtime-dispatched `f32x8` SIMD primitives with a bitwise-identical
//! portable fallback.
//!
//! Every kernel in the workspace funnels its innermost contiguous-`f32`
//! loop through this module. Two implementations exist per primitive:
//!
//! * an AVX2 path using `std::arch` intrinsics (x86-64 only, selected at
//!   runtime via `is_x86_feature_detected!`), and
//! * a portable scalar path structured as the *same* computation: the
//!   scalar code mirrors the vector lane layout exactly (eight independent
//!   accumulator lanes for reductions, identical horizontal-reduction
//!   tree, identical tail handling), so the two paths produce
//!   bitwise-identical results for every input.
//!
//! The determinism argument, per primitive class:
//!
//! * **Elementwise maps** (`add_assign`, `add_into`, `axpy`, `scale`,
//!   `div_assign`, `leaky_relu`): each output element is a fixed IEEE-754
//!   expression of its inputs with no reassociation, so lane width is
//!   irrelevant. The AVX2 paths use separate `_mm256_mul_ps` +
//!   `_mm256_add_ps` (never `_mm256_fmadd_ps` — fused multiply-add rounds
//!   once instead of twice and would change bits).
//! * **Reductions** (`dot`): both paths accumulate into eight lanes —
//!   lane `l` sums `a[8i+l] * b[8i+l]` over `i` — then reduce the lanes
//!   with one fixed tree (`((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`) and
//!   finally fold the ragged tail in sequentially. Same additions, same
//!   order, on both paths.
//!
//! [`set_mode`] installs a process-global override (`ForceScalar`) used by
//! the `--simd` flag of the repro binary to prove end-to-end digest parity
//! with vectorization on vs. off. Because the two paths are bitwise
//! identical, flipping the mode mid-run can never change a result — only
//! throughput.

use std::sync::atomic::{AtomicU8, Ordering};

// ---------------------------------------------------------------------
// Dispatch mode
// ---------------------------------------------------------------------

/// Global SIMD dispatch policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Use the vector path whenever the CPU supports it (default).
    Auto,
    /// Always take the portable scalar path, even on capable CPUs.
    ForceScalar,
}

const MODE_AUTO: u8 = 0;
const MODE_SCALAR: u8 = 1;
static MODE: AtomicU8 = AtomicU8::new(MODE_AUTO);

/// Detection cache: 0 = unknown, 1 = AVX2 available, 2 = not available.
static DETECTED: AtomicU8 = AtomicU8::new(0);

/// Sets the process-global dispatch mode.
///
/// Safe to call at any time from any thread: both paths are bitwise
/// identical, so a mode change can never alter numeric results.
pub fn set_mode(mode: SimdMode) {
    let v = match mode {
        SimdMode::Auto => MODE_AUTO,
        SimdMode::ForceScalar => MODE_SCALAR,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// Returns the current dispatch mode.
pub fn mode() -> SimdMode {
    match MODE.load(Ordering::Relaxed) {
        MODE_SCALAR => SimdMode::ForceScalar,
        _ => SimdMode::Auto,
    }
}

/// Parses a `--simd` flag value (`auto` or `scalar`).
pub fn parse_mode(s: &str) -> Option<SimdMode> {
    match s {
        "auto" => Some(SimdMode::Auto),
        "scalar" | "off" => Some(SimdMode::ForceScalar),
        _ => None,
    }
}

#[cfg(target_arch = "x86_64")]
fn detect_avx2() -> bool {
    match DETECTED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let has = std::arch::is_x86_feature_detected!("avx2");
            DETECTED.store(if has { 1 } else { 2 }, Ordering::Relaxed);
            has
        }
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_avx2() -> bool {
    false
}

/// True when calls will take the AVX2 path (CPU capable and not forced
/// scalar). Reported by `repro kernelbench` so BENCH artifacts record
/// which path was measured.
pub fn active() -> bool {
    MODE.load(Ordering::Relaxed) == MODE_AUTO && detect_avx2()
}

/// Human-readable dispatch description for reports ("avx2" / "scalar").
pub fn dispatch_label() -> &'static str {
    if active() {
        "avx2"
    } else {
        "scalar"
    }
}

// ---------------------------------------------------------------------
// Portable scalar paths (also the reference semantics)
// ---------------------------------------------------------------------

/// Portable implementations, public so parity tests can compare the
/// dispatching entry points against them directly.
pub mod scalar {
    /// `dst[i] += src[i]`.
    pub fn add_assign(dst: &mut [f32], src: &[f32]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }

    /// `dst[i] = a[i] + b[i]`.
    pub fn add_into(dst: &mut [f32], a: &[f32], b: &[f32]) {
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d = x + y;
        }
    }

    /// `dst[i] += a * x[i]` (two roundings: mul then add — no FMA).
    pub fn axpy(a: f32, x: &[f32], dst: &mut [f32]) {
        for (d, &v) in dst.iter_mut().zip(x) {
            *d += a * v;
        }
    }

    /// `dst[i] *= a`.
    pub fn scale(dst: &mut [f32], a: f32) {
        for d in dst.iter_mut() {
            *d *= a;
        }
    }

    /// `dst[i] /= den[i]`.
    pub fn div_assign(dst: &mut [f32], den: &[f32]) {
        for (d, &s) in dst.iter_mut().zip(den) {
            *d /= s;
        }
    }

    /// In-place LeakyReLU: `x if x > 0 else slope * x`.
    // `!(x > 0.0)` (not `x <= 0.0`) so NaN takes the slope branch, exactly
    // matching the vector path's `_CMP_GT_OQ` + blend.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn leaky_relu(dst: &mut [f32], slope: f32) {
        for d in dst.iter_mut() {
            if !(*d > 0.0) {
                *d *= slope;
            }
        }
    }

    /// Dot product with the fixed eight-lane accumulation tree.
    ///
    /// Lane `l` accumulates `a[8i+l] * b[8i+l]`; lanes reduce as
    /// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`; the tail (< 8 elements)
    /// folds in sequentially afterwards. The AVX2 path performs exactly
    /// these operations in exactly this order.
    // sar-check: deterministic(fixed-lane-order: 8 partial sums reduced in
    // a fixed tree, scalar tail folded sequentially — same sequence on
    // every rank and every run)
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let main = n - n % 8;
        let mut lanes = [0.0f32; 8];
        let mut i = 0;
        while i < main {
            for l in 0..8 {
                lanes[l] += a[i + l] * b[i + l];
            }
            i += 8;
        }
        let mut acc = super::reduce_lanes(&lanes);
        for j in main..n {
            acc += a[j] * b[j];
        }
        acc
    }
}

/// Fixed horizontal-reduction tree shared by both dot paths.
#[inline]
fn reduce_lanes(l: &[f32; 8]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

// ---------------------------------------------------------------------
// AVX2 paths
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[deny(unsafe_op_in_unsafe_fn)]
mod avx2 {
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    // sar-check: deterministic(elementwise: each dst[j] gets exactly one
    // add; vector and scalar tails apply the same per-element operation)
    pub unsafe fn add_assign(dst: &mut [f32], src: &[f32]) {
        let n = dst.len().min(src.len());
        let main = n - n % 8;
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i < main {
            // SAFETY: i + 8 <= main <= len of both slices; unaligned
            // loads/stores are explicitly `_mm256_loadu/storeu_ps`.
            unsafe {
                let d = _mm256_loadu_ps(dp.add(i));
                let s = _mm256_loadu_ps(sp.add(i));
                _mm256_storeu_ps(dp.add(i), _mm256_add_ps(d, s));
            }
            i += 8;
        }
        for j in main..n {
            dst[j] += src[j];
        }
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_into(dst: &mut [f32], a: &[f32], b: &[f32]) {
        let n = dst.len().min(a.len()).min(b.len());
        let main = n - n % 8;
        let (dp, ap, bp) = (dst.as_mut_ptr(), a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i < main {
            // SAFETY: i + 8 <= main <= len of all three slices.
            unsafe {
                let x = _mm256_loadu_ps(ap.add(i));
                let y = _mm256_loadu_ps(bp.add(i));
                _mm256_storeu_ps(dp.add(i), _mm256_add_ps(x, y));
            }
            i += 8;
        }
        for j in main..n {
            dst[j] = a[j] + b[j];
        }
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    // sar-check: deterministic(elementwise: each dst[j] gets exactly one
    // fused multiply-add; vector and scalar tails match per element)
    pub unsafe fn axpy(a: f32, x: &[f32], dst: &mut [f32]) {
        let n = dst.len().min(x.len());
        let main = n - n % 8;
        let (dp, xp) = (dst.as_mut_ptr(), x.as_ptr());
        let av = _mm256_set1_ps(a);
        let mut i = 0;
        while i < main {
            // SAFETY: i + 8 <= main <= len of both slices. mul + add kept
            // separate (two roundings) to match the scalar `d += a * v`.
            unsafe {
                let d = _mm256_loadu_ps(dp.add(i));
                let v = _mm256_loadu_ps(xp.add(i));
                _mm256_storeu_ps(dp.add(i), _mm256_add_ps(d, _mm256_mul_ps(av, v)));
            }
            i += 8;
        }
        for j in main..n {
            dst[j] += a * x[j];
        }
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scale(dst: &mut [f32], a: f32) {
        let n = dst.len();
        let main = n - n % 8;
        let dp = dst.as_mut_ptr();
        let av = _mm256_set1_ps(a);
        let mut i = 0;
        while i < main {
            // SAFETY: i + 8 <= main <= dst.len().
            unsafe {
                let d = _mm256_loadu_ps(dp.add(i));
                _mm256_storeu_ps(dp.add(i), _mm256_mul_ps(d, av));
            }
            i += 8;
        }
        for d in &mut dst[main..n] {
            *d *= a;
        }
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn div_assign(dst: &mut [f32], den: &[f32]) {
        let n = dst.len().min(den.len());
        let main = n - n % 8;
        let (dp, sp) = (dst.as_mut_ptr(), den.as_ptr());
        let mut i = 0;
        while i < main {
            // SAFETY: i + 8 <= main <= len of both slices. IEEE division
            // is correctly rounded, so vector divide == scalar divide.
            unsafe {
                let d = _mm256_loadu_ps(dp.add(i));
                let s = _mm256_loadu_ps(sp.add(i));
                _mm256_storeu_ps(dp.add(i), _mm256_div_ps(d, s));
            }
            i += 8;
        }
        for (d, s) in dst[main..n].iter_mut().zip(&den[main..n]) {
            *d /= *s;
        }
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    // Tail uses `!(x > 0.0)` (not `x <= 0.0`) so NaN takes the slope
    // branch, exactly matching `_CMP_GT_OQ` + blend.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn leaky_relu(dst: &mut [f32], slope: f32) {
        let n = dst.len();
        let main = n - n % 8;
        let dp = dst.as_mut_ptr();
        let (sv, zero) = (_mm256_set1_ps(slope), _mm256_setzero_ps());
        let mut i = 0;
        while i < main {
            // SAFETY: i + 8 <= main <= dst.len(). The blend keeps `v`
            // where `v > 0` (ordered, non-signaling compare — false for
            // NaN, matching the scalar `!(v > 0.0)` branch) and takes
            // `slope * v` elsewhere; the multiply is the same single
            // IEEE multiply the scalar path performs.
            unsafe {
                let v = _mm256_loadu_ps(dp.add(i));
                let neg = _mm256_mul_ps(sv, v);
                let gt = _mm256_cmp_ps::<_CMP_GT_OQ>(v, zero);
                _mm256_storeu_ps(dp.add(i), _mm256_blendv_ps(neg, v, gt));
            }
            i += 8;
        }
        for d in &mut dst[main..n] {
            if !(*d > 0.0) {
                *d *= slope;
            }
        }
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let main = n - n % 8;
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < main {
            // SAFETY: i + 8 <= main <= len of both slices. mul + add kept
            // separate (no FMA) so lane `l` accumulates exactly the
            // scalar path's `lanes[l] += a[8i+l] * b[8i+l]` sequence.
            unsafe {
                let x = _mm256_loadu_ps(ap.add(i));
                let y = _mm256_loadu_ps(bp.add(i));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(x, y));
            }
            i += 8;
        }
        let mut lanes = [0.0f32; 8];
        // SAFETY: `lanes` is 8 f32s — exactly one __m256 of storage.
        unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), acc) };
        let mut out = super::reduce_lanes(&lanes);
        for j in main..n {
            out += a[j] * b[j];
        }
        out
    }
}

// ---------------------------------------------------------------------
// Dispatching entry points
// ---------------------------------------------------------------------

macro_rules! dispatch {
    ($name:ident, $($arg:expr),*) => {{
        #[cfg(target_arch = "x86_64")]
        {
            if active() {
                // SAFETY: `active()` verified AVX2 support at runtime.
                return unsafe { avx2::$name($($arg),*) };
            }
        }
        scalar::$name($($arg),*)
    }};
}

/// `dst[i] += src[i]`, vectorized when available.
#[inline]
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    dispatch!(add_assign, dst, src)
}

/// `dst[i] = a[i] + b[i]`, vectorized when available.
#[inline]
pub fn add_into(dst: &mut [f32], a: &[f32], b: &[f32]) {
    dispatch!(add_into, dst, a, b)
}

/// `dst[i] += a * x[i]` (mul then add, never fused), vectorized when
/// available.
#[inline]
pub fn axpy(a: f32, x: &[f32], dst: &mut [f32]) {
    dispatch!(axpy, a, x, dst)
}

/// `dst[i] *= a`, vectorized when available.
#[inline]
pub fn scale(dst: &mut [f32], a: f32) {
    dispatch!(scale, dst, a)
}

/// `dst[i] /= den[i]`, vectorized when available.
#[inline]
pub fn div_assign(dst: &mut [f32], den: &[f32]) {
    dispatch!(div_assign, dst, den)
}

/// In-place LeakyReLU, vectorized when available.
#[inline]
pub fn leaky_relu(dst: &mut [f32], slope: f32) {
    dispatch!(leaky_relu, dst, slope)
}

/// Fixed-tree dot product, vectorized when available. Bitwise identical
/// to [`scalar::dot`] on every input.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dispatch!(dot, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f32>, Vec<f32>) {
        // Deterministic, poorly-conditioned values so reassociation
        // differences would actually show up in the bits.
        let a: Vec<f32> = (0..n)
            .map(|i| ((i * 2654435761 % 1000) as f32 - 500.0) * 1.0e-3 * (1.0 + i as f32))
            .collect();
        let b: Vec<f32> = (0..n)
            .map(|i| ((i * 40503 % 997) as f32 - 498.0) * 2.5e-4 * (1.0 + (i % 17) as f32))
            .collect();
        (a, b)
    }

    #[test]
    fn dispatched_matches_scalar_bitwise_all_lengths() {
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 100, 1023] {
            let (a, b) = vecs(n);

            let mut d1 = a.clone();
            let mut d2 = a.clone();
            add_assign(&mut d1, &b);
            scalar::add_assign(&mut d2, &b);
            assert_eq!(bits(&d1), bits(&d2), "add_assign n={n}");

            let mut d1 = vec![0.0; n];
            let mut d2 = vec![0.0; n];
            add_into(&mut d1, &a, &b);
            scalar::add_into(&mut d2, &a, &b);
            assert_eq!(bits(&d1), bits(&d2), "add_into n={n}");

            let mut d1 = a.clone();
            let mut d2 = a.clone();
            axpy(0.37, &b, &mut d1);
            scalar::axpy(0.37, &b, &mut d2);
            assert_eq!(bits(&d1), bits(&d2), "axpy n={n}");

            let mut d1 = a.clone();
            let mut d2 = a.clone();
            scale(&mut d1, -1.7);
            scalar::scale(&mut d2, -1.7);
            assert_eq!(bits(&d1), bits(&d2), "scale n={n}");

            let den: Vec<f32> = b.iter().map(|x| x.abs() + 0.5).collect();
            let mut d1 = a.clone();
            let mut d2 = a.clone();
            div_assign(&mut d1, &den);
            scalar::div_assign(&mut d2, &den);
            assert_eq!(bits(&d1), bits(&d2), "div_assign n={n}");

            let mut d1 = a.clone();
            let mut d2 = a.clone();
            leaky_relu(&mut d1, 0.2);
            scalar::leaky_relu(&mut d2, 0.2);
            assert_eq!(bits(&d1), bits(&d2), "leaky_relu n={n}");

            assert_eq!(
                dot(&a, &b).to_bits(),
                scalar::dot(&a, &b).to_bits(),
                "dot n={n}"
            );
        }
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }
}
