//! Random tensor initialization (Xavier/Glorot and Gaussian), seeded
//! explicitly so every simulated worker can construct bit-identical
//! parameters.

use rand::Rng;

use crate::Tensor;

/// Standard-normal samples scaled by `std`, via Box–Muller.
pub fn randn(shape: &[usize], std: f32, rng: &mut impl Rng) -> Tensor {
    let numel: usize = shape.iter().product();
    let mut data = Vec::with_capacity(numel);
    while data.len() < numel {
        let u1: f32 = rng.random::<f32>().max(1e-12);
        let u2: f32 = rng.random();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < numel {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(shape, data)
}

/// Uniform samples in `[lo, hi)`.
pub fn uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    let numel: usize = shape.iter().product();
    let data = (0..numel)
        .map(|_| lo + (hi - lo) * rng.random::<f32>())
        .collect();
    Tensor::from_vec(shape, data)
}

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` weight.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(&[fan_in, fan_out], -bound, bound, rng)
}

/// Kaiming/He normal initialization for a `[fan_in, fan_out]` weight.
pub fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    randn(&[fan_in, fan_out], std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = randn(&[10_000], 2.0, &mut rng);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.numel() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn xavier_bound_matches_formula() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = xavier_uniform(30, 20, &mut rng);
        let bound = (6.0f32 / 50.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= bound));
        assert_eq!(t.shape(), &[30, 20]);
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = randn(&[32], 1.0, &mut StdRng::seed_from_u64(7));
        let b = randn(&[32], 1.0, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
