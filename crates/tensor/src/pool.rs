//! A small scoped thread pool for intra-worker kernel parallelism.
//!
//! SAR's workers are single processes that should use every core of
//! their socket (the paper's baselines lean on intra-socket parallelism).
//! This pool parallelizes kernels over *output rows*: [`parallel_for`]
//! splits `0..n` into contiguous chunks and each chunk — and therefore
//! each output row — is processed by exactly one thread. Because every
//! row's reduction runs the same code in the same order regardless of how
//! rows are assigned to threads, results are **bitwise identical** across
//! thread counts (asserted by the kernel parity tests in `sar-graph`).
//!
//! The pool is deliberately thread-local: each simulated worker thread
//! (or each `sar-worker` process) owns its own helpers, sized by
//! [`set_threads`], so workers never share a pool and the per-thread
//! memory tracker in [`crate::memory`] stays coherent. Helper threads
//! must never construct [`Tensor`](crate::Tensor)s — kernels hand them
//! raw row ranges of pre-allocated buffers via [`SharedSlice`].
//!
//! Helper CPU time is metered with the per-thread CPU clock and
//! accumulated on the dispatching thread; the observability layer drains
//! it with [`take_helper_cpu_us`] and folds it into the phase ledger's
//! `cpu_us`, while the separately recorded wall time exposes the
//! parallel speedup (`cpu_us / wall_us`).

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Thread count configured for the calling thread (1 = sequential).
    static CONFIGURED: Cell<usize> = const { Cell::new(1) };
    /// The calling thread's helper pool, present when `CONFIGURED > 1`.
    static POOL: RefCell<Option<Pool>> = const { RefCell::new(None) };
    /// `true` while the calling thread is inside a `parallel_for` body;
    /// nested calls then run inline (the helpers are already busy).
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
    /// Helper CPU nanoseconds accumulated on behalf of this thread since
    /// the last [`take_helper_cpu_us`].
    static HELPER_CPU_NS: Cell<u64> = const { Cell::new(0) };
}

/// Sets the number of threads (including the caller) that kernels
/// dispatched **from the calling thread** may use. `1` (the default)
/// tears the pool down and runs everything inline. Idempotent.
pub fn set_threads(n: usize) {
    let n = n.max(1);
    CONFIGURED.with(|c| c.set(n));
    POOL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let have = slot.as_ref().map_or(1, |p| p.helpers.len() + 1);
        if have != n {
            *slot = if n == 1 { None } else { Some(Pool::new(n - 1)) };
        }
    });
}

/// The thread count configured for the calling thread.
pub fn threads() -> usize {
    CONFIGURED.with(Cell::get)
}

/// Drains the helper CPU microseconds accumulated on behalf of the
/// calling thread since the previous call. The phase ledger adds this to
/// its own thread-CPU delta so `cpu_us` counts *total* compute.
pub fn take_helper_cpu_us() -> f64 {
    HELPER_CPU_NS.with(|c| c.replace(0)) as f64 / 1e3
}

/// Runs `f(lo, hi)` over disjoint sub-ranges covering `0..n`, possibly
/// concurrently on the calling thread plus its pool helpers.
///
/// Chunks are contiguous and at least `grain` items long, so with
/// `n <= grain` (or a thread count of 1, or when called from inside
/// another `parallel_for` body) the call degenerates to the inline
/// `f(0, n)` — the exact sequential loop. Row-parallel kernels rely on
/// this: any output row is written by exactly one invocation of `f`, and
/// each invocation performs the same per-row work as the sequential
/// path, so results do not depend on the thread count.
///
/// `f` must not construct tensors (helper threads have their own memory
/// tracker) and must not panic-recover across rows; a panic in any chunk
/// is re-raised on the calling thread after all helpers have quiesced.
pub fn parallel_for<F>(n: usize, grain: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    if n == 0 {
        return;
    }
    let inline = CONFIGURED.with(Cell::get) <= 1
        || n <= grain.max(1)
        || IN_PARALLEL.with(Cell::get)
        || POOL.with(|slot| slot.borrow().is_none());
    if inline {
        f(0, n);
        return;
    }
    POOL.with(|slot| {
        let slot = slot.borrow();
        // Checked non-None above; set_threads cannot run concurrently on
        // this thread.
        let pool = slot.as_ref().expect("pool torn down mid-dispatch");
        let workers = pool.helpers.len() + 1;
        // Up to 4 chunks per worker so stragglers (skewed row degrees)
        // rebalance, but never chunks shorter than `grain`.
        let chunk = n.div_ceil(workers * 4).max(grain.max(1));
        // SAFETY: lifetime erasure only — the `WaitGuard` below blocks
        // (even on unwind) until every helper has left `f`, so the
        // `'static` reference never outlives the borrow it was cast from.
        let f_erased: &'static (dyn Fn(usize, usize) + Sync) = unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize, usize) + Sync),
                &'static (dyn Fn(usize, usize) + Sync),
            >(&f)
        };
        let dispatch = Arc::new(Dispatch {
            f: f_erased,
            n,
            chunk,
            next: AtomicUsize::new(0),
            remaining: Mutex::new(pool.helpers.len()),
            done: Condvar::new(),
            helper_cpu_ns: AtomicU64::new(0),
            panicked: Mutex::new(None),
        });
        for _ in &pool.helpers {
            let d = Arc::clone(&dispatch);
            pool.submit(Box::new(move || d.run_as_helper()));
        }
        let guard = WaitGuard(&dispatch);
        IN_PARALLEL.with(|c| c.set(true));
        let caller = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dispatch.run_chunks();
        }));
        IN_PARALLEL.with(|c| c.set(false));
        drop(guard); // blocks until every helper finished its chunks
        HELPER_CPU_NS.with(|c| {
            c.set(
                c.get()
                    .saturating_add(dispatch.helper_cpu_ns.load(Ordering::Acquire)),
            )
        });
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        let helper_panic = lock_ignore_poison(&dispatch.panicked).take();
        if let Some(payload) = helper_panic {
            std::panic::resume_unwind(payload);
        }
    });
}

/// One `parallel_for` call's shared work-stealing state. The `'static`
/// on `f` is a lie told by `parallel_for` and backed by its `WaitGuard`:
/// no helper touches `f` after the dispatching frame unwinds.
struct Dispatch {
    f: &'static (dyn Fn(usize, usize) + Sync),
    n: usize,
    chunk: usize,
    next: AtomicUsize,
    remaining: Mutex<usize>,
    done: Condvar,
    helper_cpu_ns: AtomicU64,
    panicked: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Dispatch {
    fn run_chunks(&self) {
        let f = self.f;
        loop {
            let c = self.next.fetch_add(1, Ordering::Relaxed);
            let lo = c * self.chunk;
            if lo >= self.n {
                return;
            }
            f(lo, (lo + self.chunk).min(self.n));
        }
    }

    fn run_as_helper(&self) {
        let t0 = thread_cpu_ns();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_chunks()));
        self.helper_cpu_ns
            .fetch_add(thread_cpu_ns().saturating_sub(t0), Ordering::Release);
        if let Err(payload) = outcome {
            lock_ignore_poison(&self.panicked).get_or_insert(payload);
        }
        let mut rem = lock_ignore_poison(&self.remaining);
        *rem -= 1;
        if *rem == 0 {
            self.done.notify_all();
        }
    }
}

/// Blocks until every helper has left `f`, *even if the caller's own
/// chunk panicked* — otherwise unwinding would drop `f` while helpers
/// still hold the lifetime-erased pointer to it.
struct WaitGuard<'a>(&'a Dispatch);

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        let mut rem = lock_ignore_poison(&self.0.remaining);
        while *rem > 0 {
            rem = self.0.done.wait(rem).unwrap_or_else(|e| e.into_inner());
        }
    }
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The calling thread's CPU clock in nanoseconds (monotonic fallback off
/// Linux) — mirrors `sar_comm::time::thread_cpu_secs`, which lives above
/// this crate in the dependency order.
fn thread_cpu_ns() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let mut ts = libc::timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: `ts` is a valid, initialized timespec on this frame and
        // `clock_gettime` writes only into it; the return code is checked.
        // sar-check: deterministic(metering: per-thread CPU clock feeds the
        // pool's timing stats only, never tensor data)
        let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if rc == 0 {
            return (ts.tv_sec as u64) * 1_000_000_000 + ts.tv_nsec as u64;
        }
    }
    use std::time::{SystemTime, UNIX_EPOCH};
    // sar-check: deterministic(metering: wall-clock fallback for the same
    // timing stats when the thread CPU clock is unavailable)
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Persistent helper threads fed through one shared queue.
struct Pool {
    sender: Option<Sender<Job>>,
    helpers: Vec<JoinHandle<()>>,
}

impl Pool {
    fn new(helpers: usize) -> Pool {
        // sar-check: allow(no-unbounded-channel) — the job queue holds at
        // most one dispatch per helper (submit is called once per helper
        // per parallel_for), so it is bounded by construction.
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let helpers = (0..helpers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("sar-pool-{i}"))
                    .spawn(move || helper_main(&rx))
                    .expect("spawning pool helper thread")
            })
            .collect();
        Pool {
            sender: Some(tx),
            helpers,
        }
    }

    fn submit(&self, job: Job) {
        self.sender
            .as_ref()
            .expect("pool sender present until drop")
            .send(job)
            .expect("pool helper threads outlive the sender");
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.sender.take(); // closes the queue; helpers drain and exit
        for h in self.helpers.drain(..) {
            let _ = h.join();
        }
    }
}

fn helper_main(rx: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = {
            let rx = lock_ignore_poison(rx);
            rx.recv()
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // pool dropped
        }
    }
}

/// A `Send + Sync` view of a mutable buffer whose **disjoint** ranges are
/// written concurrently by `parallel_for` chunks.
///
/// Kernels create one on the dispatching thread over a pre-allocated
/// output buffer (a `Vec<f32>` or `Tensor::data_mut`), then each chunk
/// takes its own rows via [`SharedSlice::range_mut`]. Safety rests on the
/// destination-row ownership invariant: chunks cover disjoint index
/// ranges, so no element is aliased.
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _life: PhantomData<&'a mut [T]>,
}

// SAFETY: SharedSlice is a raw view of a `&mut [T]` whose concurrent
// writers take disjoint ranges (the `range_mut` contract), so sending the
// view or sharing it across parallel_for chunks never aliases an element;
// T: Send bounds keep non-sendable element types out.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
// SAFETY: as above — &SharedSlice only exposes `range_mut`, whose
// disjointness contract is what makes cross-thread sharing sound.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps `data` for disjoint concurrent writes.
    pub fn new(data: &'a mut [T]) -> SharedSlice<'a, T> {
        SharedSlice {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            _life: PhantomData,
        }
    }

    /// Length of the underlying buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mutable sub-slice `lo..hi`.
    ///
    /// # Safety
    ///
    /// Concurrent callers must request disjoint ranges; the borrow is
    /// unchecked aliasing-wise (bounds are asserted).
    #[allow(clippy::mut_from_ref)] // disjointness is the caller's contract
    pub unsafe fn range_mut(&self, lo: usize, hi: usize) -> &mut [T] {
        assert!(
            lo <= hi && hi <= self.len,
            "range {lo}..{hi} of {}",
            self.len
        );
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_when_single_threaded() {
        set_threads(1);
        let mut out = vec![0u32; 16];
        let shared = SharedSlice::new(&mut out);
        parallel_for(16, 1, |lo, hi| {
            let rows = unsafe { shared.range_mut(lo, hi) };
            for (k, r) in rows.iter_mut().enumerate() {
                *r = (lo + k) as u32;
            }
        });
        assert_eq!(out, (0..16).collect::<Vec<u32>>());
    }

    #[test]
    fn pool_covers_every_index_exactly_once() {
        set_threads(4);
        let n = 10_007;
        let mut out = vec![0u32; n];
        let shared = SharedSlice::new(&mut out);
        parallel_for(n, 1, |lo, hi| {
            let rows = unsafe { shared.range_mut(lo, hi) };
            for (k, r) in rows.iter_mut().enumerate() {
                *r += (lo + k) as u32 + 1;
            }
        });
        set_threads(1);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1, "index {i} written wrongly");
        }
    }

    #[test]
    fn grain_forces_inline_for_small_inputs() {
        set_threads(4);
        let hits = AtomicUsize::new(0);
        parallel_for(8, 64, |lo, hi| {
            assert_eq!((lo, hi), (0, 8));
            hits.fetch_add(1, Ordering::Relaxed);
        });
        set_threads(1);
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn nested_calls_run_inline() {
        set_threads(2);
        let n = 256;
        let mut out = vec![0.0f32; n];
        let shared = SharedSlice::new(&mut out);
        parallel_for(n, 1, |lo, hi| {
            // A nested dispatch from inside a chunk must not deadlock and
            // must still cover its range.
            parallel_for(hi - lo, 1, |a, b| {
                let rows = unsafe { shared.range_mut(lo + a, lo + b) };
                for r in rows {
                    *r += 1.0;
                }
            });
        });
        set_threads(1);
        assert!(out.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn helper_cpu_is_accumulated_and_drained() {
        set_threads(4);
        let _ = take_helper_cpu_us();
        let sink = AtomicU64::new(0);
        parallel_for(4096, 1, |lo, hi| {
            let mut acc = 0u64;
            for i in lo as u64..hi as u64 {
                for j in 0..2000 {
                    acc = acc.wrapping_add(i * j);
                }
            }
            sink.fetch_add(acc, Ordering::Relaxed);
        });
        let us = take_helper_cpu_us();
        assert!(us > 0.0, "helpers should have burned CPU: {us}");
        assert_eq!(take_helper_cpu_us(), 0.0, "drain must reset");
        set_threads(1);
    }

    #[test]
    fn chunk_panic_propagates_to_the_caller() {
        set_threads(4);
        let result = std::panic::catch_unwind(|| {
            parallel_for(1024, 1, |lo, _hi| {
                if lo > 0 {
                    panic!("boom in chunk {lo}");
                }
            });
        });
        set_threads(1);
        assert!(result.is_err(), "the chunk panic must surface");
    }

    #[test]
    fn set_threads_is_idempotent_and_resizable() {
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(3);
        set_threads(2);
        assert_eq!(threads(), 2);
        let total = AtomicUsize::new(0);
        parallel_for(100, 1, |lo, hi| {
            total.fetch_add(hi - lo, Ordering::Relaxed);
        });
        set_threads(1);
        assert_eq!(total.load(Ordering::Relaxed), 100);
        assert_eq!(threads(), 1);
    }
}
