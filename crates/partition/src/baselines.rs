//! Baseline partitioners: random, contiguous ranges, and BFS region
//! growing. Used in the partitioner-quality ablation and as fallbacks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sar_graph::CsrGraph;

use crate::Partitioning;

/// Assigns each node to a part uniformly at random, then rebalances by
/// moving nodes out of overfull parts so sizes differ by at most one.
///
/// # Panics
///
/// Panics if `k == 0` or `k > graph.num_nodes()`.
pub fn random(graph: &CsrGraph, k: usize, seed: u64) -> Partitioning {
    let n = graph.num_nodes();
    assert!(k > 0 && k <= n, "k must be in 1..=num_nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    // A random permutation chopped into equal chunks gives an exactly
    // balanced uniform assignment.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }
    let mut assignment = vec![0u32; n];
    for (pos, &node) in perm.iter().enumerate() {
        assignment[node as usize] = (pos % k) as u32;
    }
    Partitioning::new(k, assignment)
}

/// Assigns contiguous index ranges of (near-)equal size.
///
/// # Panics
///
/// Panics if `k == 0` or `k > graph.num_nodes()`.
pub fn range(graph: &CsrGraph, k: usize) -> Partitioning {
    let n = graph.num_nodes();
    assert!(k > 0 && k <= n, "k must be in 1..=num_nodes");
    let assignment = (0..n).map(|i| ((i * k) / n) as u32).collect();
    Partitioning::new(k, assignment)
}

/// Grows `k` balanced regions by breadth-first search from random seeds.
///
/// Each region stops accepting nodes once it reaches `⌈n/k⌉`; leftover
/// nodes (unreachable or displaced) are appended to the smallest parts.
///
/// # Panics
///
/// Panics if `k == 0` or `k > graph.num_nodes()`.
pub fn bfs(graph: &CsrGraph, k: usize, seed: u64) -> Partitioning {
    let n = graph.num_nodes();
    assert!(k > 0 && k <= n, "k must be in 1..=num_nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let cap = n.div_ceil(k);
    let mut assignment = vec![u32::MAX; n];
    let mut sizes = vec![0usize; k];
    let mut queue = std::collections::VecDeque::new();

    for part in 0..k as u32 {
        // Pick an unassigned seed.
        let mut tries = 0;
        let seed_node = loop {
            let cand = rng.random_range(0..n);
            if assignment[cand] == u32::MAX {
                break cand;
            }
            tries += 1;
            if tries > 4 * n {
                match assignment.iter().position(|&a| a == u32::MAX) {
                    Some(i) => break i,
                    None => break 0,
                }
            }
        };
        if assignment[seed_node] != u32::MAX {
            continue;
        }
        queue.clear();
        queue.push_back(seed_node);
        assignment[seed_node] = part;
        sizes[part as usize] += 1;
        while let Some(u) = queue.pop_front() {
            if sizes[part as usize] >= cap {
                break;
            }
            for &v in graph.neighbors(u) {
                let v = v as usize;
                if assignment[v] == u32::MAX && sizes[part as usize] < cap {
                    assignment[v] = part;
                    sizes[part as usize] += 1;
                    queue.push_back(v);
                }
            }
        }
    }

    // Any stragglers go to the currently smallest part.
    for a in assignment.iter_mut() {
        if *a == u32::MAX {
            let smallest = (0..k).min_by_key(|&p| sizes[p]).unwrap();
            *a = smallest as u32;
            sizes[smallest] += 1;
        }
    }
    Partitioning::new(k, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sar_graph::generators::erdos_renyi;

    fn g() -> CsrGraph {
        erdos_renyi(100, 600, &mut StdRng::seed_from_u64(0)).symmetrize()
    }

    #[test]
    fn random_is_exactly_balanced() {
        let p = random(&g(), 4, 0);
        let sizes = p.part_sizes();
        assert!(sizes.iter().all(|&s| s == 25), "{sizes:?}");
    }

    #[test]
    fn range_is_contiguous() {
        let p = range(&g(), 4);
        for i in 1..100 {
            assert!(p.part_of(i) >= p.part_of(i - 1));
        }
        assert_eq!(p.part_sizes(), vec![25, 25, 25, 25]);
    }

    #[test]
    fn bfs_assigns_everything_within_cap() {
        let p = bfs(&g(), 3, 1);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 100);
        assert!(p.balance() <= 1.35, "balance {}", p.balance());
    }

    #[test]
    fn bfs_handles_disconnected_graphs() {
        // No edges at all: BFS can never grow, stragglers must be placed.
        let g = CsrGraph::from_edges(50, &[]);
        let p = bfs(&g, 5, 2);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 50);
        assert!(p.balance() < 1.5);
    }

    #[test]
    fn bfs_regions_are_locally_coherent() {
        // On a path graph, BFS regions should produce a much smaller cut
        // than random assignment.
        let edges: Vec<(u32, u32)> = (0..99).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(100, &edges).symmetrize();
        let p = bfs(&g, 4, 3);
        let r = random(&g, 4, 3);
        assert!(p.edge_cut(&g) < r.edge_cut(&g));
    }
}
