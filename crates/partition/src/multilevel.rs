//! METIS-style multilevel k-way partitioning.
//!
//! Three phases, mirroring Karypis & Kumar (1997):
//!
//! 1. **Coarsening** — repeated heavy-edge matching (HEM): each node pairs
//!    with the unmatched neighbor sharing its heaviest edge; matched pairs
//!    collapse into super-nodes whose edge weights accumulate.
//! 2. **Initial partitioning** — greedy-growing recursive bisection of the
//!    coarsest graph, splitting node weight proportionally to the part
//!    counts on each side.
//! 3. **Uncoarsening + refinement** — the assignment is projected back one
//!    level at a time; at every level a few passes of boundary moves
//!    (Fiduccia–Mattheyses-style positive-gain moves under a balance
//!    constraint) polish the cut.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sar_graph::CsrGraph;

use crate::Partitioning;

/// Weighted graph used internally during coarsening.
struct WGraph {
    indptr: Vec<usize>,
    indices: Vec<u32>,
    eweights: Vec<f32>,
    nweights: Vec<f32>,
}

impl WGraph {
    fn n(&self) -> usize {
        self.nweights.len()
    }

    fn neighbors(&self, u: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let (s, e) = (self.indptr[u], self.indptr[u + 1]);
        self.indices[s..e]
            .iter()
            .copied()
            .zip(self.eweights[s..e].iter().copied())
    }

    /// Builds a weighted graph from a CSR graph: parallel edges merge into
    /// weights, self-loops are dropped (they never affect a cut).
    fn from_csr(g: &CsrGraph) -> WGraph {
        let n = g.num_nodes();
        let mut pairs: Vec<(u32, u32)> = g
            .iter_edges()
            .filter(|&(s, d)| s != d)
            .map(|(s, d)| (d, s)) // group by destination row
            .collect();
        pairs.sort_unstable();
        let mut indptr = vec![0usize; n + 1];
        let mut indices = Vec::with_capacity(pairs.len());
        let mut eweights = Vec::with_capacity(pairs.len());
        let mut k = 0;
        while k < pairs.len() {
            let (row, col) = pairs[k];
            let mut w = 0.0f32;
            while k < pairs.len() && pairs[k] == (row, col) {
                w += 1.0;
                k += 1;
            }
            indices.push(col);
            eweights.push(w);
            indptr[row as usize + 1] += 1;
        }
        for i in 0..n {
            indptr[i + 1] += indptr[i];
        }
        WGraph {
            indptr,
            indices,
            eweights,
            nweights: vec![1.0; n],
        }
    }

    /// One round of heavy-edge matching. Returns the fine→coarse map and
    /// the coarse node count.
    fn heavy_edge_matching(&self, rng: &mut StdRng) -> (Vec<u32>, usize) {
        let n = self.n();
        let mut order: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut mate = vec![u32::MAX; n];
        for &u in &order {
            let u = u as usize;
            if mate[u] != u32::MAX {
                continue;
            }
            let mut best: Option<(u32, f32)> = None;
            for (v, w) in self.neighbors(u) {
                if mate[v as usize] == u32::MAX && v as usize != u {
                    match best {
                        Some((_, bw)) if bw >= w => {}
                        _ => best = Some((v, w)),
                    }
                }
            }
            match best {
                Some((v, _)) => {
                    mate[u] = v;
                    mate[v as usize] = u as u32;
                }
                None => mate[u] = u as u32,
            }
        }
        // Number coarse nodes.
        let mut cmap = vec![u32::MAX; n];
        let mut next = 0u32;
        for u in 0..n {
            if cmap[u] == u32::MAX {
                cmap[u] = next;
                let m = mate[u] as usize;
                if m != u {
                    cmap[m] = next;
                }
                next += 1;
            }
        }
        (cmap, next as usize)
    }

    /// Collapses matched pairs into a coarser weighted graph.
    fn coarsen(&self, cmap: &[u32], nc: usize) -> WGraph {
        let mut nweights = vec![0.0f32; nc];
        for u in 0..self.n() {
            nweights[cmap[u] as usize] += self.nweights[u];
        }
        let mut pairs: Vec<(u32, u32, f32)> = Vec::with_capacity(self.indices.len());
        for u in 0..self.n() {
            let cu = cmap[u];
            for (v, w) in self.neighbors(u) {
                let cv = cmap[v as usize];
                if cu != cv {
                    pairs.push((cu, cv, w));
                }
            }
        }
        pairs.sort_unstable_by_key(|&(a, b, _)| (a, b));
        let mut indptr = vec![0usize; nc + 1];
        let mut indices = Vec::new();
        let mut eweights = Vec::new();
        let mut k = 0;
        while k < pairs.len() {
            let (row, col, _) = pairs[k];
            let mut w = 0.0f32;
            while k < pairs.len() && pairs[k].0 == row && pairs[k].1 == col {
                w += pairs[k].2;
                k += 1;
            }
            indices.push(col);
            eweights.push(w);
            indptr[row as usize + 1] += 1;
        }
        for i in 0..nc {
            indptr[i + 1] += indptr[i];
        }
        WGraph {
            indptr,
            indices,
            eweights,
            nweights,
        }
    }

    /// Greedy-growing recursive bisection into parts `[part_lo, part_hi)`.
    fn recursive_bisect(
        &self,
        nodes: &[u32],
        part_lo: usize,
        part_hi: usize,
        assignment: &mut [u32],
        rng: &mut StdRng,
    ) {
        if part_hi - part_lo == 1 {
            for &u in nodes {
                assignment[u as usize] = part_lo as u32;
            }
            return;
        }
        let k_left = (part_hi - part_lo) / 2;
        let k_right = (part_hi - part_lo) - k_left;
        let total: f32 = nodes.iter().map(|&u| self.nweights[u as usize]).sum();
        let target_left = total * k_left as f32 / (k_left + k_right) as f32;

        // Grow the left side by BFS from a random seed, preferring nodes
        // with strong connections into the growing region.
        let in_set: std::collections::HashSet<u32> = nodes.iter().copied().collect();
        let mut side = vec![false; self.n()]; // true = left
        let mut visited = vec![false; self.n()];
        let mut weight_left = 0.0f32;
        let mut frontier = std::collections::VecDeque::new();
        let seed = nodes[rng.random_range(0..nodes.len())];
        frontier.push_back(seed);
        visited[seed as usize] = true;
        while weight_left < target_left {
            let u = match frontier.pop_front() {
                Some(u) => u,
                None => {
                    // Disconnected: restart from any unvisited node.
                    match nodes.iter().copied().find(|&u| !visited[u as usize]) {
                        Some(u) => {
                            visited[u as usize] = true;
                            u
                        }
                        None => break,
                    }
                }
            };
            side[u as usize] = true;
            weight_left += self.nweights[u as usize];
            for (v, _) in self.neighbors(u as usize) {
                if in_set.contains(&v) && !visited[v as usize] {
                    visited[v as usize] = true;
                    frontier.push_back(v);
                }
            }
        }
        let left: Vec<u32> = nodes
            .iter()
            .copied()
            .filter(|&u| side[u as usize])
            .collect();
        let right: Vec<u32> = nodes
            .iter()
            .copied()
            .filter(|&u| !side[u as usize])
            .collect();
        // Degenerate splits can happen on tiny coarse graphs; fall back to
        // an even split by index.
        let (left, right) = if left.is_empty() || right.is_empty() {
            let mid = nodes.len() / 2;
            (nodes[..mid].to_vec(), nodes[mid..].to_vec())
        } else {
            (left, right)
        };
        self.recursive_bisect(&left, part_lo, part_lo + k_left, assignment, rng);
        self.recursive_bisect(&right, part_lo + k_left, part_hi, assignment, rng);
    }

    /// Boundary refinement: positive-gain moves under a balance constraint.
    fn refine(&self, assignment: &mut [u32], k: usize, passes: usize, rng: &mut StdRng) {
        let total: f32 = self.nweights.iter().sum();
        let max_w = (total / k as f32) * 1.05 + self.nweights.iter().cloned().fold(0.0, f32::max);
        let mut part_w = vec![0.0f32; k];
        for u in 0..self.n() {
            part_w[assignment[u] as usize] += self.nweights[u];
        }
        let mut order: Vec<u32> = (0..self.n() as u32).collect();
        for _ in 0..passes {
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            let mut moved = 0usize;
            let mut conn = vec![0.0f32; k];
            for &u in &order {
                let u = u as usize;
                let a = assignment[u] as usize;
                let mut touched: Vec<usize> = Vec::new();
                for (v, w) in self.neighbors(u) {
                    let p = assignment[v as usize] as usize;
                    if conn[p] == 0.0 {
                        touched.push(p);
                    }
                    conn[p] += w;
                }
                let mut best = a;
                let mut best_gain = 0.0f32;
                for &p in &touched {
                    if p == a {
                        continue;
                    }
                    let gain = conn[p] - conn[a];
                    if gain > best_gain && part_w[p] + self.nweights[u] <= max_w {
                        best = p;
                        best_gain = gain;
                    }
                }
                if best != a {
                    part_w[a] -= self.nweights[u];
                    part_w[best] += self.nweights[u];
                    assignment[u] = best as u32;
                    moved += 1;
                }
                for &p in &touched {
                    conn[p] = 0.0;
                }
            }
            if moved == 0 {
                break;
            }
        }
    }
}

/// Partitions `graph` into `k` parts using multilevel heavy-edge-matching
/// coarsening, greedy-growing recursive bisection and boundary refinement.
///
/// Deterministic for a given `(graph, k, seed)`.
///
/// # Panics
///
/// Panics if `k == 0` or `k > graph.num_nodes()`.
pub fn multilevel(graph: &CsrGraph, k: usize, seed: u64) -> Partitioning {
    let n = graph.num_nodes();
    assert!(k > 0 && k <= n, "k must be in 1..=num_nodes");
    if k == 1 {
        return Partitioning::new(1, vec![0; n]);
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // Phase 1: coarsen.
    let mut levels: Vec<WGraph> = vec![WGraph::from_csr(graph)];
    let mut maps: Vec<Vec<u32>> = Vec::new();
    let stop_at = (8 * k).max(256);
    while levels.last().unwrap().n() > stop_at {
        let g = levels.last().unwrap();
        let (cmap, nc) = g.heavy_edge_matching(&mut rng);
        if nc as f32 > 0.95 * g.n() as f32 {
            break; // matching stagnated (e.g. star graphs)
        }
        let coarse = g.coarsen(&cmap, nc);
        maps.push(cmap);
        levels.push(coarse);
    }

    // Phase 2: initial partition of the coarsest level.
    let coarsest = levels.last().unwrap();
    let mut assignment = vec![0u32; coarsest.n()];
    let nodes: Vec<u32> = (0..coarsest.n() as u32).collect();
    coarsest.recursive_bisect(&nodes, 0, k, &mut assignment, &mut rng);
    coarsest.refine(&mut assignment, k, 6, &mut rng);

    // Phase 3: uncoarsen + refine.
    for level in (0..maps.len()).rev() {
        let fine = &levels[level];
        let cmap = &maps[level];
        let mut fine_assignment = vec![0u32; fine.n()];
        for u in 0..fine.n() {
            fine_assignment[u] = assignment[cmap[u] as usize];
        }
        fine.refine(&mut fine_assignment, k, 4, &mut rng);
        assignment = fine_assignment;
    }

    Partitioning::new(k, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sar_graph::generators::weighted_sbm;

    #[test]
    fn recovers_planted_communities() {
        // With near-perfect homophily and k == number of blocks, the
        // partitioner should achieve a cut far below the random baseline
        // and close to the planted cut.
        let (g, labels) = weighted_sbm(800, 8000, 4, 0.98, 0.3, &mut StdRng::seed_from_u64(0));
        let g = g.symmetrize();
        let p = multilevel(&g, 4, 1);
        let planted = Partitioning::new(4, labels);
        let planted_cut = planted.edge_cut(&g);
        let found_cut = p.edge_cut(&g);
        assert!(
            found_cut < planted_cut * 3,
            "found cut {found_cut}, planted cut {planted_cut}"
        );
    }

    #[test]
    fn balance_within_tolerance() {
        let (g, _) = weighted_sbm(1000, 12000, 7, 0.7, 0.5, &mut StdRng::seed_from_u64(1));
        let g = g.symmetrize();
        for k in [2, 3, 8, 16] {
            let p = multilevel(&g, k, 2);
            assert!(p.balance() < 1.35, "k={k} imbalance {}", p.balance());
        }
    }

    #[test]
    fn handles_path_graph() {
        let edges: Vec<(u32, u32)> = (0..199).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(200, &edges).symmetrize();
        let p = multilevel(&g, 4, 3);
        // A path has an optimal 4-way cut of 3 edges (6 directed).
        assert!(p.edge_cut(&g) <= 24, "cut {}", p.edge_cut(&g));
        assert!(p.balance() < 1.3);
    }

    #[test]
    fn handles_star_graph() {
        // Star graphs defeat matching (everything touches the hub);
        // the partitioner must still terminate and balance.
        let edges: Vec<(u32, u32)> = (1..500).map(|i| (0, i)).collect();
        let g = CsrGraph::from_edges(500, &edges).symmetrize();
        let p = multilevel(&g, 4, 4);
        assert_eq!(p.assignment().len(), 500);
        assert!(p.balance() < 1.5, "balance {}", p.balance());
    }

    #[test]
    fn k_equals_two_bisects() {
        let (g, _) = weighted_sbm(400, 4000, 2, 0.95, 0.4, &mut StdRng::seed_from_u64(5));
        let g = g.symmetrize();
        let p = multilevel(&g, 2, 6);
        assert!(
            p.cut_fraction(&g) < 0.25,
            "cut fraction {}",
            p.cut_fraction(&g)
        );
    }
}
