#![warn(missing_docs)]

//! Graph partitioning — the METIS substitute for the SAR reproduction.
//!
//! The paper partitions ogbn-products / ogbn-papers100M with METIS, relying
//! on two properties: roughly equal partition sizes (load and memory
//! balance) and a small edge cut (communication volume). This crate
//! provides:
//!
//! * [`multilevel`] — a METIS-style multilevel partitioner: heavy-edge
//!   matching coarsening, greedy-growing recursive bisection, and
//!   boundary refinement on every uncoarsening level.
//! * [`random`], [`range`], [`bfs`] — baselines used by the partitioner
//!   ablation (`repro ablation-partition`).
//! * [`Partitioning`] — the assignment plus quality statistics
//!   ([`Partitioning::edge_cut`], [`Partitioning::balance`]).
//!
//! # Example
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use sar_graph::generators::weighted_sbm;
//! use sar_partition::{multilevel, random};
//!
//! let (g, _) = weighted_sbm(200, 2000, 4, 0.9, 0.4, &mut StdRng::seed_from_u64(0));
//! let g = g.symmetrize();
//! let ml = multilevel(&g, 4, 7);
//! let rnd = random(&g, 4, 7);
//! assert!(ml.edge_cut(&g) <= rnd.edge_cut(&g));
//! ```

mod baselines;
mod multilevel;

pub use baselines::{bfs, random, range};
pub use multilevel::multilevel;

use sar_graph::CsrGraph;

/// Which partitioner to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// METIS-like multilevel partitioning (the paper's choice).
    Multilevel,
    /// Uniform random assignment.
    Random,
    /// Contiguous index ranges.
    Range,
    /// BFS region growing.
    Bfs,
}

/// Partitions `graph` into `k` parts with the chosen [`Method`].
///
/// # Panics
///
/// Panics if `k == 0` or `k` exceeds the node count.
pub fn partition(graph: &CsrGraph, k: usize, method: Method, seed: u64) -> Partitioning {
    match method {
        Method::Multilevel => multilevel(graph, k, seed),
        Method::Random => random(graph, k, seed),
        Method::Range => range(graph, k),
        Method::Bfs => bfs(graph, k, seed),
    }
}

/// A k-way node assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    num_parts: usize,
    assignment: Vec<u32>,
}

impl Partitioning {
    /// Wraps an explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if `num_parts == 0` or any entry is `>= num_parts`.
    pub fn new(num_parts: usize, assignment: Vec<u32>) -> Self {
        assert!(num_parts > 0, "need at least one part");
        assert!(
            assignment.iter().all(|&p| (p as usize) < num_parts),
            "assignment entry out of range"
        );
        Self {
            num_parts,
            assignment,
        }
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Part of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn part_of(&self, i: usize) -> usize {
        self.assignment[i] as usize
    }

    /// The raw assignment array.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Node count per part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Nodes of each part, in ascending node order.
    pub fn part_members(&self) -> Vec<Vec<u32>> {
        let mut members = vec![Vec::new(); self.num_parts];
        for (i, &p) in self.assignment.iter().enumerate() {
            members[p as usize].push(i as u32);
        }
        members
    }

    /// Number of edges whose endpoints lie in different parts.
    pub fn edge_cut(&self, graph: &CsrGraph) -> usize {
        graph
            .iter_edges()
            .filter(|&(s, d)| self.assignment[s as usize] != self.assignment[d as usize])
            .count()
    }

    /// Fraction of edges crossing parts.
    pub fn cut_fraction(&self, graph: &CsrGraph) -> f64 {
        if graph.num_edges() == 0 {
            return 0.0;
        }
        self.edge_cut(graph) as f64 / graph.num_edges() as f64
    }

    /// Load imbalance: `max part size / ideal part size` (1.0 = perfect).
    pub fn balance(&self) -> f64 {
        let sizes = self.part_sizes();
        let max = *sizes.iter().max().unwrap() as f64;
        let ideal = self.assignment.len() as f64 / self.num_parts as f64;
        if ideal == 0.0 {
            1.0
        } else {
            max / ideal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sar_graph::generators::{erdos_renyi, weighted_sbm};

    fn test_graph(seed: u64) -> CsrGraph {
        erdos_renyi(300, 2400, &mut StdRng::seed_from_u64(seed)).symmetrize()
    }

    #[test]
    fn all_methods_cover_all_nodes() {
        let g = test_graph(0);
        for method in [
            Method::Multilevel,
            Method::Random,
            Method::Range,
            Method::Bfs,
        ] {
            let p = partition(&g, 4, method, 0);
            assert_eq!(p.assignment().len(), g.num_nodes(), "{method:?}");
            assert_eq!(p.part_sizes().iter().sum::<usize>(), g.num_nodes());
        }
    }

    #[test]
    fn all_methods_are_reasonably_balanced() {
        let g = test_graph(1);
        for method in [
            Method::Multilevel,
            Method::Random,
            Method::Range,
            Method::Bfs,
        ] {
            let p = partition(&g, 8, method, 1);
            assert!(p.balance() < 1.5, "{method:?} imbalance {}", p.balance());
        }
    }

    #[test]
    fn multilevel_beats_random_on_community_graphs() {
        let (g, _) = weighted_sbm(600, 6000, 8, 0.95, 0.4, &mut StdRng::seed_from_u64(2));
        let g = g.symmetrize();
        let ml = multilevel(&g, 8, 3);
        let rnd = random(&g, 8, 3);
        assert!(
            ml.edge_cut(&g) < rnd.edge_cut(&g) / 2,
            "multilevel cut {} vs random cut {}",
            ml.edge_cut(&g),
            rnd.edge_cut(&g)
        );
    }

    #[test]
    fn partitioning_stats() {
        let p = Partitioning::new(2, vec![0, 0, 1, 1]);
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(p.edge_cut(&g), 1);
        assert_eq!(p.part_sizes(), vec![2, 2]);
        assert!((p.balance() - 1.0).abs() < 1e-9);
        assert_eq!(p.part_members()[1], vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid_assignment() {
        let _ = Partitioning::new(2, vec![0, 5]);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = test_graph(4);
        let a = multilevel(&g, 4, 42);
        let b = multilevel(&g, 4, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn single_part_has_no_cut() {
        let g = test_graph(5);
        let p = partition(&g, 1, Method::Multilevel, 0);
        assert_eq!(p.edge_cut(&g), 0);
        assert_eq!(p.num_parts(), 1);
    }
}
