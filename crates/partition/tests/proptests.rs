//! Property-based tests of the partitioners' invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sar_graph::generators::{erdos_renyi, weighted_sbm};
use sar_partition::{partition, Method};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_method_covers_every_node(seed in 0u64..300, n in 10usize..120, k in 1usize..8) {
        let k = k.min(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, n * 4, &mut rng).symmetrize();
        for method in [Method::Multilevel, Method::Random, Method::Range, Method::Bfs] {
            let p = partition(&g, k, method, seed);
            prop_assert_eq!(p.assignment().len(), n);
            prop_assert_eq!(p.part_sizes().iter().sum::<usize>(), n);
            prop_assert_eq!(p.num_parts(), k);
            // Every edge is either cut or not; cut fraction in [0, 1].
            let cf = p.cut_fraction(&g);
            prop_assert!((0.0..=1.0).contains(&cf));
        }
    }

    #[test]
    fn multilevel_balance_bounded(seed in 0u64..200, n in 40usize..200, k in 2usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, _) = weighted_sbm(n, n * 6, 4, 0.8, 0.3, &mut rng);
        let g = g.symmetrize();
        let p = partition(&g, k, Method::Multilevel, seed);
        prop_assert!(p.balance() < 1.8, "imbalance {} for n={n}, k={k}", p.balance());
    }

    #[test]
    fn multilevel_is_deterministic(seed in 0u64..200, n in 20usize..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, n * 5, &mut rng).symmetrize();
        let a = partition(&g, 4.min(n), Method::Multilevel, seed);
        let b = partition(&g, 4.min(n), Method::Multilevel, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn k_equals_one_never_cuts(seed in 0u64..200, n in 2usize..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, n * 3, &mut rng);
        for method in [Method::Multilevel, Method::Random, Method::Range, Method::Bfs] {
            let p = partition(&g, 1, method, seed);
            prop_assert_eq!(p.edge_cut(&g), 0);
        }
    }

    #[test]
    fn part_members_are_consistent_with_assignment(seed in 0u64..200, n in 5usize..60, k in 1usize..6) {
        let k = k.min(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, n * 2, &mut rng);
        let p = partition(&g, k, Method::Random, seed);
        let members = p.part_members();
        for (part, nodes) in members.iter().enumerate() {
            for &node in nodes {
                prop_assert_eq!(p.part_of(node as usize), part);
            }
            // Members are sorted ascending.
            prop_assert!(nodes.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
