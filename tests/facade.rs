//! Workspace-level integration tests exercising the public facade (`sar`)
//! end-to-end, the way a downstream user would.

use sar::comm::{Cluster, CostModel};
use sar::core::{train, Arch, Mode, ModelConfig, TrainConfig};
use sar::graph::datasets;
use sar::nn::LrSchedule;
use sar::partition::{multilevel, partition, Method};

fn tiny_cfg(arch: Arch, mode: Mode, num_classes: usize) -> TrainConfig {
    TrainConfig {
        model: ModelConfig {
            arch,
            mode,
            layers: 2,
            in_dim: 0,
            num_classes,
            dropout: 0.0,
            batch_norm: true,
            jumping_knowledge: false,
            seed: 0,
        },
        epochs: 5,
        lr: 0.01,
        schedule: LrSchedule::Constant,
        label_aug: false,
        aug_frac: 0.0,
        cs: None,
        prefetch_depth: 0,
        seed: 0,
        threads: 1,
        protocol: Default::default(),
        codec: Default::default(),
        mem_budget: 0,
    }
}

#[test]
fn facade_pipeline_end_to_end() {
    let d = datasets::products_like(300, 0);
    let p = multilevel(&d.graph, 3, 0);
    let cfg = tiny_cfg(Arch::GraphSage { hidden: 16 }, Mode::Sar, d.num_classes);
    let run = train(&d, &p, CostModel::default(), &cfg);
    assert_eq!(run.world, 3);
    assert_eq!(run.losses.len(), 5);
    assert!(run.losses.iter().all(|l| l.is_finite()));
    assert_eq!(run.logits.shape(), &[300, d.num_classes]);
}

#[test]
fn memory_scales_down_with_workers() {
    // The paper's 2/N law: per-worker peak memory must shrink
    // substantially as workers are added.
    let d = datasets::products_like(1200, 1);
    let cfg = tiny_cfg(Arch::GraphSage { hidden: 64 }, Mode::Sar, d.num_classes);
    let mut cfg = cfg;
    cfg.epochs = 2;
    let peak = |world: usize| {
        let p = multilevel(&d.graph, world, 1);
        train(&d, &p, CostModel::default(), &cfg).max_peak_bytes()
    };
    let p2 = peak(2);
    let p8 = peak(8);
    assert!(
        (p8 as f64) < 0.55 * p2 as f64,
        "peak at 8 workers ({p8}) should be well under half of 2 workers ({p2})"
    );
}

#[test]
fn all_partitioners_compose_with_training() {
    let d = datasets::products_like(250, 2);
    for method in [
        Method::Multilevel,
        Method::Random,
        Method::Range,
        Method::Bfs,
    ] {
        let p = partition(&d.graph, 2, method, 0);
        let cfg = tiny_cfg(Arch::GraphSage { hidden: 8 }, Mode::Sar, d.num_classes);
        let run = train(&d, &p, CostModel::default(), &cfg);
        assert!(
            run.losses.iter().all(|l| l.is_finite()),
            "{method:?} produced a non-finite loss"
        );
    }
}

#[test]
fn gat_modes_agree_through_facade() {
    let d = datasets::products_like(250, 3);
    let p = multilevel(&d.graph, 2, 3);
    let arch = Arch::Gat {
        head_dim: 4,
        heads: 2,
    };
    let dp = train(
        &d,
        &p,
        CostModel::default(),
        &tiny_cfg(arch, Mode::DomainParallel, d.num_classes),
    );
    let fak = train(
        &d,
        &p,
        CostModel::default(),
        &tiny_cfg(arch, Mode::SarFused, d.num_classes),
    );
    assert!(
        dp.logits.allclose(&fak.logits, 5e-2),
        "execution mode changed the trained model"
    );
}

#[test]
fn cluster_collectives_compose_with_tensor_ops() {
    use sar::tensor::Tensor;
    let out = Cluster::new(4, CostModel::default()).run(|ctx| {
        let local = Tensor::full(&[3], (ctx.rank() + 1) as f32);
        let mut buf = local.into_data();
        ctx.all_reduce_sum(&mut buf);
        buf[0]
    });
    assert!(out.iter().all(|o| o.result == 10.0));
}

#[test]
fn communication_volume_reported() {
    let d = datasets::products_like(400, 4);
    let p = multilevel(&d.graph, 4, 4);
    let mut cfg = tiny_cfg(Arch::GraphSage { hidden: 16 }, Mode::Sar, d.num_classes);
    cfg.epochs = 2;
    let run = train(&d, &p, CostModel::default(), &cfg);
    assert!(run.total_sent_bytes > 0, "distributed run must communicate");
    assert!(run.epoch_times.iter().all(|&t| t > 0.0));
    assert_eq!(run.epoch_times.len(), run.epoch_compute.len());
}
