#![warn(missing_docs)]

//! # SAR — Sequential Aggregation and Rematerialization
//!
//! A pure-Rust reproduction of *"Sequential Aggregation and
//! Rematerialization: Distributed Full-batch Training of Graph Neural
//! Networks on Large Graphs"* (Hesham Mostafa, MLSys 2022).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`tensor`] — dense tensors, reverse-mode autograd, per-thread memory
//!   tracking (the PyTorch substitute).
//! * [`graph`] — CSR graphs, sparse message-passing kernels, synthetic
//!   OGB stand-in datasets (the DGL substitute).
//! * [`partition`] — METIS-like multilevel graph partitioner.
//! * [`comm`] — simulated cluster: worker threads, collectives, an α–β
//!   network cost model (the torch.distributed/OneCCL substitute).
//! * [`nn`] — GNN layers (GraphSage, GAT standard & fused-attention),
//!   optimizers, losses, Correct & Smooth.
//! * [`core`] — SAR itself: distributed graph shards, the
//!   sequential-aggregation forward pass (Algorithm 1), the
//!   rematerializing backward pass (Algorithm 2), the vanilla
//!   domain-parallel baseline, and the full-batch trainer.
//! * [`bench`] — the experiment harness reproducing the paper's tables
//!   and figures, plus machine-readable [`bench::report::RunReport`]
//!   JSON for CI.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use sar_bench as bench;
pub use sar_comm as comm;
pub use sar_core as core;
pub use sar_graph as graph;
pub use sar_nn as nn;
pub use sar_partition as partition;
pub use sar_tensor as tensor;
