//! `sar-train` — command-line distributed full-batch GNN training.
//!
//! ```text
//! sar-train [flags]
//!
//!   --transport sim|tcp           in-process simulated cluster, or one
//!                                 OS process per rank over TCP loopback
//!                                 (spawns the sar-worker binary)   (sim)
//!   --dataset products|papers     synthetic stand-in to generate  (products)
//!   --dataset-file PATH           or load a binary dataset (sar_graph::io)
//!   --nodes N                     stand-in size                   (4000)
//!   --workers N                   cluster size                    (4)
//!   --arch sage|gat|gcn           model architecture              (sage)
//!   --mode sar|sar-fak|dp         execution mode                  (sar-fak)
//!   --layers N                    GNN depth                       (3)
//!   --hidden N                    hidden size (per head for GAT)  (128)
//!   --heads N                     GAT attention heads             (4)
//!   --epochs N                    training epochs                 (50)
//!   --lr X                        base learning rate              (0.01)
//!   --dropout X                   dropout probability             (0.3)
//!   --jk                          jumping-knowledge skip connections
//!   --no-label-aug                disable masked label prediction
//!   --no-cs                       disable Correct & Smooth
//!   --prefetch-depth K            fetch pipeline depth: (K+2)/N memory,
//!                                 0 = sequential, 1 = paper's 3/N   (0)
//!   --partitioner ml|random|range|bfs                             (ml)
//!   --threads N                   intra-worker kernel threads     (1)
//!   --simd auto|scalar            SIMD dispatch mode              (auto)
//!   --codec raw|f16|bf16|int8|delta
//!                                 wire codec for remote activation/
//!                                 gradient payloads; negotiated at the
//!                                 TCP rendezvous                  (raw)
//!   --mem-budget BYTES            resident-tensor budget for the disk
//!                                 tier: blocks past the budget spill to
//!                                 an mmap-backed store and fault back
//!                                 on demand, bitwise identical results;
//!                                 0 disables spilling              (0)
//!   --protocol exact|gradonly|stale:<r>
//!                                 exchange protocol; approximate modes
//!                                 trade accuracy for wire volume, the
//!                                 final evaluation always runs exact
//!                                                                 (exact)
//!   --save-model PATH             checkpoint final parameters
//!   --report-json PATH            write the per-worker observability
//!                                 RunReport (phase/layer comm ledger,
//!                                 memory peaks, timings) as JSON
//!   --seed N                                                      (0)
//! ```
//!
//! Exits with status 1 if training diverged (non-finite loss) — after
//! writing the report, so CI can archive the evidence.
//!
//! Under `--transport tcp` the run is delegated to `sar-worker`
//! processes, which rebuild the synthetic dataset deterministically from
//! flags; `--dataset-file` and `--save-model` are therefore rejected
//! there (the multi-process path gathers ledgers and metrics to rank 0,
//! not trained parameters or logits).

use sar::bench::distrun::Workload;
use sar::bench::launcher;
use sar::bench::report::RunReport;
use sar::comm::CostModel;
use sar::core::{checkpoint, train, Arch, Mode, ModelConfig, TrainConfig};
use sar::graph::{datasets, io, Dataset};
use sar::nn::{ConfusionMatrix, CsConfig, LrSchedule};
use sar::partition::{partition, Method};

struct Args {
    transport: String,
    dataset: String,
    dataset_file: Option<String>,
    nodes: usize,
    workers: usize,
    arch: String,
    mode: String,
    layers: usize,
    hidden: usize,
    heads: usize,
    epochs: usize,
    lr: f32,
    dropout: f32,
    jk: bool,
    label_aug: bool,
    cs: bool,
    prefetch_depth: usize,
    partitioner: String,
    threads: usize,
    simd: String,
    codec: String,
    protocol: String,
    mem_budget: u64,
    save_model: Option<String>,
    report_json: Option<String>,
    seed: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            transport: "sim".into(),
            dataset: "products".into(),
            dataset_file: None,
            nodes: 4000,
            workers: 4,
            arch: "sage".into(),
            mode: "sar-fak".into(),
            layers: 3,
            hidden: 128,
            heads: 4,
            epochs: 50,
            lr: 0.01,
            dropout: 0.3,
            jk: false,
            label_aug: true,
            cs: true,
            prefetch_depth: 0,
            partitioner: "ml".into(),
            threads: 1,
            simd: "auto".into(),
            codec: "raw".into(),
            protocol: "exact".into(),
            mem_budget: 0,
            save_model: None,
            report_json: None,
            seed: 0,
        }
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("sar-train: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = || -> String {
            i += 1;
            argv.get(i)
                .cloned()
                .unwrap_or_else(|| fail(&format!("missing value for {flag}")))
        };
        match flag {
            "--transport" => args.transport = value(),
            "--dataset" => args.dataset = value(),
            "--dataset-file" => args.dataset_file = Some(value()),
            "--nodes" => args.nodes = value().parse().unwrap_or_else(|_| fail("--nodes")),
            "--workers" => args.workers = value().parse().unwrap_or_else(|_| fail("--workers")),
            "--arch" => args.arch = value(),
            "--mode" => args.mode = value(),
            "--layers" => args.layers = value().parse().unwrap_or_else(|_| fail("--layers")),
            "--hidden" => args.hidden = value().parse().unwrap_or_else(|_| fail("--hidden")),
            "--heads" => args.heads = value().parse().unwrap_or_else(|_| fail("--heads")),
            "--epochs" => args.epochs = value().parse().unwrap_or_else(|_| fail("--epochs")),
            "--lr" => args.lr = value().parse().unwrap_or_else(|_| fail("--lr")),
            "--dropout" => args.dropout = value().parse().unwrap_or_else(|_| fail("--dropout")),
            "--jk" => args.jk = true,
            "--no-label-aug" => args.label_aug = false,
            "--no-cs" => args.cs = false,
            "--prefetch-depth" => {
                args.prefetch_depth = value().parse().unwrap_or_else(|_| fail("--prefetch-depth"))
            }
            "--partitioner" => args.partitioner = value(),
            "--threads" => args.threads = value().parse().unwrap_or_else(|_| fail("--threads")),
            "--simd" => args.simd = value(),
            "--codec" => args.codec = value(),
            "--protocol" => args.protocol = value(),
            "--mem-budget" => {
                args.mem_budget = value().parse().unwrap_or_else(|_| fail("--mem-budget"))
            }
            "--save-model" => args.save_model = Some(value()),
            "--report-json" => args.report_json = Some(value()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| fail("--seed")),
            "--help" | "-h" => {
                eprintln!("see the doc comment at the top of src/bin/sar-train.rs");
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    args
}

fn load_dataset(args: &Args) -> Dataset {
    if let Some(path) = &args.dataset_file {
        return io::load_dataset(path)
            .unwrap_or_else(|e| fail(&format!("cannot load {path}: {e}")));
    }
    match args.dataset.as_str() {
        "products" => datasets::products_like(args.nodes, args.seed),
        "papers" => datasets::papers_like(args.nodes, args.seed),
        other => fail(&format!("unknown dataset {other}")),
    }
}

/// `--transport tcp`: delegate the run to one `sar-worker` OS process
/// per rank. The workload maps onto `sar-worker` flags one-to-one; the
/// options that need shared memory or a full parameter/logit gather are
/// rejected up front with an explanation instead of silently dropped.
fn run_tcp(args: &Args) -> ! {
    if args.dataset_file.is_some() {
        fail(
            "--dataset-file is not supported with --transport tcp: every rank rebuilds \
             the dataset deterministically from flags (use --dataset/--nodes/--seed)",
        );
    }
    if args.save_model.is_some() {
        fail(
            "--save-model is not supported with --transport tcp: the multi-process run \
             gathers ledgers and metrics to rank 0, not trained parameters",
        );
    }
    let workload = Workload {
        dataset: args.dataset.clone(),
        nodes: args.nodes,
        arch: args.arch.clone(),
        hidden: args.hidden,
        heads: args.heads,
        mode: args.mode.clone(),
        layers: args.layers,
        jk: args.jk,
        epochs: args.epochs,
        lr: args.lr,
        dropout: args.dropout,
        label_aug: args.label_aug,
        aug_frac: 0.5,
        cs: args.cs,
        prefetch_depth: args.prefetch_depth,
        partitioner: args.partitioner.clone(),
        // Matches the simulated path's StepDecay{epochs/3, 0.5} recipe.
        schedule: "step".into(),
        seed: args.seed,
        threads: args.threads,
        simd: args.simd.clone(),
        codec: args.codec.clone(),
        protocol: args.protocol.clone(),
        mem_budget: args.mem_budget,
    };
    let exe = launcher::sibling_binary("sar-worker").unwrap_or_else(|e| fail(&e));
    let mut worker_args = workload.to_args();
    worker_args.extend([
        "--experiment".to_string(),
        format!("sar-train/{}", args.dataset),
    ]);
    if let Some(path) = &args.report_json {
        worker_args.extend(["--out".to_string(), path.clone()]);
    }
    println!(
        "training {} / {} for {} epochs on {} OS processes over TCP ...",
        args.arch, args.mode, args.epochs, args.workers
    );
    match launcher::spawn_ranks(&exe, args.workers, &worker_args) {
        Ok(()) => std::process::exit(0),
        Err(e) => fail(&format!("tcp run failed: {e}")),
    }
}

fn main() {
    let args = parse_args();
    // The tcp path re-validates in each rank process; the sim path
    // applies the dispatch mode here, before any kernels run.
    match sar::tensor::simd::parse_mode(&args.simd) {
        Some(mode) => sar::tensor::simd::set_mode(mode),
        None => fail(&format!("unknown --simd {} (auto|scalar)", args.simd)),
    }
    match args.transport.as_str() {
        "sim" => {}
        "tcp" => run_tcp(&args),
        other => fail(&format!("unknown transport {other} (sim or tcp)")),
    }
    let dataset = load_dataset(&args);
    let mode = match args.mode.as_str() {
        "sar" => Mode::Sar,
        "sar-fak" => Mode::SarFused,
        "dp" => Mode::DomainParallel,
        other => fail(&format!("unknown mode {other}")),
    };
    let arch = match args.arch.as_str() {
        "sage" => Arch::GraphSage {
            hidden: args.hidden,
        },
        "gcn" => Arch::Gcn {
            hidden: args.hidden,
        },
        "gat" => Arch::Gat {
            head_dim: args.hidden,
            heads: args.heads,
        },
        other => fail(&format!("unknown arch {other}")),
    };
    let method = match args.partitioner.as_str() {
        "ml" => Method::Multilevel,
        "random" => Method::Random,
        "range" => Method::Range,
        "bfs" => Method::Bfs,
        other => fail(&format!("unknown partitioner {other}")),
    };

    println!(
        "dataset {} | {} nodes, {} edges, {} classes",
        dataset.name,
        dataset.num_nodes(),
        dataset.graph.num_edges(),
        dataset.num_classes
    );
    let partitioning = partition(&dataset.graph, args.workers, method, args.seed);
    println!(
        "partitioned into {} parts | cut {:.1}% | balance {:.3}",
        args.workers,
        100.0 * partitioning.cut_fraction(&dataset.graph),
        partitioning.balance()
    );

    let cfg = TrainConfig {
        model: ModelConfig {
            arch,
            mode,
            layers: args.layers,
            in_dim: 0,
            num_classes: dataset.num_classes,
            dropout: args.dropout,
            batch_norm: true,
            jumping_knowledge: args.jk,
            seed: args.seed,
        },
        epochs: args.epochs,
        lr: args.lr,
        schedule: LrSchedule::StepDecay {
            every: (args.epochs / 3).max(1),
            gamma: 0.5,
        },
        label_aug: args.label_aug,
        aug_frac: 0.5,
        cs: args.cs.then(CsConfig::default),
        prefetch_depth: args.prefetch_depth,
        seed: args.seed,
        threads: args.threads,
        protocol: sar::core::Protocol::parse(&args.protocol)
            .unwrap_or_else(|e| fail(&format!("--protocol: {e}"))),
        codec: sar::comm::Codec::parse(&args.codec).unwrap_or_else(|| {
            fail(&format!(
                "unknown --codec {} (raw|f16|bf16|int8|delta)",
                args.codec
            ))
        }),
        mem_budget: args.mem_budget,
    };
    println!(
        "training {:?} / {:?} for {} epochs on {} workers ...",
        arch, mode, args.epochs, args.workers
    );
    let report = train(&dataset, &partitioning, CostModel::default(), &cfg);

    for (e, loss) in report.losses.iter().enumerate() {
        if e % (args.epochs / 10).max(1) == 0 || e + 1 == report.losses.len() {
            println!("epoch {e:>4}  loss {loss:.4}");
        }
    }
    println!("val  accuracy: {:.2}%", 100.0 * report.val_acc);
    println!("test accuracy: {:.2}%", 100.0 * report.test_acc);
    if let Some(cs) = report.test_acc_cs {
        println!("test accuracy after C&S: {:.2}%", 100.0 * cs);
    }
    let cm = ConfusionMatrix::from_logits(
        &report.logits,
        &dataset.labels,
        &dataset.test_mask,
        dataset.num_classes,
    );
    println!("test macro-F1: {:.3}", cm.macro_f1());
    println!(
        "avg epoch time (modeled): {:.3}s | max peak memory/worker: {:.2} MiB | total traffic: {:.1} MiB",
        report.avg_epoch_time(),
        report.max_peak_bytes() as f64 / (1024.0 * 1024.0),
        report.total_sent_bytes as f64 / (1024.0 * 1024.0),
    );

    if let Some(path) = &args.save_model {
        let file = std::fs::File::create(path)
            .unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}")));
        checkpoint::save_raw_params(&report.final_params, file)
            .unwrap_or_else(|e| fail(&format!("cannot save model: {e}")));
        println!("saved trained parameters to {path}");
    }

    let json_report = RunReport::from_train(
        format!("sar-train/{}", dataset.name),
        &args.arch,
        &args.mode,
        &report,
    );
    if let Some(path) = &args.report_json {
        json_report
            .write_json(path)
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        println!("wrote observability report to {path}");
    }
    if json_report.has_non_finite_loss() {
        eprintln!("sar-train: training diverged (non-finite loss)");
        std::process::exit(1);
    }
}
